//! Offline shim for the `rand_chacha` crate.
//!
//! Provides a type named [`ChaCha8Rng`] with the same construction and
//! trait surface the workspace uses (`SeedableRng::seed_from_u64` +
//! `RngCore`). The stream is produced by xoshiro256++ rather than
//! ChaCha — the workspace only relies on determinism per seed and
//! reasonable statistical quality, not on the exact ChaCha keystream.

use rand::{RngCore, SeedableRng};

/// Deterministic, seedable PRNG (xoshiro256++ core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

/// SplitMix64 — the canonical seeding sequence for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 equal");
    }

    #[test]
    fn gen_bool_rate_roughly_honored() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
