//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (recovering from poisoning
//! instead of propagating it), which is the only behavioural difference
//! the workspace relies on.

use std::sync::{self, MutexGuard as StdMutexGuard};

/// Mutual exclusion lock with a poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with poison-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
