//! Offline shim for the `bytes` crate.
//!
//! Implements exactly the surface the wire codec uses: [`BytesMut`] with
//! little-endian `put_*` methods and [`BytesMut::freeze`], an immutable
//! [`Bytes`] handle, and a [`Buf`] impl for `&[u8]` with little-endian
//! `get_*` methods. Backed by `Vec<u8>` — no refcounted slicing, which
//! the workspace never uses.

use std::ops::Deref;

/// Immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer used while encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side cursor trait (subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor trait (subset). Reads panic when under-length, as in
/// the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(0x0102030405060708);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16_le(), 0x1234);
        assert_eq!(rd.get_u32_le(), 0xDEADBEEF);
        assert_eq!(rd.get_u64_le(), 0x0102030405060708);
        assert_eq!(rd.get_f32_le(), 1.5);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0x0201);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }
}
