//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the exact subset of the rand 0.8 API the workspace uses:
//! [`RngCore`], [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`],
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! Distributions are uniform and deterministic given the generator state;
//! they do not bit-match the real rand crate (nothing in the workspace
//! depends on the exact stream, only on determinism per seed).

use std::ops::Range;

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range (or other set) values can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` from 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-40 for every span the workspace
                // uses; acceptable for tests and simulation seeding.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

/// Types producible by [`Rng::gen`] (stands in for rand's
/// `Standard: Distribution<T>` bound).
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A value from the type's standard distribution (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self) < p
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod seq {
    //! Sequence utilities: slice shuffling and index sampling.

    use super::{Rng as _, RngCore};

    /// Extension trait adding `shuffle` to slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! `sample(rng, length, amount)` — `amount` distinct indices in
        //! `0..length`, in random order.

        use super::super::RngCore;

        /// Result of [`sample`]: a set of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` via a
        /// partial Fisher–Yates shuffle.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} from {length} items"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seq::index::sample;

    struct Lcg(u64);
    impl super::RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn sample_returns_distinct_indices() {
        let mut rng = Lcg(3);
        let idx = sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|i| *i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
