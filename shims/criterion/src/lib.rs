//! Offline shim for the `criterion` crate.
//!
//! A tiny benchmark harness exposing the API surface
//! `benches/hotpaths.rs` uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::throughput`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId::from_parameter`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up then a fixed
//! sampling window — and prints `ns/iter` (plus throughput when set).
//! There is no statistical analysis, HTML report, or CLI parsing; when
//! run under `cargo test` the binary executes each benchmark once.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier (`group/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration.
    ns_per_iter: f64,
    /// In quick mode (`cargo test`) the closure runs exactly once.
    quick: bool,
}

impl Bencher {
    /// Times `f`, storing the mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up: one call (also primes caches/allocations).
        black_box(f());
        // Sample for up to ~200 ms or 1000 iterations.
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1000 {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.ns_per_iter = if iters == 0 {
            0.0
        } else {
            total.as_nanos() as f64 / iters as f64
        };
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("bench {name:<40} {ns:>14.1} ns/iter");
    if ns > 0.0 {
        if let Some(Throughput::Bytes(b)) = throughput {
            let gib = b as f64 / ns * 1e9 / (1u64 << 30) as f64;
            line.push_str(&format!("  ({gib:>8.2} GiB/s)"));
        }
        if let Some(Throughput::Elements(e)) = throughput {
            let meps = e as f64 / ns * 1e9 / 1e6;
            line.push_str(&format!("  ({meps:>8.2} Melem/s)"));
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench binaries with `--test`; honor it by
        // running each benchmark body exactly once.
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            quick: self.quick,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            quick: self.quick,
        };
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    quick: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            quick: self.quick,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            quick: self.quick,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { quick: false };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, n| {
            b.iter(|| n * 2);
        });
        g.bench_function("plain", |b| b.iter(|| 3));
        g.finish();
    }
}
