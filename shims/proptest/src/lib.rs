//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the property-testing surface the workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments and multiple `#[test]` functions per block);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: numeric ranges, [`strategy::Just`], [`arbitrary::any`],
//!   tuples, [`collection::vec`], [`collection::btree_set`],
//!   [`prop_oneof!`] (weighted and unweighted) and
//!   [`strategy::Strategy::prop_flat_map`].
//!
//! Unlike the real crate it performs no shrinking: a failing case
//! reports its deterministic seed and case index instead of a minimized
//! input. Generation is uniform (no bias toward edge values), which the
//! workspace's properties do not depend on.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies while generating one test case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }

    pub fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub mod test_runner {
    //! Runner configuration and the per-case error type.

    /// Subset of proptest's config: the number of random cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (carried out of the test body by the
    /// `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// Drives one property: runs `body` for `config.cases` deterministic
/// seeds and panics (with the reproducing seed) on the first failure.
pub fn run_proptest<F>(config: test_runner::ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // Deterministic per-test seeding: FNV-1a over the test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for case in 0..config.cases {
        let seed = h ^ (0x9E3779B97F4A7C15u64.wrapping_mul(case as u64 + 1));
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{} (seed {seed:#x}): {e}",
                config.cases
            );
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object safe: only [`Strategy::sample`] is required, so
    /// `Box<dyn Strategy<Value = T>>` works (used by `prop_oneof!`).
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a dependent strategy from each sampled value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Transforms each sampled value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Range<T>` is a strategy wherever the rand shim can sample it.
    impl<T> Strategy for std::ops::Range<T>
    where
        T: Clone,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.inner().gen_range(self.clone())
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            let inner = self.base.sample(rng);
            (self.f)(inner).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.sample(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Boxes one `prop_oneof!` arm (avoids `as` casts in macro output).
    pub fn union_arm<S>(weight: u32, s: S) -> (u32, BoxedStrategy<S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(s))
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a primitive type.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait ArbValue {
        fn arb(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbValue for $t {
                fn arb(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbValue for bool {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbValue for f32 {
        fn arb(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, spanning several orders of
            // magnitude; the codec and tensor properties only need
            // "arbitrary finite floats".
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let mag = (unit * 2.0 - 1.0) * 1.0e6;
            mag as f32
        }
    }

    impl ArbValue for f64 {
        fn arb(rng: &mut TestRng) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit * 2.0 - 1.0) * 1.0e9
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: ArbValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() % (self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` of a size drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: duplicates may make the set smaller than
            // `target`, which proptest itself also permits for narrow
            // element domains.
            for _ in 0..target * 4 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// `BTreeSet` of values from `element`, size drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(..)]`, doc comments / attributes (including
/// `#[test]`), and `arg in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_proptest(__config, stringify!($name), |__rng| {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);
                )+
                let mut __case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&($a), &($b));
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __a,
                    __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&($a), &($b));
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` ({}): left {:?}, right {:?}",
                    stringify!($a),
                    stringify!($b),
                    format!($($fmt)+),
                    __a,
                    __b
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&($a), &($b));
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Weighted (or uniform) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::union_arm(1u32, $strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let strat = (1usize..6, -2.0f32..2.0);
        for _ in 0..200 {
            let (n, f) = strat.sample(&mut rng);
            assert!((1..6).contains(&n));
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = crate::TestRng::from_seed(2);
        let strat = prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let ones: u32 = (0..4000).map(|_| strat.sample(&mut rng) as u32).sum();
        // Expect ~1000 ones out of 4000.
        assert!((600..1400).contains(&ones), "got {ones}");
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::TestRng::from_seed(3);
        let strat = prop::collection::vec(any::<u32>(), 2..5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::TestRng::from_seed(4);
        let strat = prop::collection::vec(any::<bool>(), 7usize);
        assert_eq!(strat.sample(&mut rng).len(), 7);
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let mut rng = crate::TestRng::from_seed(5);
        let strat = (1usize..4).prop_flat_map(|n| prop::collection::vec(any::<u8>(), n));
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: args, config, assertions.
        #[test]
        fn macro_roundtrip(
            n in 1usize..10,
            values in prop::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!(n >= 1);
            prop_assert!(n < 10, "n was {}", n);
            prop_assert_eq!(values.len(), values.len());
            for v in &values {
                prop_assert!(*v < 100);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_property_panics_with_seed() {
        crate::run_proptest(ProptestConfig::with_cases(3), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom".to_string()))
        });
    }
}
