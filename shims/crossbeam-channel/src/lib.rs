//! Offline shim for `crossbeam-channel`.
//!
//! Implements the unbounded-channel subset the transports use:
//! [`unbounded`], cloneable [`Sender`]/[`Receiver`] (both `Send + Sync`,
//! like the real crate and unlike `std::sync::mpsc`), `recv`,
//! `recv_timeout` and the matching error types. Built on a
//! `Mutex<VecDeque>` + `Condvar`; throughput is adequate for the
//! message-granularity protocol engines in this workspace.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message like the real crate.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "channel is empty and disconnected")
            }
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }
}

/// Sending half; cloneable, `Send + Sync`.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable, `Send + Sync`.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(msg);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            if res.timed_out() && q.is_empty() {
                if self.shared.disconnected_tx() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = q.pop_front() {
            return Ok(msg);
        }
        if self.shared.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_observed_by_receiver() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(10));
        tx.send(99u64).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }
}
