//! # OmniReduce in Rust
//!
//! A from-scratch reproduction of *"Efficient Sparse Collective
//! Communication and its application to Accelerate Distributed Deep
//! Learning"* (Fei, Ho, Sahu, Canini, Sapio — SIGCOMM 2021).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`tensor`] — dense/sparse tensor formats, blocks, bitmaps, statistics.
//! * [`transport`] — wire format and channel/TCP/lossy transports.
//! * [`simnet`] — packet-level discrete-event network simulator.
//! * [`collectives`] — baseline collectives (ring, AGsparse, SparCML, PS,
//!   streaming dense aggregation) and analytic cost models.
//! * [`core`] — the OmniReduce worker/aggregator protocol engines.
//! * [`sparsify`] — block-based gradient sparsification with error feedback.
//! * [`workloads`] — synthetic models of the paper's six DNN workloads.
//! * [`ddl`] — a data-parallel SGD trainer for convergence experiments.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture
//! and the per-experiment index.

pub use omnireduce_collectives as collectives;
pub use omnireduce_core as core;
pub use omnireduce_ddl as ddl;
pub use omnireduce_simnet as simnet;
pub use omnireduce_sparsify as sparsify;
pub use omnireduce_telemetry as telemetry;
pub use omnireduce_tensor as tensor;
pub use omnireduce_transport as transport;
pub use omnireduce_workloads as workloads;
