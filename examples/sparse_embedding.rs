//! Sparse embedding-gradient aggregation — the DeepLight-style scenario
//! that motivates the paper: a huge embedding table where each batch
//! touches a handful of rows, so the gradient is >99% zeros in aligned
//! runs. Compares OmniReduce traffic against what a dense collective
//! would move, on the DeepLight workload profile, and demonstrates the
//! sparse key-value protocol (Algorithm 3) on the same data.
//!
//! ```sh
//! cargo run --release --example sparse_embedding
//! ```

use std::thread;

use omnireduce::core::aggregator::OmniAggregator;
use omnireduce::core::config::OmniConfig;
use omnireduce::core::kv::{KvAggregator, KvConfig, KvWorker};
use omnireduce::core::worker::OmniWorker;
use omnireduce::tensor::convert::dense_to_coo;
use omnireduce::tensor::{dense::reference_sum, Tensor};
use omnireduce::transport::{ChannelNetwork, NodeId};
use omnireduce::workloads::{Workload, WorkloadName};

const WORKERS: usize = 4;
/// A 4M-element slice of the DeepLight embedding table (16 MB).
const ELEMENTS: usize = 4 << 20;

fn main() {
    let profile = Workload::get(WorkloadName::DeepLight);
    println!(
        "DeepLight: {:.2} GB model, {:.2}% gradient sparsity",
        profile.total_bytes() as f64 / 1e9,
        profile.element_sparsity * 100.0
    );

    // Build per-worker gradients with the profile's run structure: mark
    // the active rows and fill them with values.
    let bitmaps = profile.worker_bitmaps(WORKERS, profile.run_len, ELEMENTS, 3);
    let inputs: Vec<Tensor> = bitmaps
        .iter()
        .map(|bm| {
            let mut t = Tensor::zeros(ELEMENTS);
            for row in bm.iter_nonzero() {
                let start = row as usize * profile.run_len;
                let end = (start + profile.run_len).min(ELEMENTS);
                for (i, v) in t.as_mut_slice()[start..end].iter_mut().enumerate() {
                    *v = (row as f32 * 0.001) + i as f32 * 1e-6 + 0.01;
                }
            }
            t
        })
        .collect();
    let expect = reference_sum(&inputs);

    // --- Dense-block OmniReduce ---
    let cfg = OmniConfig::new(WORKERS, ELEMENTS)
        .with_block_size(256)
        .with_fusion(4)
        .with_streams(16);
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || OmniAggregator::new(agg_t, agg_cfg).run().unwrap());
    let mut handles = Vec::new();
    for (w, input) in inputs.iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        let mut tensor = input.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            worker.allreduce(&mut tensor).unwrap();
            let stats = worker.stats();
            worker.shutdown().unwrap();
            (tensor, stats)
        }));
    }
    for h in handles {
        let (out, stats) = h.join().unwrap();
        assert!(out.approx_eq(&expect, 1e-3));
        println!(
            "block protocol: sent {:.2} MB of {:.0} MB dense ({:.2}%)",
            stats.bytes_sent as f64 / 1e6,
            (ELEMENTS * 4) as f64 / 1e6,
            stats.bytes_sent as f64 / (ELEMENTS as f64 * 4.0) * 100.0
        );
    }
    agg.join().unwrap();

    // --- Sparse key-value protocol (Algorithm 3) on the same data ---
    let kv_cfg = KvConfig::new(WORKERS, 256);
    let mut net = ChannelNetwork::new(kv_cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(kv_cfg.aggregator_node()));
    let a_cfg = kv_cfg.clone();
    let agg = thread::spawn(move || KvAggregator::new(agg_t, a_cfg).run().unwrap());
    let mut handles = Vec::new();
    for (w, input) in inputs.iter().enumerate() {
        let t = net.endpoint(NodeId(w as u16));
        let cfg = kv_cfg.clone();
        let coo = dense_to_coo(input);
        handles.push(thread::spawn(move || {
            let mut worker = KvWorker::new(t, cfg);
            let out = worker.allreduce(&coo).unwrap();
            let stats = worker.stats();
            worker.shutdown().unwrap();
            (out, stats)
        }));
    }
    for h in handles {
        let (out, stats) = h.join().unwrap();
        let dense_out = omnireduce::tensor::convert::coo_to_dense(&out);
        assert!(dense_out.approx_eq(&expect, 1e-3));
        println!(
            "kv protocol:    sent {:.2} MB ({} pairs)",
            stats.bytes_sent as f64 / 1e6,
            stats.pairs_sent
        );
    }
    agg.join().unwrap();
    println!("both protocols reproduce the dense reference sum ✓");
}
