//! Distributed training end-to-end: data-parallel SGD where the gradient
//! averaging runs through a real OmniReduce group (worker/aggregator
//! threads over channels), with Block Top-k compression + error feedback
//! manufacturing the sparsity OmniReduce exploits.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use std::thread;

use omnireduce::core::aggregator::OmniAggregator;
use omnireduce::core::config::OmniConfig;
use omnireduce::core::worker::OmniWorker;
use omnireduce::ddl::train::accuracy;
use omnireduce::ddl::{Dataset, LogisticRegression, Model};
use omnireduce::sparsify::{BlockTopK, Compressor, ErrorFeedback};
use omnireduce::tensor::{BlockSpec, Tensor};
use omnireduce::transport::{ChannelNetwork, NodeId};

const WORKERS: usize = 4;
const DIM: usize = 63; // params = dim + 1 bias = 64 → 16 blocks of 4
const STEPS: usize = 300;
const BATCH: usize = 32;
const LR: f32 = 0.5;

fn main() {
    let data = Dataset::synthetic(4000, DIM, 0.03, 7);
    let (train, test) = data.split(0.25);
    let model = LogisticRegression { dim: DIM };
    let params_len = model.num_params();

    let cfg = OmniConfig::new(WORKERS, params_len)
        .with_block_size(4)
        .with_fusion(2)
        .with_streams(2);
    let mut net = ChannelNetwork::new(cfg.mesh_size());

    let agg_transport = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let aggregator = thread::spawn(move || {
        OmniAggregator::new(agg_transport, agg_cfg).run().unwrap();
    });

    // Each worker trains on its own shard, compressing gradients to 25%
    // of blocks and averaging through OmniReduce.
    let shard = train.len() / WORKERS;
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let transport = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        let train = train.clone();
        let model = model.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(transport, cfg);
            let mut compressor = ErrorFeedback::new(BlockTopK::new(0.25, BlockSpec::new(4)));
            let mut params = model.init_params(0);
            let mut blocks_sent_total = 0u64;
            for step in 0..STEPS {
                let lo = w * shard + (step * BATCH) % (shard - BATCH + 1);
                let x = &train.features[lo * train.dim..(lo + BATCH) * train.dim];
                let y = &train.labels[lo..lo + BATCH];
                let (_, grad) = model.loss_grad(&params, x, y, train.dim);
                let mut sent = compressor.compress(&grad, &params);
                let before = worker.stats().blocks_sent;
                worker.allreduce(&mut sent).unwrap();
                blocks_sent_total += worker.stats().blocks_sent - before;
                // `sent` now holds the SUM across workers; average it.
                sent.scale(1.0 / WORKERS as f32);
                for (p, g) in params.as_mut_slice().iter_mut().zip(sent.as_slice()) {
                    *p -= LR * g;
                }
            }
            worker.shutdown().unwrap();
            (params, blocks_sent_total)
        }));
    }

    let results: Vec<(Tensor, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    aggregator.join().unwrap();

    // All workers hold identical parameters (they applied the same
    // aggregated updates every step).
    for (p, _) in &results[1..] {
        assert!(p.approx_eq(&results[0].0, 1e-4), "replicas diverged");
    }
    let acc = accuracy(&model, &results[0].0, &test);
    let dense_blocks = (STEPS * params_len.div_ceil(4)) as u64;
    println!(
        "test accuracy {:.1}% after {STEPS} compressed steps; \
         worker 0 sent {} blocks (dense training would send {})",
        acc * 100.0,
        results[0].1,
        dense_blocks,
    );
    assert!(acc > 0.85, "training failed to converge");
}
