//! Sharded AllReduce: block-index round-robin over N aggregators (§4).
//!
//! OmniReduce scales aggregation bandwidth by sharding blocks across
//! parallel aggregators; each worker keeps one transport lane and one
//! next-nonzero-block cursor per shard. This example deploys the
//! threaded harness — `OMNIREDUCE_NUM_AGGREGATORS` shards (default 2)
//! × 3 workers, each engine on its own OS thread — and checks every
//! worker's result against a dense reference sum. Run with:
//!
//! ```sh
//! OMNIREDUCE_NUM_AGGREGATORS=4 cargo run --release --example sharded
//! ```

use omnireduce::core::config::OmniConfig;
use omnireduce::core::shard::ShardedAllReduce;
use omnireduce::tensor::gen::{self, OverlapMode};
use omnireduce::tensor::{dense::reference_sum, BlockSpec};

fn main() {
    let workers = 3;
    let elements = 1 << 14; // 64 KB of f32
    let shards = std::env::var("OMNIREDUCE_NUM_AGGREGATORS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&a| a >= 1)
        .unwrap_or(2);

    let cfg = OmniConfig::new(workers, elements)
        .with_block_size(64)
        .with_fusion(2)
        .with_streams(4) // per shard
        .with_aggregators(shards);

    // Synthetic sparse gradients (75% of blocks all-zero).
    let inputs = gen::workers(
        workers,
        elements,
        BlockSpec::new(64),
        0.75,
        1.0,
        OverlapMode::Random,
        7,
    );
    let expect = reference_sum(&inputs);

    // One round per worker; the harness spawns every engine on its own
    // thread over per-shard channel meshes and joins them.
    let rounds = inputs.into_iter().map(|t| vec![t]).collect();
    let out = ShardedAllReduce::run(&cfg, rounds);

    for (w, result) in out.outputs.iter().enumerate() {
        assert!(
            result[0].approx_eq(&expect, 1e-4),
            "worker {w} result diverges"
        );
        let per_shard: Vec<String> = out.shard_bytes[w]
            .iter()
            .enumerate()
            .map(|(s, b)| format!("shard {s}: {} KB", b / 1000))
            .collect();
        println!(
            "worker {w}: correct sum; wire bytes {}",
            per_shard.join(", ")
        );
    }
    for (s, a) in out.agg_stats.iter().enumerate() {
        println!(
            "aggregator {s}: {} packets in, {} blocks reduced, {} results out",
            a.packets, a.blocks_received, a.results_sent
        );
    }
    println!("all {workers} workers agree across {shards} shard(s) ✓");
}
