//! OmniReduce over real TCP sockets: the same worker/aggregator engines
//! as `quickstart`, but every node talks over a loopback TCP mesh with
//! length-prefixed frames — the deployment shape for running workers and
//! aggregators as separate processes on a real cluster.
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! ```

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::thread;

use omnireduce::core::aggregator::OmniAggregator;
use omnireduce::core::config::OmniConfig;
use omnireduce::core::worker::OmniWorker;
use omnireduce::tensor::gen::{self, OverlapMode};
use omnireduce::tensor::{dense::reference_sum, BlockSpec};
use omnireduce::transport::tcp::TcpNetwork;
use omnireduce::transport::NodeId;

fn main() {
    let workers = 3;
    let elements = 1 << 15;
    let cfg = OmniConfig::new(workers, elements)
        .with_block_size(128)
        .with_fusion(2)
        .with_streams(4);

    // Address book: workers then aggregator, all on loopback.
    let base = 23_500u16;
    let addrs: Vec<SocketAddr> = (0..cfg.mesh_size())
        .map(|i| SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), base + i as u16))
        .collect();

    let inputs = gen::workers(
        workers,
        elements,
        BlockSpec::new(128),
        0.8,
        1.0,
        OverlapMode::Random,
        5,
    );
    let expect = reference_sum(&inputs);

    // Every node establishes the mesh concurrently (like processes
    // started by a launcher); TcpNetwork retries until peers are up.
    let agg_addrs = addrs.clone();
    let agg_cfg = cfg.clone();
    let aggregator = thread::spawn(move || {
        let t = TcpNetwork::establish(NodeId(agg_cfg.aggregator_node(0)), &agg_addrs).unwrap();
        OmniAggregator::new(t, agg_cfg).run().unwrap();
    });

    let mut handles = Vec::new();
    for (w, input) in inputs.into_iter().enumerate() {
        let addrs = addrs.clone();
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let t = TcpNetwork::establish(NodeId(cfg.worker_node(w)), &addrs).unwrap();
            let mut worker = OmniWorker::new(t, cfg);
            let mut tensor = input;
            // Two back-to-back rounds over the same sockets.
            worker.allreduce(&mut tensor).unwrap();
            let mut second = tensor.clone();
            worker.allreduce(&mut second).unwrap();
            worker.shutdown().unwrap();
            (tensor, second)
        }));
    }

    for (w, h) in handles.into_iter().enumerate() {
        let (round1, round2) = h.join().unwrap();
        assert!(round1.approx_eq(&expect, 1e-3), "worker {w} round 1");
        // Round 2 reduced the round-1 result again: 3× the sum of sums.
        let mut expect2 = expect.clone();
        expect2.scale(workers as f32);
        assert!(round2.approx_eq(&expect2, 1e-2), "worker {w} round 2");
        println!("worker {w}: two TCP AllReduce rounds verified ✓");
    }
    aggregator.join().unwrap();
    println!("TCP mesh shut down cleanly");
}
