//! Quickstart: a 4-worker OmniReduce AllReduce over in-process channels.
//!
//! Each worker holds a sparse gradient; the group computes the
//! element-wise sum while transmitting only non-zero blocks. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::thread;

use omnireduce::core::aggregator::OmniAggregator;
use omnireduce::core::config::OmniConfig;
use omnireduce::core::worker::OmniWorker;
use omnireduce::tensor::gen::{self, OverlapMode};
use omnireduce::tensor::{dense::reference_sum, BlockSpec};
use omnireduce::transport::{ChannelNetwork, NodeId};

fn main() {
    let workers = 4;
    let elements = 1 << 16; // 256 KB of f32
    let sparsity = 0.9;

    // One config shared by every node: 4 workers, 1 aggregator shard,
    // 256-element blocks fused 4 per packet, 8 parallel streams.
    let cfg = OmniConfig::new(workers, elements)
        .with_block_size(256)
        .with_fusion(4)
        .with_streams(8);

    // Synthetic sparse gradients (90% of blocks all-zero).
    let inputs = gen::workers(
        workers,
        elements,
        BlockSpec::new(256),
        sparsity,
        1.0,
        OverlapMode::Random,
        42,
    );
    let expect = reference_sum(&inputs);

    // In-process mesh: workers first, then the aggregator shard.
    let mut net = ChannelNetwork::new(cfg.mesh_size());

    let agg_transport = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let aggregator = thread::spawn(move || {
        OmniAggregator::new(agg_transport, agg_cfg).run().unwrap();
    });

    let mut handles = Vec::new();
    for (w, input) in inputs.into_iter().enumerate() {
        let transport = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(transport, cfg);
            let mut tensor = input;
            worker.allreduce(&mut tensor).unwrap();
            let stats = worker.stats();
            worker.shutdown().unwrap();
            (tensor, stats)
        }));
    }

    for (w, h) in handles.into_iter().enumerate() {
        let (result, stats) = h.join().unwrap();
        assert!(
            result.approx_eq(&expect, 1e-4),
            "worker {w} result diverges"
        );
        println!(
            "worker {w}: correct sum; sent {} blocks / {} KB (dense would be {} KB)",
            stats.blocks_sent,
            stats.bytes_sent / 1000,
            elements * 4 / 1000,
        );
    }
    aggregator.join().unwrap();
    println!("all {workers} workers agree with the reference sum ✓");
}
