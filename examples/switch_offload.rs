//! In-network aggregation and numeric reproducibility (paper §7).
//!
//! Part 1 runs a group against the switch-constrained aggregator
//! (fixed-point arithmetic, bounded slot pool, Tofino-style 34-value
//! pipeline passes) and shows the quantization error stays within the
//! analytic bound. Part 2 runs the server aggregator in deterministic
//! mode and shows the result is bit-identical across repeated runs —
//! something plain float AllReduce cannot promise.
//!
//! ```sh
//! cargo run --release --example switch_offload
//! ```

use std::thread;

use omnireduce::core::aggregator::OmniAggregator;
use omnireduce::core::config::OmniConfig;
use omnireduce::core::switch::{FixedPoint, SwitchAggregator, DEFAULT_SWITCH_POOL};
use omnireduce::core::worker::OmniWorker;
use omnireduce::tensor::gen::{self, OverlapMode};
use omnireduce::tensor::{dense::reference_sum, BlockSpec, Tensor};
use omnireduce::transport::{ChannelNetwork, NodeId};

const WORKERS: usize = 4;
const ELEMENTS: usize = 8192;

fn run_workers(net: &mut ChannelNetwork, cfg: &OmniConfig, inputs: &[Tensor]) -> Vec<Tensor> {
    let mut handles = Vec::new();
    for (w, input) in inputs.iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        let mut tensor = input.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            worker.allreduce(&mut tensor).unwrap();
            worker.shutdown().unwrap();
            tensor
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn main() {
    let inputs = gen::workers(
        WORKERS,
        ELEMENTS,
        BlockSpec::new(34),
        0.7,
        1.0,
        OverlapMode::Random,
        11,
    );
    let expect = reference_sum(&inputs);

    // --- Part 1: P4-switch-style aggregator, block size 34 ---
    let cfg = OmniConfig::new(WORKERS, ELEMENTS)
        .with_block_size(34) // one Tofino pipeline pass per block
        .with_fusion(8)
        .with_streams(8);
    let fp = FixedPoint::default();
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || {
        let mut sw = SwitchAggregator::new(agg_t, agg_cfg, fp, DEFAULT_SWITCH_POOL);
        sw.run().unwrap();
        sw.stats
    });
    let outs = run_workers(&mut net, &cfg, &inputs);
    let stats = agg.join().unwrap();
    let worst = outs
        .iter()
        .map(|o| o.max_abs_diff(&expect))
        .fold(0.0f32, f32::max);
    let bound = fp.step() * WORKERS as f32;
    println!(
        "switch aggregator: {} packets, {} pipeline passes, {} saturations",
        stats.packets, stats.pipeline_passes, stats.saturations
    );
    println!(
        "  worst quantization error {worst:.2e} (bound {bound:.2e}) — {}",
        if worst <= bound {
            "within bound ✓"
        } else {
            "VIOLATION"
        }
    );
    assert!(worst <= bound);

    // --- Part 2: deterministic server aggregation (§7 reproducibility) ---
    let det_cfg = OmniConfig::new(WORKERS, ELEMENTS)
        .with_block_size(64)
        .with_fusion(4)
        .with_streams(8)
        .with_deterministic();
    let mut runs = Vec::new();
    for _ in 0..3 {
        let mut net = ChannelNetwork::new(det_cfg.mesh_size());
        let agg_t = net.endpoint(NodeId(det_cfg.aggregator_node(0)));
        let agg_cfg = det_cfg.clone();
        let agg = thread::spawn(move || OmniAggregator::new(agg_t, agg_cfg).run().unwrap());
        let outs = run_workers(&mut net, &det_cfg, &inputs);
        agg.join().unwrap();
        runs.push(outs);
    }
    for run in &runs {
        for out in run {
            assert_eq!(
                out.as_slice(),
                runs[0][0].as_slice(),
                "deterministic mode must be bit-identical"
            );
        }
    }
    println!("deterministic mode: 3 runs × {WORKERS} workers bit-identical ✓");
}
