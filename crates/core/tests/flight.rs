//! Flight-recorder integration tests: the observability layer against
//! the live Algorithm 2 engines under injected faults.
//!
//! * **Non-perturbation.** A chaos run with the flight recorder enabled
//!   produces bit-identical tensors and identical `RecoveryStats` to
//!   the recorder-off run of the same seed — observation must not
//!   change the observed protocol (and replays stay exact either way).
//! * **Straggler detection.** A worker slowed by an injected
//!   per-message delay is the one (and only one) worker the
//!   reconstructor's skew detector flags.
//! * **Loss detection.** Keyed packet loss concentrated by seed shows
//!   up as flagged retransmission windows.
//! * **End-to-end reconstruction.** A sharded recovery run under chaos
//!   — and a lossless sharded run — yield recordings from which
//!   [`RoundAttribution`] rebuilds every round with a nonzero budget.

use std::thread;
use std::time::Duration;

use omnireduce_core::config::OmniConfig;
use omnireduce_core::error::ProtocolError;
use omnireduce_core::recovery::{
    RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker,
};
use omnireduce_core::shard::ShardedAllReduce;
use omnireduce_core::testing::with_deadline;
use omnireduce_telemetry::{AttributionConfig, FlightRecording, RoundAttribution, Telemetry};
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::fault::{ChaosNetwork, FaultPlan, KeyedLoss};
use omnireduce_transport::{ChannelNetwork, GilbertElliott};
use proptest::prelude::*;

/// Flight-ring capacity for every recorded test: big enough that no
/// test run wraps (wrapping is exercised in the telemetry unit tests).
const FLIGHT_CAP: usize = 1 << 16;

struct MultiRoundOutcome {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    outputs: Vec<Vec<Tensor>>,
    results: Vec<Result<(), ProtocolError>>,
    stats: Vec<RecoveryStats>,
    agg_stats: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
}

/// Runs `rounds` AllReduces per worker over a chaos-wrapped channel
/// mesh (single aggregator), mirroring `tests/fault.rs::run_chaos` but
/// multi-round so the detectors have a time series to work on.
fn run_rounds(
    cfg: &OmniConfig,
    plan: &FaultPlan,
    inputs: &[Vec<Tensor>],
    telemetry: Option<&Telemetry>,
) -> MultiRoundOutcome {
    assert_eq!(inputs.len(), cfg.num_workers);
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let endpoints = match telemetry {
        Some(t) => ChaosNetwork::wrap_with_telemetry(net.endpoints(), plan, t),
        None => ChaosNetwork::wrap(net.endpoints(), plan),
    };
    let mut endpoints: Vec<Option<_>> = endpoints.into_iter().map(Some).collect();

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = endpoints[cfg.aggregator_node(a) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        agg_handles.push(thread::spawn(move || {
            let mut agg = match &telemetry {
                Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                None => RecoveryAggregator::new(t, cfg),
            };
            let res = agg.run();
            let stats = agg.stats;
            (res, stats, agg)
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.iter().enumerate() {
        let t = endpoints[cfg.worker_node(w) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        let mut tensors = tensors.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = match &telemetry {
                Some(tl) => RecoveryWorker::with_telemetry(t, cfg, tl),
                None => RecoveryWorker::new(t, cfg),
            };
            let mut result = Ok(());
            for tensor in tensors.iter_mut() {
                if let Err(e) = worker.allreduce(tensor) {
                    result = Err(e);
                    break;
                }
            }
            let stats = worker.stats();
            if result.is_ok() {
                let _ = worker.shutdown();
            }
            (result, stats, tensors)
        }));
    }

    let mut outputs = Vec::new();
    let mut results = Vec::new();
    let mut stats = Vec::new();
    for h in worker_handles {
        let (res, st, out) = h.join().expect("worker thread panicked");
        results.push(res);
        stats.push(st);
        outputs.push(out);
    }
    let agg_stats = agg_handles
        .into_iter()
        .map(|h| {
            let (res, st, _agg) = h.join().expect("aggregator thread panicked");
            (res, st)
        })
        .collect();
    MultiRoundOutcome {
        outputs,
        results,
        stats,
        agg_stats,
    }
}

fn small_cfg(n: usize, len: usize) -> OmniConfig {
    OmniConfig::new(n, len)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2)
        .with_initial_rto(Duration::from_millis(25))
        .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
        .with_max_retransmits(40)
}

fn gen_rounds(n: usize, len: usize, rounds: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut per_worker: Vec<Vec<Tensor>> = (0..n).map(|_| Vec::with_capacity(rounds)).collect();
    for r in 0..rounds {
        let round = gen::workers(
            n,
            len,
            BlockSpec::new(8),
            0.5,
            1.0,
            OverlapMode::Random,
            seed.wrapping_add(r as u64),
        );
        for (w, t) in round.into_iter().enumerate() {
            per_worker[w].push(t);
        }
    }
    per_worker
}

fn flight_telemetry() -> Telemetry {
    Telemetry::with_observability(0, FLIGHT_CAP)
}

fn reconstruct(rec: &FlightRecording) -> RoundAttribution {
    RoundAttribution::from_recording(rec, &AttributionConfig::default())
}

// ---------------------------------------------------------------------
// Non-perturbation: recording changes nothing, replays stay exact
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recorder-on chaos runs are bit-identical to recorder-off runs of
    /// the same seed (tensors AND stats), and a recorded replay
    /// reproduces the exact same stats. Single worker: with one
    /// protocol thread per side the stats are a pure function of the
    /// keyed fates (see `tests/fault.rs`), so equality is exact.
    #[test]
    fn prop_recorder_is_invisible_to_the_protocol(
        len in 64usize..256,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.08,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        with_deadline(Duration::from_secs(120), move || {
            let cfg = small_cfg(1, len);
            let rounds = 3;
            let inputs = gen_rounds(1, len, rounds, seed);
            let mut loss = KeyedLoss::uniform(drop, dup);
            if bursty {
                let avg = drop.clamp(0.01, 0.2);
                loss = loss.with_burst(GilbertElliott::from_average(avg, 0.6, 0.3));
            }
            let plan = FaultPlan::new(seed ^ 0xF11E).loss(loss);

            let off = run_rounds(&cfg, &plan, &inputs, None);
            assert!(off.results[0].is_ok(), "{:?}", off.results[0]);

            let telemetry = flight_telemetry();
            let on = run_rounds(&cfg, &plan, &inputs, Some(&telemetry));
            assert!(on.results[0].is_ok(), "{:?}", on.results[0]);

            // Bit-identical tensors, identical stats.
            for r in 0..rounds {
                let diff = off.outputs[0][r].max_abs_diff(&on.outputs[0][r]);
                assert_eq!(diff, 0.0, "round {r}: recorder perturbed the sum");
            }
            assert_eq!(off.stats[0], on.stats[0], "recorder perturbed worker stats");
            assert_eq!(
                off.agg_stats[0].1, on.agg_stats[0].1,
                "recorder perturbed aggregator stats"
            );

            // Recorded replay: exact stats again, and the recording
            // reconstructs every round.
            let telemetry2 = flight_telemetry();
            let replay = run_rounds(&cfg, &plan, &inputs, Some(&telemetry2));
            assert_eq!(on.stats[0], replay.stats[0], "recorded replay diverged");

            let rec = telemetry.flight().snapshot();
            assert!(!rec.is_empty(), "flight recording is empty");
            let attrib = reconstruct(&rec);
            assert_eq!(
                attrib.rounds.len(),
                rounds,
                "reconstructor must recover every round"
            );
            for b in &attrib.rounds {
                assert!(b.total_ns > 0, "round {} has no duration", b.round);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Detectors against seeded faults
// ---------------------------------------------------------------------

/// A worker slowed by an injected 2 ms per-message delay is flagged by
/// the skew detector — and none of the healthy peers are.
#[test]
fn straggler_detector_flags_the_seeded_slow_worker() {
    with_deadline(Duration::from_secs(120), || {
        let n = 3;
        let len = 512;
        let rounds = 6;
        let cfg = small_cfg(n, len).with_deterministic();
        let inputs = gen_rounds(n, len, rounds, 41);
        let slow = 1u16;
        let plan =
            FaultPlan::new(43).straggle(cfg.worker_node(slow as usize), Duration::from_millis(2));

        let telemetry = flight_telemetry();
        let out = run_rounds(&cfg, &plan, &inputs, Some(&telemetry));
        for (w, r) in out.results.iter().enumerate() {
            assert!(r.is_ok(), "worker {w} failed: {r:?}");
        }

        let attrib = reconstruct(&telemetry.flight().snapshot());
        let flagged: Vec<u16> = attrib.stragglers().map(|s| s.actor).collect();
        assert_eq!(
            flagged,
            vec![slow],
            "detector must flag exactly the delayed worker: {:?}",
            attrib.workers
        );
        // The flagged worker's skew is on the order of the injected
        // delay, far above the healthy peers.
        let skew = attrib.workers.iter().find(|s| s.actor == slow).unwrap();
        assert!(
            skew.p99_delay_ns >= 1_000_000,
            "p99 {}ns should reflect the 2ms injection",
            skew.p99_delay_ns
        );
    });
}

/// Sustained keyed loss produces retransmissions that the sliding-window
/// loss detector reports as at least one flagged burst.
#[test]
fn loss_detector_flags_retransmission_bursts() {
    with_deadline(Duration::from_secs(120), || {
        let len = 512;
        let rounds = 8;
        let cfg = small_cfg(1, len);
        let inputs = gen_rounds(1, len, rounds, 59);
        let plan = FaultPlan::new(61).loss(
            KeyedLoss::uniform(0.25, 0.0).with_burst(GilbertElliott::from_average(0.25, 0.6, 0.35)),
        );

        let telemetry = flight_telemetry();
        let out = run_rounds(&cfg, &plan, &inputs, Some(&telemetry));
        assert!(out.results[0].is_ok(), "{:?}", out.results[0]);
        assert!(
            out.stats[0].retransmissions > 0,
            "the plan must actually force retransmissions: {:?}",
            out.stats[0]
        );

        let rec = telemetry.flight().snapshot();
        // Sensitive thresholds: the run is short, the loss is heavy.
        let attrib = RoundAttribution::from_recording(
            &rec,
            &AttributionConfig {
                loss_window_rounds: 4,
                loss_threshold: 2,
                ..AttributionConfig::default()
            },
        );
        assert!(
            !attrib.loss_windows.is_empty(),
            "loss detector found no burst despite {} retransmissions",
            out.stats[0].retransmissions
        );
        let window_retx: u64 = attrib.loss_windows.iter().map(|w| w.retransmits).sum();
        assert!(window_retx > 0, "flagged windows must carry retransmits");
    });
}

// ---------------------------------------------------------------------
// End-to-end reconstruction from the sharded deployments
// ---------------------------------------------------------------------

/// A sharded recovery run under chaos yields a recording from which the
/// reconstructor rebuilds the round with a nonzero latency budget —
/// the acceptance path `omnistat` consumes.
#[test]
fn sharded_recovery_chaos_recording_reconstructs() {
    with_deadline(Duration::from_secs(120), || {
        let n = 3;
        let shards = 2;
        let len = 512;
        let cfg = small_cfg(n, len).with_aggregators(shards).with_streams(4);
        let inputs: Vec<Tensor> = gen_rounds(n, len, 1, 71)
            .into_iter()
            .map(|mut v| v.remove(0))
            .collect();
        let plans: Vec<FaultPlan> = (0..shards)
            .map(|s| FaultPlan::new(73 + s as u64).loss(KeyedLoss::uniform(0.08, 0.02)))
            .collect();

        let telemetry = flight_telemetry();
        let out = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &inputs, Some(&telemetry));
        for (w, o) in out.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
        }

        let rec = telemetry.flight().snapshot();
        assert!(!rec.is_empty());
        let attrib = reconstruct(&rec);
        assert_eq!(attrib.rounds.len(), 1, "one collective, one round");
        let b = &attrib.rounds[0];
        assert!(b.total_ns > 0);
        assert!(
            b.encode_ns + b.wire_ns + b.slot_wait_ns + b.straggler_ns + b.recovery_ns > 0,
            "attribution assigned no time to any component: {b:?}"
        );
        // The textual report renders without panicking and names the
        // round.
        let report = attrib.report();
        assert!(report.contains("round"), "report: {report}");
    });
}

/// The lossless sharded engine (ShardedWorker + OmniAggregator lanes)
/// produces a reconstructable recording too.
#[test]
fn sharded_lossless_traced_run_reconstructs_every_round() {
    with_deadline(Duration::from_secs(120), || {
        let n = 2;
        let shards = 2;
        let len = 512;
        let rounds = 3;
        let cfg = OmniConfig::new(n, len)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(4)
            .with_aggregators(shards);
        let inputs = gen_rounds(n, len, rounds, 83);

        let telemetry = flight_telemetry();
        let out = ShardedAllReduce::run_traced(&cfg, inputs, &telemetry);
        assert_eq!(out.outputs.len(), n);

        let attrib = reconstruct(&telemetry.flight().snapshot());
        assert_eq!(
            attrib.rounds.len(),
            rounds,
            "reconstructor must recover every lossless round"
        );
        for b in &attrib.rounds {
            assert!(b.total_ns > 0, "round {} has no duration", b.round);
            assert_eq!(b.retransmits, 0, "lossless run retransmitted?");
        }
    });
}
