//! Sharded interleaving tests: the multi-aggregator deployment under
//! adversarial schedules and per-shard faults.
//!
//! * **Join invariance.** [`ShardJoin`] reaches the same verdict under
//!   every completion order — a seeded-schedule sweep drives it through
//!   shuffled stream-completion permutations, including the empty-shard
//!   edge case where a shard owns no blocks and must be born complete.
//! * **Per-shard chaos.** Keyed loss injected independently per shard
//!   never corrupts the sum, and (single worker) a replay with the same
//!   seeds reproduces identical `RecoveryStats` and telemetry counters.
//! * **One-shard straggler.** Delaying one aggregator reorders the
//!   cross-lane interleaving without changing a single output bit.
//! * **Non-primary aggregator crash.** Workers fail fast with a typed
//!   error naming the dead shard, and the *surviving* shard winds down
//!   instead of waiting forever ([`DegradedMode::DropWorker`]).
//!
//! Every threaded test runs under [`with_deadline`]: a wedged join or a
//! survivor that never exits fails fast instead of hanging CI.

use std::time::Duration;

use omnireduce_core::config::{DegradedMode, OmniConfig};
use omnireduce_core::error::ProtocolError;
use omnireduce_core::shard::{ShardJoin, ShardMap, ShardedAllReduce};
use omnireduce_core::testing::with_deadline;
use omnireduce_telemetry::Telemetry;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::fault::{FaultPlan, KeyedLoss};
use omnireduce_transport::GilbertElliott;
use proptest::prelude::*;

/// Telemetry counters compared bit-for-bit in the sharded replay test
/// (the same guard list as the single-aggregator fault suite).
const REPLAYED_COUNTERS: &[&str] = &[
    "core.recovery.packets_sent",
    "core.recovery.retransmissions",
    "core.recovery.bytes_sent",
    "core.recovery.blocks_sent",
    "core.recovery.timer_fires",
    "core.recovery.stale_results_ignored",
    "core.recovery.backoffs",
    "core.recovery.agg.results_sent",
    "core.recovery.agg.result_retransmissions",
    "core.recovery.agg.duplicates_ignored",
    "transport.fault.keyed_drops",
    "transport.fault.keyed_dups",
];

fn sharded_cfg(n: usize, len: usize, shards: usize) -> OmniConfig {
    OmniConfig::new(n, len)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2)
        .with_aggregators(shards)
}

fn gen_inputs(n: usize, len: usize, seed: u64) -> Vec<Tensor> {
    gen::workers(
        n,
        len,
        BlockSpec::new(8),
        0.5,
        1.0,
        OverlapMode::Random,
        seed,
    )
}

/// One clean (fault-free) plan per shard.
fn clean_plans(shards: usize, seed: u64) -> Vec<FaultPlan> {
    (0..shards)
        .map(|s| FaultPlan::new(seed.wrapping_add(s as u64)))
        .collect()
}

// ---------------------------------------------------------------------
// Seeded-schedule join invariance (the loom-style interleaving sweep)
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates: one permutation per seed, reproducible on
/// failure from the proptest shrink output alone.
fn shuffle(v: &mut [usize], seed: u64) {
    let mut s = seed;
    for i in (1..v.len()).rev() {
        let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every shard count, tensor length and completion schedule:
    /// `ShardJoin` fires `shard_done` exactly when a shard's last open
    /// stream completes, `round_done` exactly on the globally last
    /// completion, and shards owning no blocks are born complete — no
    /// schedule can wedge or double-complete the round.
    #[test]
    fn prop_join_verdict_is_schedule_invariant(
        shards_ix in 0usize..3,
        len in 16usize..512,
        seed in any::<u64>(),
    ) {
        let shards = [1usize, 2, 4][shards_ix];
        let cfg = sharded_cfg(2, len, shards);
        let map = ShardMap::new(&cfg);
        let mut join = ShardJoin::new(map);

        // Born-complete check: exactly the structurally empty shards.
        for s in 0..shards {
            prop_assert_eq!(join.shard_done(s), map.is_empty(s), "shard {} at birth", s);
        }
        prop_assert!(!join.round_done(), "a non-empty tensor has open streams");

        let mut schedule: Vec<usize> = map.layout().active_streams().collect();
        shuffle(&mut schedule, seed);

        let mut open: Vec<usize> = (0..shards).map(|s| map.active_streams_of(s)).collect();
        for (i, &g) in schedule.iter().enumerate() {
            let ev = join.on_stream_complete(g);
            let s = map.shard_of_stream(g);
            prop_assert_eq!(ev.shard, s, "event names the wrong shard");
            open[s] -= 1;
            prop_assert_eq!(join.open_streams(s), open[s]);
            prop_assert_eq!(ev.shard_done, open[s] == 0, "shard_done for stream {}", g);
            prop_assert_eq!(
                ev.round_done,
                i + 1 == schedule.len(),
                "round_done must fire exactly on the last completion"
            );
        }
        prop_assert!(join.round_done());
    }
}

// ---------------------------------------------------------------------
// Empty shards end to end: short tensors must not wedge the round
// ---------------------------------------------------------------------

/// A tensor short enough that trailing shards own no blocks still
/// completes: the deployment returns (no join wedge), the sum is exact,
/// and the idle aggregators saw no data traffic.
#[test]
fn empty_shards_complete_the_round_end_to_end() {
    with_deadline(Duration::from_secs(60), || {
        // (shards, elements): 1 block → only shard 0 active of 2;
        // 2 blocks → shards 0,1 active of 4.
        for (shards, len) in [(2usize, 4usize), (4, 8)] {
            let cfg = OmniConfig::new(2, len)
                .with_block_size(4)
                .with_fusion(1)
                .with_streams(1)
                .with_aggregators(shards);
            let map = ShardMap::new(&cfg);
            let empties: Vec<usize> = (0..shards).filter(|&s| map.is_empty(s)).collect();
            assert!(!empties.is_empty(), "geometry must leave a shard empty");

            let inputs: Vec<Vec<Tensor>> = (0..2)
                .map(|w| vec![Tensor::from_vec(vec![w as f32 + 1.0; len])])
                .collect();
            let res = ShardedAllReduce::run(&cfg, inputs.clone());
            for outs in &res.outputs {
                for v in outs[0].as_slice() {
                    assert_eq!(*v, 3.0, "{shards} shards, {len} elements");
                }
            }
            for &s in &empties {
                assert_eq!(res.agg_stats[s].packets, 0, "empty shard {s} saw data");
                assert_eq!(
                    res.shard_bytes.iter().map(|b| b[s]).sum::<u64>(),
                    0,
                    "workers sent bytes to empty shard {s}"
                );
            }

            // Same geometry over the Algorithm 2 engine: the recovery
            // aggregator on an empty shard also winds down on goodbyes.
            let rec = ShardedAllReduce::run_recovery(&cfg, inputs);
            for (w, outs) in rec.outputs.iter().enumerate() {
                let diff = outs[0].max_abs_diff(&res.outputs[w][0]);
                assert_eq!(diff, 0.0, "recovery diverges on worker {w}");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Per-shard chaos: exactness and replay
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Independent keyed loss per shard never corrupts the sum: the
    /// sharded recovery engines produce the exact clean-mesh result,
    /// and (single worker) a replay with the same per-shard seeds
    /// reproduces identical stats and telemetry counters.
    #[test]
    fn prop_per_shard_chaos_is_exact_and_replayable(
        n in 1usize..3,
        shards_ix in 0usize..2,
        len in 64usize..256,
        drop in 0.0f64..0.2,
        dup in 0.0f64..0.08,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let shards = [2usize, 4][shards_ix];
        with_deadline(Duration::from_secs(120), move || {
            // Deterministic aggregation ⇒ bit-identical to the clean run
            // of the same engine; comfortable RTO floor ⇒ retransmissions
            // are driven by the keyed fates, not by scheduling noise.
            let cfg = sharded_cfg(n, len, shards)
                .with_deterministic()
                .with_initial_rto(Duration::from_millis(25))
                .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
                .with_max_retransmits(40);
            let inputs = gen_inputs(n, len, seed);

            let base =
                ShardedAllReduce::run_recovery_chaos(&cfg, &clean_plans(shards, seed), &inputs, None);
            for (w, o) in base.workers.iter().enumerate() {
                assert!(o.result.is_ok(), "clean run failed on worker {w}: {:?}", o.result);
            }

            let plans: Vec<FaultPlan> = (0..shards)
                .map(|s| {
                    let mut loss = KeyedLoss::uniform(drop, dup);
                    if bursty {
                        let avg = drop.clamp(0.01, 0.18);
                        loss = loss.with_burst(GilbertElliott::from_average(avg, 0.6, 0.3));
                    }
                    FaultPlan::new(seed ^ (0xDEAD + 131 * s as u64)).loss(loss)
                })
                .collect();

            let run = |telemetry: Option<&Telemetry>| {
                let out = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &inputs, telemetry);
                for (w, o) in out.workers.iter().enumerate() {
                    assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
                }
                for (s, (res, _)) in out.aggs.iter().enumerate() {
                    assert!(res.is_ok(), "shard {s} aggregator failed: {res:?}");
                }
                out
            };

            let out = run(None);
            for (w, o) in out.workers.iter().enumerate() {
                let diff = o.output.max_abs_diff(&base.workers[w].output);
                assert_eq!(diff, 0.0, "worker {w}: chaos result differs by {diff}");
                let split: u64 = o.shard_bytes.iter().sum();
                assert_eq!(split, o.stats.bytes_sent, "worker {w} byte split");
            }

            if n == 1 {
                let replay = || {
                    let telemetry = Telemetry::new();
                    let out = run(Some(&telemetry));
                    let snap = telemetry.snapshot();
                    let counters: Vec<u64> = REPLAYED_COUNTERS
                        .iter()
                        .map(|name| snap.counter(name))
                        .collect();
                    let agg_stats: Vec<_> = out.aggs.iter().map(|(_, s)| *s).collect();
                    (out.workers[0].stats, agg_stats, counters)
                };
                let (stats_a, aggs_a, counters_a) = replay();
                let (stats_b, aggs_b, counters_b) = replay();
                assert_eq!(stats_a, stats_b, "RecoveryStats diverge across replays");
                assert_eq!(aggs_a, aggs_b, "per-shard aggregator stats diverge");
                for (name, (a, b)) in REPLAYED_COUNTERS
                    .iter()
                    .zip(counters_a.iter().zip(counters_b.iter()))
                {
                    assert_eq!(a, b, "telemetry counter {name} diverges across replays");
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// One-shard straggler: reordering without divergence
// ---------------------------------------------------------------------

/// Delaying every send of one shard's aggregator perturbs the cross-lane
/// arrival order without changing a single output bit — the per-shard
/// completion join and deterministic reduction absorb the skew.
#[test]
fn one_shard_straggler_keeps_every_bit_stable() {
    with_deadline(Duration::from_secs(60), || {
        let n = 2;
        let shards = 2;
        let cfg = sharded_cfg(n, 512, shards)
            .with_deterministic()
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
            .with_max_retransmits(40);
        let inputs = gen_inputs(n, 512, 41);

        let base =
            ShardedAllReduce::run_recovery_chaos(&cfg, &clean_plans(shards, 1), &inputs, None);
        for o in &base.workers {
            assert!(o.result.is_ok(), "clean run failed: {:?}", o.result);
        }

        let telemetry = Telemetry::new();
        let plans = vec![
            FaultPlan::new(43),
            FaultPlan::new(47).straggle(cfg.aggregator_node(1), Duration::from_millis(2)),
        ];
        let out = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &inputs, Some(&telemetry));
        for (w, o) in out.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
            let diff = o.output.max_abs_diff(&base.workers[w].output);
            assert_eq!(diff, 0.0, "worker {w} diverges under the straggling shard");
        }
        assert!(
            telemetry
                .snapshot()
                .counter("transport.fault.straggle_delays")
                > 0,
            "straggler injections must be counted"
        );
    });
}

// ---------------------------------------------------------------------
// Non-primary aggregator crash: fail fast, survivors wind down
// ---------------------------------------------------------------------

/// Crashing shard 1's aggregator mid-stream bounds the failure: every
/// worker returns a typed error naming the dead shard's node within its
/// retry budget, the crashed aggregator observes its own death, and the
/// *surviving* shard 0 aggregator exits cleanly on the workers' goodbyes
/// instead of waiting forever — all without evictions, since the
/// survivor itself was never wronged.
#[test]
fn non_primary_aggregator_crash_fails_fast_and_survivor_winds_down() {
    with_deadline(Duration::from_secs(60), || {
        let n = 2;
        let shards = 2;
        let max_retransmits = 6;
        let cfg = sharded_cfg(n, 512, shards)
            .with_degraded_mode(DegradedMode::DropWorker)
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(100))
            .with_max_retransmits(max_retransmits)
            .with_eviction_timeout(Duration::from_millis(150));
        let inputs = gen_inputs(n, 512, 53);

        // Shard 0 stays healthy; shard 1's aggregator dies after two
        // data-plane sends — mid-stream, with workers still waiting.
        let plans = vec![
            FaultPlan::new(59),
            FaultPlan::new(61).crash_after(cfg.aggregator_node(1), 2),
        ];
        let out = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &inputs, None);

        let mut saw_unresponsive = false;
        for (w, o) in out.workers.iter().enumerate() {
            match &o.result {
                Err(ProtocolError::PeerUnresponsive {
                    peer, retransmits, ..
                }) => {
                    saw_unresponsive = true;
                    assert_eq!(
                        *peer,
                        cfg.aggregator_node(1),
                        "worker {w} must blame shard 1"
                    );
                    assert_eq!(*retransmits, max_retransmits, "worker {w}");
                }
                Err(ProtocolError::Transport(_)) => {
                    // Tolerated: the mesh may tear down under the first
                    // worker's failure before this one exhausts its budget.
                }
                other => panic!("worker {w}: expected failure, got {other:?}"),
            }
        }
        assert!(saw_unresponsive, "no worker detected the dead shard");

        // The crashed shard observes its own death on its next receive.
        assert!(out.aggs[1].0.is_err(), "crashed aggregator reported Ok");

        // The surviving shard served its streams and wound down cleanly
        // on the failing workers' goodbyes — reaching this line at all
        // (under the deadline) is the no-hang guarantee.
        let (res0, stats0) = &out.aggs[0];
        assert!(res0.is_ok(), "surviving shard 0 failed: {res0:?}");
        assert!(stats0.results_sent > 0, "shard 0 never served a stream");
        assert_eq!(stats0.evictions, 0, "survivor had no cause to evict");
    });
}
