//! End-to-end protocol tests: full worker/aggregator groups over
//! in-process transports, checking that every engine produces exactly the
//! element-wise sum of the inputs under all geometries — fusion widths,
//! stream counts, shard counts, sparsity patterns, overlap regimes, and
//! injected packet loss.

use omnireduce_core::config::OmniConfig;
use omnireduce_core::testing::{run_group, run_recovery_group, with_deadline};
use omnireduce_tensor::dense::reference_sum;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::{LossConfig, LossyNetwork};
use proptest::prelude::*;

/// Tolerance for float accumulation-order differences.
const TOL: f32 = 1e-4;

fn check_allreduce(cfg: &OmniConfig, inputs: Vec<Tensor>) {
    let expect = reference_sum(&inputs);
    let result = run_group(cfg, inputs.into_iter().map(|t| vec![t]).collect());
    for (w, outs) in result.outputs.iter().enumerate() {
        assert!(
            outs[0].approx_eq(&expect, TOL),
            "worker {w} diverges by {}",
            outs[0].max_abs_diff(&expect)
        );
    }
}

fn gen_inputs(
    n: usize,
    len: usize,
    bs: usize,
    sparsity: f64,
    mode: OverlapMode,
    seed: u64,
) -> Vec<Tensor> {
    gen::workers(n, len, BlockSpec::new(bs), sparsity, 1.0, mode, seed)
}

#[test]
fn basic_two_workers_no_fusion_single_stream() {
    let cfg = OmniConfig::new(2, 64)
        .with_block_size(4)
        .with_fusion(1)
        .with_streams(1);
    let a = Tensor::from_vec(
        (0..64)
            .map(|i| if i % 5 == 0 { i as f32 } else { 0.0 })
            .collect(),
    );
    let b = Tensor::from_vec(
        (0..64)
            .map(|i| if i % 7 == 0 { 1.0 } else { 0.0 })
            .collect(),
    );
    check_allreduce(&cfg, vec![a, b]);
}

#[test]
fn fig2_example_two_workers() {
    // The paper's Figure 2: 4 blocks; W1 non-zero at {0, 2, 3},
    // W2 non-zero at {0, 3}.
    let cfg = OmniConfig::new(2, 8)
        .with_block_size(2)
        .with_fusion(1)
        .with_streams(1);
    let w1 = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0, 3.0, 3.0]);
    let w2 = Tensor::from_vec(vec![5.0, 5.0, 0.0, 0.0, 0.0, 0.0, 7.0, 7.0]);
    check_allreduce(&cfg, vec![w1, w2]);
}

#[test]
fn all_zero_inputs() {
    let cfg = OmniConfig::new(3, 128)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2);
    check_allreduce(&cfg, vec![Tensor::zeros(128); 3]);
}

#[test]
fn fully_dense_inputs() {
    let cfg = OmniConfig::new(2, 100)
        .with_block_size(8)
        .with_fusion(4)
        .with_streams(2);
    let a = Tensor::from_vec((0..100).map(|i| i as f32 * 0.5).collect());
    let b = Tensor::from_vec((0..100).map(|i| 100.0 - i as f32).collect());
    check_allreduce(&cfg, vec![a, b]);
}

#[test]
fn tensor_not_multiple_of_block_size() {
    // 103 elements, bs=8 → 13 blocks, last partial.
    let cfg = OmniConfig::new(2, 103)
        .with_block_size(8)
        .with_fusion(4)
        .with_streams(2);
    let inputs = gen_inputs(2, 103, 8, 0.5, OverlapMode::Random, 7);
    check_allreduce(&cfg, inputs);
}

#[test]
fn tensor_smaller_than_one_fused_row() {
    // 3 blocks < fusion width 8: some columns invalid, one stream active.
    let cfg = OmniConfig::new(2, 12)
        .with_block_size(4)
        .with_fusion(8)
        .with_streams(4);
    let a = Tensor::from_vec((0..12).map(|i| i as f32).collect());
    let b = Tensor::from_vec((0..12).map(|i| -(i as f32)).collect());
    check_allreduce(&cfg, vec![a, b]);
}

#[test]
fn single_worker_group() {
    let cfg = OmniConfig::new(1, 64)
        .with_block_size(4)
        .with_fusion(2)
        .with_streams(2);
    let inputs = gen_inputs(1, 64, 4, 0.5, OverlapMode::Random, 3);
    check_allreduce(&cfg, inputs);
}

#[test]
fn eight_workers_high_sparsity() {
    let cfg = OmniConfig::new(8, 4096)
        .with_block_size(32)
        .with_fusion(4)
        .with_streams(4);
    let inputs = gen_inputs(8, 4096, 32, 0.95, OverlapMode::Random, 11);
    check_allreduce(&cfg, inputs);
}

#[test]
fn multiple_aggregator_shards() {
    let cfg = OmniConfig::new(4, 2048)
        .with_block_size(16)
        .with_fusion(4)
        .with_streams(4)
        .with_aggregators(4);
    let inputs = gen_inputs(4, 2048, 16, 0.7, OverlapMode::Random, 13);
    check_allreduce(&cfg, inputs);
}

#[test]
fn overlap_none_and_all() {
    for mode in [OverlapMode::None, OverlapMode::All] {
        let cfg = OmniConfig::new(4, 1024)
            .with_block_size(16)
            .with_fusion(2)
            .with_streams(2);
        let inputs = gen_inputs(4, 1024, 16, 0.8, mode, 17);
        check_allreduce(&cfg, inputs);
    }
}

#[test]
fn dense_streaming_mode_matches_sum() {
    // SwitchML*-style: every block transmitted.
    let cfg = OmniConfig::new(3, 512)
        .with_block_size(16)
        .with_fusion(4)
        .with_streams(2)
        .dense_streaming();
    let inputs = gen_inputs(3, 512, 16, 0.9, OverlapMode::Random, 19);
    check_allreduce(&cfg, inputs);
}

#[test]
fn dense_streaming_sends_all_blocks() {
    let len = 512;
    let bs = 16;
    let cfg = OmniConfig::new(2, len)
        .with_block_size(bs)
        .with_fusion(1)
        .with_streams(1);
    let sparse_inputs = gen_inputs(2, len, bs, 0.9, OverlapMode::Random, 23);
    let sparse = run_group(
        &cfg,
        sparse_inputs.iter().map(|t| vec![t.clone()]).collect(),
    );
    let dense_cfg = cfg.clone().dense_streaming();
    let dense = run_group(
        &dense_cfg,
        sparse_inputs.iter().map(|t| vec![t.clone()]).collect(),
    );
    let nblocks = (len / bs) as u64;
    for s in &dense.stats {
        assert_eq!(s.blocks_sent, nblocks, "dense mode must send every block");
    }
    for s in &sparse.stats {
        assert!(
            s.blocks_sent < nblocks / 2,
            "sparse mode should skip most blocks, sent {}",
            s.blocks_sent
        );
    }
}

#[test]
fn sparsity_reduces_bytes_sent() {
    let len = 8192;
    let bs = 64;
    let cfg = OmniConfig::new(2, len)
        .with_block_size(bs)
        .with_fusion(4)
        .with_streams(2);
    let mut bytes = Vec::new();
    for sparsity in [0.0, 0.5, 0.9] {
        let inputs = gen_inputs(2, len, bs, sparsity, OverlapMode::All, 29);
        let r = run_group(&cfg, inputs.into_iter().map(|t| vec![t]).collect());
        bytes.push(r.stats[0].bytes_sent);
    }
    assert!(
        bytes[0] > bytes[1] && bytes[1] > bytes[2],
        "bytes {bytes:?}"
    );
    // At 90% sparsity the payload should be ≈10% of dense (+ metadata).
    let ratio = bytes[2] as f64 / bytes[0] as f64;
    assert!(ratio < 0.2, "90% sparsity sent {ratio} of dense bytes");
}

#[test]
fn back_to_back_rounds() {
    let cfg = OmniConfig::new(3, 1024)
        .with_block_size(16)
        .with_fusion(4)
        .with_streams(4);
    let rounds = 3;
    let mut per_worker: Vec<Vec<Tensor>> = vec![Vec::new(); 3];
    let mut expects = Vec::new();
    for r in 0..rounds {
        let inputs = gen_inputs(3, 1024, 16, 0.6, OverlapMode::Random, 100 + r);
        expects.push(reference_sum(&inputs));
        for (w, t) in inputs.into_iter().enumerate() {
            per_worker[w].push(t);
        }
    }
    let result = run_group(&cfg, per_worker);
    for outs in &result.outputs {
        for (r, out) in outs.iter().enumerate() {
            assert!(out.approx_eq(&expects[r], TOL), "round {r} diverges");
        }
    }
}

// ---------------------------------------------------------------------
// Loss recovery (Algorithm 2)
// ---------------------------------------------------------------------

fn check_recovery(cfg: &OmniConfig, inputs: Vec<Tensor>, loss: f64, seed: u64) {
    // Watchdog: a stalled recovery collective must fail fast, not hang.
    let cfg = cfg.clone();
    with_deadline(std::time::Duration::from_secs(120), move || {
        let expect = reference_sum(&inputs);
        let mut net = LossyNetwork::new(cfg.mesh_size(), LossConfig::drops(loss, seed));
        let endpoints = net.endpoints();
        let result = run_recovery_group(
            &cfg,
            endpoints,
            inputs.into_iter().map(|t| vec![t]).collect(),
        );
        for (w, outs) in result.outputs.iter().enumerate() {
            assert!(
                outs[0].approx_eq(&expect, TOL),
                "worker {w} diverges by {} under loss {loss}",
                outs[0].max_abs_diff(&expect)
            );
        }
    });
}

#[test]
fn recovery_without_loss_matches() {
    let cfg = OmniConfig::new(3, 512)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    let inputs = gen_inputs(3, 512, 16, 0.6, OverlapMode::Random, 31);
    check_recovery(&cfg, inputs, 0.0, 1);
}

#[test]
fn recovery_under_one_percent_loss() {
    let cfg = OmniConfig::new(3, 1024)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    let inputs = gen_inputs(3, 1024, 16, 0.5, OverlapMode::Random, 37);
    check_recovery(&cfg, inputs, 0.01, 2);
}

#[test]
fn recovery_under_heavy_loss() {
    let mut cfg = OmniConfig::new(2, 256)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    cfg.retransmit_timeout = std::time::Duration::from_millis(5);
    let inputs = gen_inputs(2, 256, 16, 0.5, OverlapMode::Random, 41);
    check_recovery(&cfg, inputs, 0.2, 3);
}

#[test]
fn recovery_with_duplication() {
    let cfg = OmniConfig::new(3, 512)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    let inputs = gen_inputs(3, 512, 16, 0.5, OverlapMode::Random, 43);
    let expect = reference_sum(&inputs);
    let mut net = LossyNetwork::new(cfg.mesh_size(), LossConfig::uniform(0.05, 0.1, 5));
    let endpoints = net.endpoints();
    let result = run_recovery_group(
        &cfg,
        endpoints,
        inputs.into_iter().map(|t| vec![t]).collect(),
    );
    for outs in &result.outputs {
        assert!(
            outs[0].approx_eq(&expect, TOL),
            "duplication corrupted the sum: diff {}",
            outs[0].max_abs_diff(&expect)
        );
    }
}

#[test]
fn recovery_multi_round_under_loss() {
    let mut cfg = OmniConfig::new(2, 256)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    cfg.retransmit_timeout = std::time::Duration::from_millis(5);
    let rounds = 3;
    let mut per_worker: Vec<Vec<Tensor>> = vec![Vec::new(); 2];
    let mut expects = Vec::new();
    for r in 0..rounds {
        let inputs = gen_inputs(2, 256, 16, 0.5, OverlapMode::Random, 200 + r);
        expects.push(reference_sum(&inputs));
        for (w, t) in inputs.into_iter().enumerate() {
            per_worker[w].push(t);
        }
    }
    let mut net = LossyNetwork::new(cfg.mesh_size(), LossConfig::drops(0.05, 9));
    let result = run_recovery_group(&cfg, net.endpoints(), per_worker);
    for outs in &result.outputs {
        for (r, out) in outs.iter().enumerate() {
            assert!(out.approx_eq(&expects[r], TOL), "round {r} diverges");
        }
    }
}

#[test]
fn recovery_retransmits_under_loss() {
    let mut cfg = OmniConfig::new(2, 512)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    cfg.retransmit_timeout = std::time::Duration::from_millis(5);
    let inputs = gen_inputs(2, 512, 16, 0.3, OverlapMode::Random, 47);
    let mut net = LossyNetwork::new(cfg.mesh_size(), LossConfig::drops(0.1, 17));
    let result = run_recovery_group(
        &cfg,
        net.endpoints(),
        inputs.into_iter().map(|t| vec![t]).collect(),
    );
    let total_retx: u64 = result.stats.iter().map(|s| s.retransmissions).sum();
    assert!(total_retx > 0, "10% loss must trigger retransmissions");
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The lossless engine computes the exact block-wise sum for arbitrary
    /// geometry and sparsity structure.
    #[test]
    fn prop_lossless_allreduce_sums(
        n in 1usize..5,
        bs in 1usize..9,
        fusion in 1usize..5,
        streams in 1usize..4,
        shards in 1usize..3,
        len in 1usize..300,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let cfg = OmniConfig::new(n, len)
            .with_block_size(bs)
            .with_fusion(fusion)
            .with_streams(streams)
            .with_aggregators(shards);
        let inputs = gen::workers(
            n, len, BlockSpec::new(bs), sparsity, 0.7, OverlapMode::Random, seed,
        );
        let expect = reference_sum(&inputs);
        let result = run_group(&cfg, inputs.into_iter().map(|t| vec![t]).collect());
        for outs in &result.outputs {
            prop_assert!(outs[0].approx_eq(&expect, TOL));
        }
    }

    /// Algorithm 2 delivers exactly-once aggregation under arbitrary
    /// drop/duplication patterns.
    #[test]
    fn prop_recovery_exactly_once(
        n in 1usize..4,
        len in 16usize..200,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.25,
        seed in 0u64..1000,
    ) {
        let mut cfg = OmniConfig::new(n, len)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2);
        cfg.retransmit_timeout = std::time::Duration::from_millis(4);
        let inputs = gen::workers(
            n, len, BlockSpec::new(8), 0.5, 1.0, OverlapMode::Random, seed,
        );
        let expect = reference_sum(&inputs);
        let mut net = LossyNetwork::new(
            cfg.mesh_size(),
            LossConfig::uniform(drop, dup, seed),
        );
        let result = run_recovery_group(
            &cfg,
            net.endpoints(),
            inputs.into_iter().map(|t| vec![t]).collect(),
        );
        for outs in &result.outputs {
            prop_assert!(
                outs[0].approx_eq(&expect, TOL),
                "diff {}", outs[0].max_abs_diff(&expect)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Numeric reproducibility (§7)
// ---------------------------------------------------------------------

/// In deterministic mode, the aggregated result is bit-identical to the
/// worker-id-ordered fold — regardless of packet arrival order — and
/// identical across repeated runs.
#[test]
fn deterministic_mode_is_bit_reproducible() {
    let cfg = OmniConfig::new(4, 2048)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(4)
        .with_deterministic();
    // Values whose float sum is ordering-sensitive.
    let inputs: Vec<Tensor> = (0..4)
        .map(|w| {
            Tensor::from_vec(
                (0..2048)
                    .map(|i| ((i * 31 + w * 7) % 97) as f32 * 1e-3 + 1e7 * ((w % 2) as f32))
                    .collect(),
            )
        })
        .collect();
    // Reference fold in worker-id order — must match EXACTLY.
    let expect = reference_sum(&inputs);
    let mut first: Option<Vec<Tensor>> = None;
    for _ in 0..3 {
        let result = run_group(&cfg, inputs.iter().map(|t| vec![t.clone()]).collect());
        let outs: Vec<Tensor> = result
            .outputs
            .into_iter()
            .map(|mut o| o.remove(0))
            .collect();
        for out in &outs {
            assert_eq!(
                out.as_slice(),
                expect.as_slice(),
                "deterministic mode must reproduce the wid-ordered fold bitwise"
            );
        }
        if let Some(prev) = &first {
            for (a, b) in prev.iter().zip(&outs) {
                assert_eq!(a.as_slice(), b.as_slice(), "run-to-run mismatch");
            }
        } else {
            first = Some(outs);
        }
    }
}

/// Deterministic mode still skips zero blocks and handles sparsity.
#[test]
fn deterministic_mode_with_sparsity() {
    let cfg = OmniConfig::new(3, 1024)
        .with_block_size(16)
        .with_fusion(4)
        .with_streams(2)
        .with_deterministic();
    let inputs = gen_inputs(3, 1024, 16, 0.7, OverlapMode::Random, 99);
    let expect = reference_sum(&inputs);
    let result = run_group(&cfg, inputs.into_iter().map(|t| vec![t]).collect());
    for outs in &result.outputs {
        assert_eq!(outs[0].as_slice(), expect.as_slice());
    }
}

/// Aggregator observability counters track rounds, slots and blocks.
#[test]
fn aggregator_stats_track_rounds() {
    use omnireduce_core::aggregator::OmniAggregator;
    use omnireduce_core::worker::OmniWorker;
    use omnireduce_transport::{ChannelNetwork, NodeId};
    use std::thread;

    let cfg = OmniConfig::new(2, 512)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || {
        let mut a = OmniAggregator::new(agg_t, agg_cfg);
        a.run().unwrap();
        a.stats
    });
    let rounds = 3;
    let mut handles = Vec::new();
    for w in 0..2 {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            for r in 0..rounds {
                let mut tensor = gen::workers(
                    2,
                    512,
                    BlockSpec::new(16),
                    0.5,
                    1.0,
                    OverlapMode::Random,
                    500 + r,
                )
                .remove(w);
                worker.allreduce(&mut tensor).unwrap();
            }
            worker.shutdown().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = agg.join().unwrap();
    assert_eq!(stats.rounds_completed, rounds);
    assert!(stats.packets > 0);
    assert!(stats.blocks_received >= stats.slots_completed);
    assert!(stats.slots_completed > 0);
}
