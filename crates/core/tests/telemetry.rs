//! Cross-crate telemetry consistency: the registry counters that the
//! protocol actors and the packet simulator publish must agree with the
//! ground-truth POD stats (`NicStats`, `SimOutcome`) for the same run.
//!
//! This is the contract the bench harness relies on when it dumps
//! `results/<slug>.metrics.json`: the JSON is an alternative view of the
//! same experiment, not a second (possibly drifting) measurement.

use omnireduce_core::config::OmniConfig;
use omnireduce_core::sim::{bitmaps_from_sets, simulate_allreduce, SimSpec};
use omnireduce_core::sim_recovery::simulate_recovery_allreduce_with_telemetry;
use omnireduce_simnet::{Bandwidth, NicConfig, SimTime};
use omnireduce_telemetry::Telemetry;

fn small_cfg(n: usize) -> OmniConfig {
    OmniConfig::new(n, 4096)
        .with_block_size(64)
        .with_fusion(2)
        .with_streams(4)
        .with_aggregators(n)
}

/// Every worker dense except one hole, so all paths (send, skip, result)
/// are exercised.
fn bitmaps(n: usize, cfg: &OmniConfig) -> Vec<omnireduce_tensor::NonZeroBitmap> {
    let nblocks = cfg.tensor_len.div_ceil(64);
    let sets: Vec<Vec<bool>> = (0..n)
        .map(|w| (0..nblocks).map(|b| b % (w + 2) != 1).collect())
        .collect();
    bitmaps_from_sets(&sets)
}

#[test]
fn sim_counters_agree_with_nic_stats() {
    let n = 4;
    let cfg = small_cfg(n);
    let bms = bitmaps(n, &cfg);
    let telemetry = Telemetry::with_tracing(4096);
    let spec = SimSpec::dedicated(cfg, Bandwidth::gbps(10.0), SimTime::from_micros(5))
        .with_telemetry(telemetry.clone());
    let out = simulate_allreduce(&spec, &bms);

    let snap = telemetry.snapshot();

    // The simulator's fleet-wide NIC counters mirror the per-NIC stats.
    let bytes_tx: u64 = out.report.nic_stats.iter().map(|s| s.bytes_tx).sum();
    let bytes_rx: u64 = out.report.nic_stats.iter().map(|s| s.bytes_rx).sum();
    let packets_tx: u64 = out.report.nic_stats.iter().map(|s| s.packets_tx).sum();
    assert!(bytes_tx > 0, "the run must move data");
    assert_eq!(snap.counter("simnet.nic.bytes_tx"), bytes_tx);
    assert_eq!(snap.counter("simnet.nic.bytes_rx"), bytes_rx);
    assert_eq!(snap.counter("simnet.nic.packets_tx"), packets_tx);
    assert_eq!(snap.counter("simnet.nic.packets_lost"), 0);

    // Worker-side protocol counters agree with the outcome's byte count:
    // in dedicated mode worker NICs transmit exactly the worker payloads.
    assert_eq!(
        snap.counter("core.sim.worker.bytes_sent"),
        out.worker_tx_bytes
    );
    assert_eq!(
        snap.counter("core.sim.worker.rounds_completed"),
        n as u64,
        "every worker completes the round"
    );
    assert!(snap.counter("core.sim.worker.packets_sent") > 0);
    assert!(snap.counter("core.sim.aggregator.results_sent") > 0);

    // Queue-delay histogram totals mirror the NicStats sums.
    let delay_sum: u64 = out.report.nic_stats.iter().map(|s| s.queue_delay_sum).sum();
    let h = &snap.histograms["simnet.nic.queue_delay_ns"];
    assert_eq!(h.sum, delay_sum);
    assert_eq!(
        h.max,
        out.report
            .nic_stats
            .iter()
            .map(|s| s.queue_delay_max)
            .max()
            .unwrap_or(0)
    );

    // Tracing was enabled, so the run recorded spans and exports a
    // well-formed Chrome trace document.
    assert!(!telemetry.trace().is_empty());
    let chrome = telemetry.trace().to_chrome_json();
    assert!(chrome.starts_with('{') && chrome.contains("\"traceEvents\""));
}

#[test]
fn recovery_sim_counts_retransmissions_under_loss() {
    let n = 2;
    let cfg = small_cfg(n);
    let bms = bitmaps(n, &cfg);
    let nic = NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(5));
    let telemetry = Telemetry::new();
    let out = simulate_recovery_allreduce_with_telemetry(
        &cfg,
        nic,
        nic,
        0.05,
        omnireduce_core::sim_recovery::SimRtoConfig::fixed(SimTime::from_micros(4000)),
        &bms,
        42,
        Some(&telemetry),
    );
    let snap = telemetry.snapshot();
    let lost: u64 = out.report.nic_stats.iter().map(|s| s.packets_lost).sum();
    assert_eq!(snap.counter("simnet.nic.packets_lost"), lost);
    assert!(lost > 0, "5% loss on this run must drop something");
    assert!(
        snap.counter("core.sim_recovery.timer_fires") > 0,
        "losses must fire retransmission timers"
    );
    assert!(
        snap.counter("core.sim_recovery.retransmissions") > 0,
        "fired timers must retransmit"
    );
    assert_eq!(
        snap.counter("simnet.nic.bytes_tx"),
        out.report.nic_stats.iter().map(|s| s.bytes_tx).sum::<u64>()
    );
}
