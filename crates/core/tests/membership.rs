//! Elastic-membership integration tests: epoch fencing, explicit
//! join/rejoin, and wind-down symmetry.
//!
//! * **Epoch fencing.** An evicted worker's readmission bumps the
//!   membership epoch; packets stamped with a pre-admission epoch are
//!   rejected deterministically (`stale_epoch_dropped`), never
//!   aggregated into fresh phases.
//! * **Rejoin ladder.** Under [`DegradedMode::Rejoin`] a zombie data
//!   packet is answered with the current `Welcome`, so the evicted
//!   worker fails fast with [`ProtocolError::Evicted`], `join()`s, and
//!   contributes to subsequent rounds — bit-identical to everyone else.
//! * **Wind-down symmetry.** A dead lane must not keep goodbyes from
//!   reaching the surviving lanes; failures are counted in telemetry
//!   and surfaced, not swallowed.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use omnireduce_core::config::{DegradedMode, OmniConfig};
use omnireduce_core::error::ProtocolError;
use omnireduce_core::recovery::{RecoveryAggregator, RecoveryWorker};
use omnireduce_core::shard::ShardedWorker;
use omnireduce_core::testing::with_deadline;
use omnireduce_telemetry::Telemetry;
use omnireduce_tensor::dense::reference_sum;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::BlockSpec;
use omnireduce_transport::channel::ChannelTransport;
use omnireduce_transport::{
    ChannelNetwork, Entry, Message, NodeId, Packet, PacketKind, ShardedChannelMesh, Transport,
    TransportError,
};

fn data_packet(wid: u16, ver: u8, epoch: u8, vals: &[f32]) -> Message {
    Message::Block(Packet {
        kind: PacketKind::Data,
        ver,
        epoch,
        slot: 0,
        stream: 0,
        wid,
        entries: vec![Entry::data(0, 0, vals.to_vec())],
    })
}

/// Blocks until `pred` matches a received message (10 s cap).
fn recv_matching(t: &ChannelTransport, pred: impl Fn(&Message) -> bool) -> Message {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(!left.is_zero(), "timed out waiting for a matching message");
        if let Some((_, m)) = t.recv_timeout(left).expect("transport failed") {
            if pred(&m) {
                return m;
            }
        }
    }
}

fn result_fields(m: &Message) -> (u8, u8, Vec<f32>) {
    match m {
        Message::Block(p) => {
            assert_eq!(p.kind, PacketKind::Result);
            (p.ver, p.epoch, p.entries[0].data.clone())
        }
        other => panic!("expected a result, got {}", other.tag()),
    }
}

/// Drives the aggregator over raw endpoints through the full epoch
/// state machine: shared round at epoch 0 → eviction (epoch 1) with a
/// degraded completion → explicit `Join` admitted at the idle round
/// boundary (epoch 2) with correct phase cursors → a pre-admission
/// stale packet rejected by the epoch fence → a fresh full round.
#[test]
fn evict_rejoin_and_stale_epoch_fencing() {
    with_deadline(Duration::from_secs(60), || {
        let cfg = OmniConfig::new(2, 8)
            .with_block_size(8)
            .with_fusion(1)
            .with_streams(1)
            .with_eviction_timeout(Duration::from_millis(100))
            .with_degraded_mode(DegradedMode::DropWorker);
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let mut endpoints = net.endpoints();
        let agg_t = endpoints.remove(cfg.aggregator_node(0) as usize);
        let w1 = endpoints.remove(1);
        let w0 = endpoints.remove(0);
        let agg_node = NodeId(cfg.aggregator_node(0));

        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            let mut agg = RecoveryAggregator::new(agg_t, agg_cfg);
            let res = agg.run();
            (res, agg.stats, agg)
        });

        // Round 1 (ver 0, epoch 0): both contribute.
        w0.send(agg_node, &data_packet(0, 0, 0, &[1.0; 8])).unwrap();
        w1.send(agg_node, &data_packet(1, 0, 0, &[2.0; 8])).unwrap();
        for t in [&w0, &w1] {
            let r = recv_matching(t, |m| matches!(m, Message::Block(_)));
            let (ver, epoch, data) = result_fields(&r);
            assert_eq!((ver, epoch), (0, 0));
            assert_eq!(data, vec![3.0; 8]);
        }

        // Round 2 (ver 1): worker 1 goes silent past the eviction
        // timeout. The round completes degraded at epoch 1.
        thread::sleep(Duration::from_millis(150));
        w0.send(agg_node, &data_packet(0, 1, 0, &[5.0; 8])).unwrap();
        let r = recv_matching(&w0, |m| matches!(m, Message::Block(_)));
        let (ver, epoch, data) = result_fields(&r);
        assert_eq!((ver, epoch), (1, 1), "eviction must bump the epoch");
        assert_eq!(data, vec![5.0; 8], "degraded round keeps w0's data only");

        // Worker 1 rejoins: admitted at the idle boundary, epoch 2,
        // with the stream's next-phase cursor (ver 1 completed → 0).
        w1.send(agg_node, &Message::Join { wid: 1 }).unwrap();
        let welcome = recv_matching(&w1, |m| matches!(m, Message::Welcome { .. }));
        match welcome {
            Message::Welcome { epoch, vers } => {
                assert_eq!(epoch, 2, "admission must bump the epoch again");
                assert_eq!(vers, vec![0], "cursor must point at the next phase");
            }
            _ => unreachable!(),
        }

        // A straggler stamped with worker 1's pre-admission epoch is
        // fenced off; the fresh contributions complete normally.
        w1.send(agg_node, &data_packet(1, 0, 0, &[9.0; 8])).unwrap();
        w0.send(agg_node, &data_packet(0, 0, 1, &[7.0; 8])).unwrap();
        w1.send(agg_node, &data_packet(1, 0, 2, &[9.0; 8])).unwrap();
        for t in [&w0, &w1] {
            let r = recv_matching(t, |m| matches!(m, Message::Block(_)));
            let (ver, epoch, data) = result_fields(&r);
            assert_eq!((ver, epoch), (0, 2));
            assert_eq!(data, vec![16.0; 8], "stale packet must not be aggregated");
        }

        w0.send(agg_node, &Message::Shutdown).unwrap();
        w1.send(agg_node, &Message::Shutdown).unwrap();
        let (res, stats, _agg) = agg.join().expect("aggregator panicked");
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.joins_admitted, 1);
        assert_eq!(stats.stale_epoch_dropped, 1);
        assert_eq!(stats.degraded_completions, 1);
    });
}

/// Acceptance: a `DropWorker`-evicted worker under `Rejoin` mode fails
/// fast with `Evicted`, `join()`s at a later epoch, and contributes to
/// the subsequent round — whose result is bit-identical across workers
/// and equal to the reference sum.
#[test]
fn evicted_worker_rejoins_and_contributes_to_next_round() {
    with_deadline(Duration::from_secs(60), || {
        let n = 2;
        let len = 256;
        let cfg = OmniConfig::new(n, len)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_deterministic()
            .with_degraded_mode(DegradedMode::Rejoin)
            .with_eviction_timeout(Duration::from_millis(100))
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(200))
            .with_max_retransmits(40);
        let mk = |seed| {
            gen::workers(
                n,
                len,
                BlockSpec::new(8),
                0.5,
                1.0,
                OverlapMode::Random,
                seed,
            )
        };
        let round1 = mk(11);
        let round2 = mk(13);
        let expected2 = reference_sum(&round2);

        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let mut endpoints: Vec<Option<_>> = net.endpoints().into_iter().map(Some).collect();
        let (joined_tx, joined_rx) = mpsc::channel::<()>();

        let agg_t = endpoints[cfg.aggregator_node(0) as usize].take().unwrap();
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            let mut agg = RecoveryAggregator::new(agg_t, agg_cfg);
            let res = agg.run();
            (res, agg.stats, agg)
        });

        // Worker 0: degraded round 1 alone, then round 2 with the
        // readmitted worker 1.
        let t0 = endpoints[cfg.worker_node(0) as usize].take().unwrap();
        let cfg0 = cfg.clone();
        let mut a1 = round1[0].clone();
        let mut a2 = round2[0].clone();
        let w0 = thread::spawn(move || {
            let mut w = RecoveryWorker::new(t0, cfg0);
            w.allreduce(&mut a1).expect("degraded round 1 failed");
            joined_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("worker 1 never rejoined");
            w.allreduce(&mut a2).expect("round 2 failed");
            w.shutdown().expect("goodbye failed");
            (a1, a2)
        });

        // Worker 1: sleeps through round 1, gets evicted, is told so by
        // the zombie answer, rejoins, and contributes to round 2.
        let t1 = endpoints[cfg.worker_node(1) as usize].take().unwrap();
        let cfg1 = cfg.clone();
        let mut b1 = round1[1].clone();
        let mut b2 = round2[1].clone();
        let w1 = thread::spawn(move || {
            thread::sleep(Duration::from_millis(700));
            let mut w = RecoveryWorker::new(t1, cfg1);
            let err = w.allreduce(&mut b1).expect_err("zombie round must fail");
            match err {
                ProtocolError::Evicted { worker, epoch } => {
                    assert_eq!(worker, 1);
                    assert!(epoch >= 1, "eviction must have bumped the epoch");
                }
                other => panic!("expected Evicted, got {other:?}"),
            }
            w.join().expect("rejoin failed");
            joined_tx.send(()).unwrap();
            w.allreduce(&mut b2).expect("post-rejoin round failed");
            w.shutdown().expect("goodbye failed");
            b2
        });

        let (a1_out, a2_out) = w0.join().expect("worker 0 panicked");
        let b2_out = w1.join().expect("worker 1 panicked");
        // Degraded round 1 = worker 0's own contribution, unchanged.
        assert_eq!(a1_out.max_abs_diff(&round1[0]), 0.0);
        // Round 2 includes the rejoined worker: bit-identical across
        // workers and equal to the two-worker reference sum.
        assert_eq!(a2_out.max_abs_diff(&b2_out), 0.0);
        assert_eq!(a2_out.max_abs_diff(&expected2), 0.0);

        let (res, stats, _agg) = agg.join().expect("aggregator panicked");
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.joins_admitted, 1);
        assert!(stats.evicted_packets_dropped >= 1);
        assert!(stats.degraded_completions >= 1);
    });
}

/// Regression (wind-down symmetry): a dead shard must not keep the
/// goodbye from reaching surviving shards; the failure is counted and
/// the first error surfaced after every lane was tried.
#[test]
fn sharded_shutdown_reaches_surviving_lanes_and_counts_failures() {
    with_deadline(Duration::from_secs(30), || {
        let cfg = OmniConfig::new(1, 32)
            .with_block_size(8)
            .with_fusion(1)
            .with_streams(2)
            .with_aggregators(2);
        let mut mesh = ShardedChannelMesh::new(1, 2);
        let lanes = mesh.worker_lanes(0);
        drop(mesh.aggregator_endpoint(0)); // shard 0 is dead
        let agg1 = mesh.aggregator_endpoint(1);

        let telemetry = Telemetry::new();
        let worker = ShardedWorker::with_telemetry(lanes, cfg, &telemetry);
        let err = worker.shutdown().expect_err("dead lane must surface");
        assert!(matches!(err, TransportError::Disconnected), "{err:?}");

        // The surviving shard still received its goodbye.
        let (_, msg) = agg1
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .expect("surviving lane never got the goodbye");
        assert!(matches!(msg, Message::Shutdown));
        assert_eq!(
            telemetry.snapshot().counter("core.shard.shutdown_errors"),
            1
        );
    });
}

/// Regression: the recovery worker's wind-down tries the standby even
/// when it is gone, counts the failure, and still reaches the primary.
#[test]
fn recovery_shutdown_attempts_all_targets_and_surfaces_errors() {
    with_deadline(Duration::from_secs(60), || {
        let cfg = OmniConfig::new(1, 64)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_hot_standby();
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let mut endpoints: Vec<Option<_>> = net.endpoints().into_iter().map(Some).collect();
        // The standby is gone before the run even starts; checkpoint
        // replication is best-effort, so the primary must not care.
        drop(endpoints[cfg.standby_node(0) as usize].take());

        let agg_t = endpoints[cfg.aggregator_node(0) as usize].take().unwrap();
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            let mut agg = RecoveryAggregator::new(agg_t, agg_cfg);
            let res = agg.run();
            (res, agg)
        });

        let telemetry = Telemetry::new();
        let t0 = endpoints[cfg.worker_node(0) as usize].take().unwrap();
        let mut tensor =
            gen::workers(1, 64, BlockSpec::new(8), 0.5, 1.0, OverlapMode::Random, 17).remove(0);
        let mut w = RecoveryWorker::with_telemetry(t0, cfg, &telemetry);
        w.allreduce(&mut tensor).expect("round failed");
        let err = w.shutdown().expect_err("dead standby must surface");
        assert!(matches!(err, TransportError::Disconnected), "{err:?}");
        assert_eq!(
            telemetry
                .snapshot()
                .counter("core.recovery.shutdown_errors"),
            1
        );

        // The goodbye still reached the primary: its run loop exits Ok.
        let (res, _agg) = agg.join().expect("aggregator panicked");
        assert!(res.is_ok(), "{res:?}");
    });
}
