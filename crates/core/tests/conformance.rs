//! Cross-engine differential conformance suite (ISSUE 3 / DESIGN §9).
//!
//! One seeded scenario generator — workers × sparsity × block size ×
//! fusion × deterministic flag × loss plan — runs every scenario through
//! the executable engines (lossless Algorithm 1, loss-recovery
//! Algorithm 2 over clean and lossy meshes) and asserts **bit-identical**
//! outputs against a scalar reference reduction.
//!
//! Bit-exactness across arrival orders is made meaningful by quantizing
//! every input to multiples of 0.25: f32 addition of such values (at
//! these magnitudes) is exact, so *any* reduction order must produce the
//! same bits — a reordering bug, a buffer-reuse bug, or a vectorization
//! bug all surface as a bit mismatch, not as "within tolerance".
//!
//! The binary also registers the counting allocator and locks in the
//! zero-allocation property of the pooled hot path (the
//! `aggregator.rs` clone-per-block regression).

use std::time::Duration;

use omnireduce_core::config::OmniConfig;
use omnireduce_core::shard::ShardedAllReduce;
use omnireduce_core::testing::{
    assert_bits_eq, config_of, gen_inputs, run_group, run_recovery_group, scalar_oracle, scenarios,
    with_deadline, Scenario,
};
use omnireduce_core::ColAccumulator;
use omnireduce_telemetry::alloc::CountingAllocator;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::codec::{decode_into, encode_into};
use omnireduce_transport::{
    BufferPool, ChannelNetwork, Entry, FaultPlan, KeyedLoss, LossConfig, LossyNetwork, Message,
    NodeId, Packet, PacketKind,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn lossless_engine_matches_scalar_oracle_across_matrix() {
    with_deadline(Duration::from_secs(180), || {
        for s in scenarios() {
            if s.loss > 0.0 {
                continue; // lossy plans target the recovery engine
            }
            let cfg = config_of(&s);
            let inputs = gen_inputs(&s);
            let result = run_group(&cfg, inputs.clone());
            for r in 0..s.rounds {
                let oracle = scalar_oracle(&inputs, r);
                for (w, outs) in result.outputs.iter().enumerate() {
                    assert_bits_eq(&outs[r], &oracle, &format!("{s:?} lossless w{w} r{r}"));
                }
            }
        }
    });
}

#[test]
fn recovery_engine_matches_scalar_oracle_on_clean_mesh() {
    with_deadline(Duration::from_secs(180), || {
        for s in scenarios() {
            if s.loss > 0.0 {
                continue;
            }
            // Large fixed RTO: on a lossless mesh no timer should fire.
            let cfg = config_of(&s).with_fixed_rto(Duration::from_secs(30));
            let inputs = gen_inputs(&s);
            let mut net = ChannelNetwork::new(cfg.mesh_size());
            let endpoints = (0..cfg.mesh_size())
                .map(|i| net.endpoint(NodeId(i as u16)))
                .collect();
            let result = run_recovery_group(&cfg, endpoints, inputs.clone());
            for r in 0..s.rounds {
                let oracle = scalar_oracle(&inputs, r);
                for (w, outs) in result.outputs.iter().enumerate() {
                    assert_bits_eq(&outs[r], &oracle, &format!("{s:?} recovery w{w} r{r}"));
                }
                for st in &result.stats {
                    assert_eq!(st.retransmissions, 0, "{s:?}: clean mesh retransmitted");
                }
            }
        }
    });
}

#[test]
fn recovery_engine_matches_scalar_oracle_under_loss() {
    with_deadline(Duration::from_secs(300), || {
        for s in scenarios() {
            if s.loss == 0.0 {
                continue;
            }
            let cfg = config_of(&s).with_fixed_rto(Duration::from_millis(25));
            let inputs = gen_inputs(&s);
            // Drops and duplicates: retransmissions and replays must fold
            // idempotently (two-phase versioned slots).
            let mut net = LossyNetwork::new(
                cfg.mesh_size(),
                LossConfig::uniform(s.loss, s.loss / 2.0, s.seed),
            );
            let endpoints = net.endpoints();
            let result = run_recovery_group(&cfg, endpoints, inputs.clone());
            for r in 0..s.rounds {
                let oracle = scalar_oracle(&inputs, r);
                for (w, outs) in result.outputs.iter().enumerate() {
                    assert_bits_eq(
                        &outs[r],
                        &oracle,
                        &format!("{s:?} lossy recovery w{w} r{r}"),
                    );
                }
            }
        }
    });
}

/// The shard counts of the sharded conformance column. Every scenario
/// in the matrix runs at each of these, threaded over per-shard meshes.
const SHARD_COLUMN: [usize; 3] = [1, 2, 4];

/// `cfg` for scenario `s` re-based onto `shards` aggregators (stream
/// count per shard is preserved, so total streams scale with shards).
fn sharded_config_of(s: &Scenario, shards: usize) -> OmniConfig {
    let mut cfg = OmniConfig::new(s.workers, s.elements)
        .with_block_size(s.block_size)
        .with_fusion(s.fusion)
        .with_streams(s.streams)
        .with_aggregators(shards);
    if s.deterministic {
        cfg = cfg.with_deterministic();
    }
    cfg
}

#[test]
fn sharded_lossless_engine_matches_scalar_oracle_across_matrix() {
    with_deadline(Duration::from_secs(300), || {
        for s in scenarios() {
            if s.loss > 0.0 {
                continue;
            }
            let inputs = gen_inputs(&s);
            for shards in SHARD_COLUMN {
                let cfg = sharded_config_of(&s, shards);
                let result = ShardedAllReduce::run(&cfg, inputs.clone());
                for r in 0..s.rounds {
                    let oracle = scalar_oracle(&inputs, r);
                    for (w, outs) in result.outputs.iter().enumerate() {
                        assert_bits_eq(
                            &outs[r],
                            &oracle,
                            &format!("{s:?} sharded×{shards} lossless w{w} r{r}"),
                        );
                    }
                }
                // Per-shard byte counters decompose the aggregate, and
                // every aggregator thread joined with its shard served.
                for (w, st) in result.stats.iter().enumerate() {
                    let split: u64 = result.shard_bytes[w].iter().sum();
                    assert_eq!(split, st.bytes_sent, "{s:?}×{shards} w{w} byte split");
                }
                assert_eq!(result.agg_stats.len(), shards, "{s:?} aggregator join");
            }
        }
    });
}

#[test]
fn sharded_recovery_engine_matches_scalar_oracle_on_clean_mesh() {
    with_deadline(Duration::from_secs(300), || {
        for s in scenarios() {
            if s.loss > 0.0 {
                continue;
            }
            let inputs = gen_inputs(&s);
            for shards in SHARD_COLUMN {
                // Large fixed RTO: any timer fire on the clean per-shard
                // meshes is a protocol bug in the bonded transport path.
                let cfg = sharded_config_of(&s, shards).with_fixed_rto(Duration::from_secs(30));
                let result = ShardedAllReduce::run_recovery(&cfg, inputs.clone());
                for r in 0..s.rounds {
                    let oracle = scalar_oracle(&inputs, r);
                    for (w, outs) in result.outputs.iter().enumerate() {
                        assert_bits_eq(
                            &outs[r],
                            &oracle,
                            &format!("{s:?} sharded×{shards} recovery w{w} r{r}"),
                        );
                    }
                }
                for (w, st) in result.stats.iter().enumerate() {
                    assert_eq!(
                        st.retransmissions, 0,
                        "{s:?}×{shards} w{w}: clean sharded mesh retransmitted"
                    );
                    let split: u64 = result.shard_bytes[w].iter().sum();
                    assert_eq!(split, st.bytes_sent, "{s:?}×{shards} w{w} byte split");
                }
            }
        }
    });
}

#[test]
fn sharded_recovery_engine_matches_scalar_oracle_under_per_shard_loss() {
    with_deadline(Duration::from_secs(300), || {
        for s in scenarios() {
            if s.loss == 0.0 || s.rounds != 1 {
                continue;
            }
            let inputs = gen_inputs(&s);
            let flat: Vec<Tensor> = inputs.iter().map(|w| w[0].clone()).collect();
            for shards in SHARD_COLUMN {
                let cfg = sharded_config_of(&s, shards).with_fixed_rto(Duration::from_millis(25));
                // Fault plans keyed by shard: each shard's mesh drops and
                // duplicates under its own seeded keyed-loss process.
                let plans: Vec<FaultPlan> = (0..shards)
                    .map(|sh| {
                        FaultPlan::new(s.seed + 31 * sh as u64)
                            .loss(KeyedLoss::uniform(s.loss, s.loss / 2.0))
                    })
                    .collect();
                let outcome = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &flat, None);
                let oracle = scalar_oracle(&inputs, 0);
                for (w, wo) in outcome.workers.iter().enumerate() {
                    wo.result
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{s:?}×{shards} w{w} failed: {e}"));
                    assert_bits_eq(
                        &wo.output,
                        &oracle,
                        &format!("{s:?} sharded×{shards} lossy recovery w{w}"),
                    );
                    let split: u64 = wo.shard_bytes.iter().sum();
                    assert_eq!(split, wo.stats.bytes_sent, "{s:?}×{shards} w{w} byte split");
                }
            }
        }
    });
}

/// The determinism acceptance gate: with the deterministic flag set and
/// **non-quantized** inputs (order-sensitive float sums), a sharded
/// run's output must be bit-identical to the single-aggregator
/// reference, across ≥ 3 distinct seeded thread interleavings. Each
/// seed perturbs the schedule differently — per-shard straggler plans
/// delay different lanes by different amounts — so shard completions
/// and result arrivals interleave differently on every run; the bits
/// must not move.
#[test]
fn sharded_deterministic_output_is_bit_identical_to_single_aggregator_reference() {
    with_deadline(Duration::from_secs(180), || {
        let scenario = Scenario {
            workers: 3,
            deterministic: true,
            sparsity: 0.4,
            seed: 70,
            ..scenarios()[0]
        };
        let inputs: Vec<Vec<Tensor>> = gen::workers(
            scenario.workers,
            scenario.elements,
            BlockSpec::new(scenario.block_size),
            scenario.sparsity,
            1.0,
            OverlapMode::Random,
            scenario.seed,
        )
        .into_iter()
        .map(|t| vec![t])
        .collect();

        // Single-aggregator reference (the paper's baseline deployment).
        let reference = ShardedAllReduce::run(&sharded_config_of(&scenario, 1), inputs.clone());

        for shards in [2usize, 4] {
            let cfg = sharded_config_of(&scenario, shards);
            for interleave_seed in [1u64, 2, 3] {
                // Straggle each shard's worker→aggregator links by a
                // seed-dependent amount (µs-scale, different per shard
                // and per seed) to force distinct thread interleavings.
                let plans: Vec<FaultPlan> = (0..shards)
                    .map(|sh| {
                        let delay = 200 * ((interleave_seed + sh as u64 * 7) % 5 + 1);
                        let mut plan = FaultPlan::new(interleave_seed);
                        for w in 0..scenario.workers {
                            plan = plan.straggle_link(
                                w as u16,
                                cfg.aggregator_node(sh),
                                Duration::from_micros(delay),
                            );
                        }
                        plan
                    })
                    .collect();
                let run = ShardedAllReduce::run_with_plans(&cfg, &plans, inputs.clone());
                for (w, outs) in run.outputs.iter().enumerate() {
                    assert_bits_eq(
                        &outs[0],
                        &reference.outputs[w][0],
                        &format!("shards={shards} seed={interleave_seed} w{w}"),
                    );
                }
            }
        }
    });
}

#[test]
fn deterministic_mode_is_bitwise_reproducible_across_runs() {
    // Non-quantized inputs (order-sensitive float sums): deterministic
    // mode must still give the same bits on every run, regardless of
    // thread scheduling.
    with_deadline(Duration::from_secs(120), || {
        let cfg = OmniConfig::new(3, 1 << 12)
            .with_block_size(64)
            .with_fusion(2)
            .with_streams(2)
            .with_aggregators(2)
            .with_deterministic();
        let inputs: Vec<Vec<Tensor>> = gen::workers(
            3,
            1 << 12,
            BlockSpec::new(64),
            0.4,
            1.0,
            OverlapMode::Random,
            77,
        )
        .into_iter()
        .map(|t| vec![t])
        .collect();
        let a = run_group(&cfg, inputs.clone());
        let b = run_group(&cfg, inputs);
        for (wa, wb) in a.outputs.iter().zip(&b.outputs) {
            assert_bits_eq(&wa[0], &wb[0], "deterministic reruns");
        }
    });
}

/// The allocation-regression lock for satellite 3 (`ColSlot::contribs`
/// clone-per-block) and the pooled codec path: after one warm-up block,
/// a full block cycle — pooled checkout, encode, decode into scratch,
/// accumulate for every worker, drain, result encode/decode, recycle —
/// performs **zero** heap allocations. Runs single-threaded under the
/// counting global allocator registered by this test binary.
#[test]
fn steady_state_block_cycle_allocates_nothing() {
    const WORKERS: usize = 4;
    const BLOCK: usize = 256;

    let payloads: Vec<Vec<f32>> = (0..WORKERS)
        .map(|w| (0..BLOCK).map(|i| (w * BLOCK + i) as f32 * 0.25).collect())
        .collect();
    let mut tensor = vec![0.0f32; BLOCK];

    // Both reduction modes must be allocation-free after warm-up.
    for deterministic in [false, true] {
        let mut pool = BufferPool::for_block_size(BLOCK);
        let mut acc = ColAccumulator::new(WORKERS, deterministic);
        let mut wire: Vec<u8> = Vec::new();
        let mut decoded = Message::Shutdown;

        let cycle = |pool: &mut BufferPool,
                     acc: &mut ColAccumulator,
                     wire: &mut Vec<u8>,
                     decoded: &mut Message,
                     tensor: &mut [f32]| {
            for (w, p) in payloads.iter().enumerate() {
                let mut entries = pool.checkout_entries();
                let mut data = pool.checkout_f32();
                data.extend_from_slice(p);
                entries.push(Entry::data(0, 0, data));
                let msg = Message::Block(Packet {
                    kind: PacketKind::Data,
                    ver: 0,
                    slot: 0,
                    stream: 0,
                    wid: w as u16,
                    epoch: 0,
                    entries,
                });
                encode_into(&msg, wire);
                pool.recycle_message(msg);
                decode_into(wire, decoded).expect("valid frame");
                let Message::Block(pkt) = &*decoded else {
                    unreachable!()
                };
                acc.store(w, &pkt.entries[0].data);
            }
            let mut out = pool.checkout_f32();
            acc.take_into(&mut out);
            tensor.copy_from_slice(&out);
            pool.checkin_f32(out);
        };

        // Warm-up: populates freelists, scratch capacities, accumulator
        // buffers.
        cycle(&mut pool, &mut acc, &mut wire, &mut decoded, &mut tensor);

        let before = CountingAllocator::thread_allocations();
        for _ in 0..100 {
            cycle(&mut pool, &mut acc, &mut wire, &mut decoded, &mut tensor);
        }
        let allocs = CountingAllocator::thread_allocations() - before;
        assert_eq!(
            allocs, 0,
            "steady-state block cycle (deterministic={deterministic}) allocated {allocs} times \
             over 100 rounds"
        );
        let expect: f32 = (0..WORKERS).map(|w| (w * BLOCK) as f32 * 0.25).sum();
        assert_eq!(tensor[0], expect);
        assert!(pool.hits() > 0, "pool must be serving from freelists");
    }
}
