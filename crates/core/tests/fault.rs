//! Fault-injection integration tests: the Algorithm 2 recovery engines
//! under crashes, partitions, stragglers and keyed loss injected by
//! [`ChaosNetwork`], verifying the robustness layer's guarantees:
//!
//! * **Bounded failure.** A worker whose aggregator is crashed
//!   mid-stream returns [`ProtocolError::PeerUnresponsive`] within
//!   `max_retransmits × rto_max` instead of retransmitting forever.
//! * **Fail-fast degradation.** An aggregator evicts a crashed worker
//!   and either completes the collective without it
//!   ([`DegradedMode::DropWorker`]) or aborts with a typed error
//!   ([`DegradedMode::Abort`]).
//! * **Deterministic replay.** The keyed loss model makes two runs with
//!   the same fault seed produce identical `RecoveryStats` and
//!   telemetry counters (the guard for every new RNG path).
//!
//! Every test runs under [`with_deadline`]: a regression that
//! reintroduces an infinite-retransmit hang fails fast instead of
//! wedging CI.

use std::thread;
use std::time::{Duration, Instant};

use omnireduce_core::config::{DegradedMode, OmniConfig};
use omnireduce_core::error::ProtocolError;
use omnireduce_core::recovery::{
    RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker,
};
use omnireduce_core::testing::with_deadline;
use omnireduce_telemetry::Telemetry;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::fault::{ChaosNetwork, FaultPlan, KeyedLoss};
use omnireduce_transport::{ChannelNetwork, GilbertElliott};
use proptest::prelude::*;

/// Telemetry counters compared bit-for-bit in the replay tests.
const REPLAYED_COUNTERS: &[&str] = &[
    "core.recovery.packets_sent",
    "core.recovery.retransmissions",
    "core.recovery.bytes_sent",
    "core.recovery.blocks_sent",
    "core.recovery.timer_fires",
    "core.recovery.stale_results_ignored",
    "core.recovery.backoffs",
    "core.recovery.agg.results_sent",
    "core.recovery.agg.result_retransmissions",
    "core.recovery.agg.duplicates_ignored",
    "transport.fault.keyed_drops",
    "transport.fault.keyed_dups",
];

struct WorkerOutcome {
    result: Result<(), ProtocolError>,
    stats: RecoveryStats,
    output: Tensor,
    elapsed: Duration,
}

struct ChaosOutcome {
    workers: Vec<WorkerOutcome>,
    aggs: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
    /// Per-shard hot-standby outcomes (empty unless `cfg.hot_standby`).
    standbys: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
}

/// Runs one AllReduce round over a channel mesh wrapped in `plan`,
/// collecting per-thread results instead of panicking on failure.
fn run_chaos(
    cfg: &OmniConfig,
    plan: &FaultPlan,
    inputs: &[Tensor],
    telemetry: Option<&Telemetry>,
) -> ChaosOutcome {
    assert_eq!(inputs.len(), cfg.num_workers);
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let endpoints = match telemetry {
        Some(t) => ChaosNetwork::wrap_with_telemetry(net.endpoints(), plan, t),
        None => ChaosNetwork::wrap(net.endpoints(), plan),
    };
    let mut endpoints: Vec<Option<_>> = endpoints.into_iter().map(Some).collect();

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = endpoints[cfg.aggregator_node(a) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        agg_handles.push(thread::spawn(move || {
            let mut agg = match &telemetry {
                Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                None => RecoveryAggregator::new(t, cfg),
            };
            let res = agg.run();
            // Return the aggregator itself so its endpoint (and channel
            // receiver) stays alive inside the JoinHandle until after
            // the workers are joined: a *crashed* aggregator must look
            // like a black hole (packets vanish), not like a closed
            // connection — matching UDP/DPDK semantics where sends to a
            // dead host succeed locally.
            let stats = agg.stats;
            (res, stats, agg)
        }));
    }

    // Hot standbys (nodes `W+A..W+2A`): same engine, standby role is
    // derived from the node id.
    let mut standby_handles = Vec::new();
    if cfg.hot_standby {
        for a in 0..cfg.num_aggregators {
            let t = endpoints[cfg.standby_node(a) as usize].take().unwrap();
            let cfg = cfg.clone();
            let telemetry = telemetry.cloned();
            standby_handles.push(thread::spawn(move || {
                let mut agg = match &telemetry {
                    Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                    None => RecoveryAggregator::new(t, cfg),
                };
                let res = agg.run();
                let stats = agg.stats;
                (res, stats, agg)
            }));
        }
    }

    let mut worker_handles = Vec::new();
    for (w, tensor) in inputs.iter().enumerate() {
        let t = endpoints[cfg.worker_node(w) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        let mut tensor = tensor.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = match &telemetry {
                Some(tl) => RecoveryWorker::with_telemetry(t, cfg, tl),
                None => RecoveryWorker::new(t, cfg),
            };
            let start = Instant::now();
            let result = worker.allreduce(&mut tensor);
            let elapsed = start.elapsed();
            let stats = worker.stats();
            if result.is_ok() {
                // Best effort: the fabric may already be gone.
                let _ = worker.shutdown();
            }
            WorkerOutcome {
                result,
                stats,
                output: tensor,
                elapsed,
            }
        }));
    }

    let workers = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    let aggs = agg_handles
        .into_iter()
        .map(|h| {
            let (res, stats, _agg) = h.join().expect("aggregator thread panicked");
            (res, stats)
        })
        .collect();
    let standbys = standby_handles
        .into_iter()
        .map(|h| {
            let (res, stats, _agg) = h.join().expect("standby thread panicked");
            (res, stats)
        })
        .collect();
    ChaosOutcome {
        workers,
        aggs,
        standbys,
    }
}

fn small_cfg(n: usize, len: usize) -> OmniConfig {
    OmniConfig::new(n, len)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2)
}

fn gen_inputs(n: usize, len: usize, seed: u64) -> Vec<Tensor> {
    gen::workers(
        n,
        len,
        BlockSpec::new(8),
        0.5,
        1.0,
        OverlapMode::Random,
        seed,
    )
}

// ---------------------------------------------------------------------
// Bounded failure: crashed aggregator
// ---------------------------------------------------------------------

/// Acceptance: a worker whose aggregator is crashed mid-stream returns
/// `PeerUnresponsive` within `max_retransmits × rto_max` — no hang.
#[test]
fn crashed_aggregator_fails_fast_within_budget() {
    with_deadline(Duration::from_secs(60), || {
        let n = 2;
        let max_retransmits = 6;
        let rto_max = Duration::from_millis(100);
        let cfg = small_cfg(n, 512)
            .with_initial_rto(Duration::from_millis(2))
            .with_rto_bounds(Duration::from_millis(1), rto_max)
            .with_max_retransmits(max_retransmits);
        let inputs = gen_inputs(n, 512, 7);
        // The aggregator is node `n`; kill it after 4 data-plane sends —
        // mid-stream, with workers still waiting on results.
        let plan = FaultPlan::new(11).crash_after(cfg.aggregator_node(0), 4);
        let out = run_chaos(&cfg, &plan, &inputs, None);

        // Bound from the config: initial ≤ rto_max/2, so the backoff
        // series (2,4,8,…, capped) sums below max_retransmits × rto_max.
        let bound = rto_max * max_retransmits;
        let mut saw_unresponsive = false;
        for (w, o) in out.workers.iter().enumerate() {
            match &o.result {
                Err(ProtocolError::PeerUnresponsive {
                    peer, retransmits, ..
                }) => {
                    saw_unresponsive = true;
                    assert_eq!(*peer, cfg.aggregator_node(0), "worker {w}");
                    assert_eq!(*retransmits, max_retransmits, "worker {w}");
                    assert!(
                        o.elapsed < bound,
                        "worker {w} took {:?}, bound {bound:?}",
                        o.elapsed
                    );
                }
                Err(ProtocolError::Transport(_)) => {
                    // Tolerated: the mesh may tear down under the first
                    // worker's failure before this one exhausts its
                    // budget.
                }
                other => panic!("worker {w}: expected failure, got {other:?}"),
            }
        }
        assert!(saw_unresponsive, "no worker detected the dead aggregator");
        // The crashed aggregator itself dies on its next receive.
        assert!(out.aggs[0].0.is_err(), "crashed aggregator reported Ok");
    });
}

// ---------------------------------------------------------------------
// Fail-fast degradation: crashed worker
// ---------------------------------------------------------------------

fn eviction_cfg(n: usize, len: usize, mode: DegradedMode) -> OmniConfig {
    small_cfg(n, len)
        .with_initial_rto(Duration::from_millis(5))
        .with_rto_bounds(Duration::from_millis(2), Duration::from_millis(100))
        .with_max_retransmits(12)
        .with_eviction_timeout(Duration::from_millis(150))
        .with_degraded_mode(mode)
}

#[test]
fn crashed_worker_is_evicted_and_collective_completes_degraded() {
    with_deadline(Duration::from_secs(60), || {
        let n = 3;
        let cfg = eviction_cfg(n, 512, DegradedMode::DropWorker);
        let inputs = gen_inputs(n, 512, 13);
        // Worker 2 dies after its first 3 data-plane sends.
        let plan = FaultPlan::new(5).crash_after(cfg.worker_node(2), 3);
        let out = run_chaos(&cfg, &plan, &inputs, None);

        let (agg_res, agg_stats) = &out.aggs[0];
        assert!(agg_res.is_ok(), "aggregator failed: {agg_res:?}");
        assert_eq!(agg_stats.evictions, 1, "exactly one eviction");
        assert!(
            agg_stats.degraded_completions > 0,
            "completion count was never renormalized: {agg_stats:?}"
        );

        // Survivors complete and agree bit-for-bit (they applied the
        // same result packets).
        assert!(out.workers[0].result.is_ok(), "{:?}", out.workers[0].result);
        assert!(out.workers[1].result.is_ok(), "{:?}", out.workers[1].result);
        let diff = out.workers[0].output.max_abs_diff(&out.workers[1].output);
        assert_eq!(diff, 0.0, "survivors disagree by {diff}");
        // The crashed worker observes its own death (its endpoint is
        // torn down) rather than hanging.
        assert!(out.workers[2].result.is_err(), "dead worker reported Ok");
    });
}

#[test]
fn crashed_worker_in_abort_mode_surfaces_worker_evicted() {
    with_deadline(Duration::from_secs(60), || {
        let n = 3;
        let cfg = eviction_cfg(n, 512, DegradedMode::Abort);
        let inputs = gen_inputs(n, 512, 17);
        let plan = FaultPlan::new(6).crash_after(cfg.worker_node(2), 3);
        let out = run_chaos(&cfg, &plan, &inputs, None);

        match &out.aggs[0].0 {
            Err(ProtocolError::WorkerEvicted { worker, idle }) => {
                assert_eq!(*worker, 2);
                assert!(*idle >= Duration::from_millis(150), "idle {idle:?}");
            }
            other => panic!("expected WorkerEvicted, got {other:?}"),
        }
        assert_eq!(out.aggs[0].1.evictions, 1);
        // Surviving workers must not hang once the aggregator is gone:
        // the retry budget converts the abort into a bounded failure.
        for w in [0, 1] {
            assert!(
                out.workers[w].result.is_err(),
                "worker {w} reported Ok after the collective aborted"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Partitions heal, stragglers are absorbed
// ---------------------------------------------------------------------

#[test]
fn partition_window_is_bridged_by_retransmission() {
    with_deadline(Duration::from_secs(60), || {
        let n = 3;
        let cfg = small_cfg(n, 512)
            .with_deterministic()
            .with_initial_rto(Duration::from_millis(10))
            .with_rto_bounds(Duration::from_millis(5), Duration::from_millis(200))
            .with_max_retransmits(30);
        let inputs = gen_inputs(n, 512, 19);
        let agg = cfg.aggregator_node(0);

        // Baseline: same engine, no faults (deterministic mode makes
        // the result bit-reproducible).
        let base = run_chaos(&cfg, &FaultPlan::new(1), &inputs, None);
        assert!(base.workers.iter().all(|w| w.result.is_ok()));

        // Worker 0 ↔ aggregator black-holed for a 6-packet window per
        // direction, then heals.
        let plan = FaultPlan::new(23).partition(cfg.worker_node(0), agg, 2, 8);
        let out = run_chaos(&cfg, &plan, &inputs, None);
        for (w, o) in out.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
            let diff = o.output.max_abs_diff(&base.workers[w].output);
            assert_eq!(diff, 0.0, "worker {w} diverges from lossless by {diff}");
        }
        assert!(
            out.workers
                .iter()
                .map(|w| w.stats.retransmissions)
                .sum::<u64>()
                > 0,
            "the partition window must force retransmissions"
        );
    });
}

#[test]
fn straggler_delay_is_absorbed() {
    with_deadline(Duration::from_secs(60), || {
        let n = 2;
        let cfg = small_cfg(n, 256)
            .with_deterministic()
            .with_initial_rto(Duration::from_millis(20))
            .with_rto_bounds(Duration::from_millis(20), Duration::from_millis(200))
            .with_max_retransmits(20);
        let inputs = gen_inputs(n, 256, 29);
        let base = run_chaos(&cfg, &FaultPlan::new(1), &inputs, None);

        let telemetry = Telemetry::new();
        let plan = FaultPlan::new(31).straggle(cfg.worker_node(1), Duration::from_millis(2));
        let out = run_chaos(&cfg, &plan, &inputs, Some(&telemetry));
        for (w, o) in out.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
            let diff = o.output.max_abs_diff(&base.workers[w].output);
            assert_eq!(diff, 0.0, "worker {w} diverges by {diff}");
        }
        assert!(
            telemetry
                .snapshot()
                .counter("transport.fault.straggle_delays")
                > 0,
            "straggler injections must be counted"
        );
    });
}

// ---------------------------------------------------------------------
// Hot-standby failover
// ---------------------------------------------------------------------

fn failover_cfg(n: usize, len: usize) -> OmniConfig {
    small_cfg(n, len)
        .with_deterministic()
        .with_hot_standby()
        .with_initial_rto(Duration::from_millis(5))
        .with_rto_bounds(Duration::from_millis(2), Duration::from_millis(50))
        .with_max_retransmits(6)
        .with_eviction_timeout(Duration::from_secs(5))
}

/// Acceptance: a seeded chaos run that crashes the primary aggregator
/// mid-stream completes via the hot standby, bit-identical to an
/// uninterrupted run — across several crash points, including between a
/// checkpoint and its result multicast.
#[test]
fn primary_crash_fails_over_to_standby_bit_identical() {
    with_deadline(Duration::from_secs(120), || {
        let n = 2;
        let cfg = failover_cfg(n, 512);
        let inputs = gen_inputs(n, 512, 41);

        // Uninterrupted baseline (deterministic mode ⇒ bit-reproducible).
        let base = run_chaos(&cfg, &FaultPlan::new(1), &inputs, None);
        for (w, o) in base.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "baseline worker {w}: {:?}", o.result);
            assert_eq!(o.stats.failovers, 0, "baseline worker {w} failed over");
        }
        assert!(base.standbys[0].0.is_ok(), "{:?}", base.standbys[0].0);
        assert!(
            base.aggs[0].1.checkpoints_sent > 0,
            "primary never replicated: {:?}",
            base.aggs[0].1
        );
        assert_eq!(
            base.standbys[0].1.checkpoints_applied, base.aggs[0].1.checkpoints_sent,
            "replication lane dropped checkpoints"
        );

        // Crash the primary at several points: during the first phase
        // (1), on a checkpoint send (3), between a checkpoint and its
        // result multicast (4), and later mid-stream (6).
        for crash_after in [1u64, 3, 4, 6] {
            let plan = FaultPlan::new(43).crash_after(cfg.aggregator_node(0), crash_after);
            let out = run_chaos(&cfg, &plan, &inputs, None);
            for (w, o) in out.workers.iter().enumerate() {
                assert!(
                    o.result.is_ok(),
                    "crash_after={crash_after} worker {w}: {:?}",
                    o.result
                );
                let diff = o.output.max_abs_diff(&base.workers[w].output);
                assert_eq!(
                    diff, 0.0,
                    "crash_after={crash_after} worker {w}: failover result \
                     differs from uninterrupted run by {diff}"
                );
                assert_eq!(
                    o.stats.failovers, 1,
                    "crash_after={crash_after} worker {w}: expected exactly one failover"
                );
            }
            assert!(
                out.standbys[0].0.is_ok(),
                "crash_after={crash_after} standby: {:?}",
                out.standbys[0].0
            );
            assert!(
                out.aggs[0].0.is_err(),
                "crash_after={crash_after}: crashed primary reported Ok"
            );
        }
    });
}

/// Same fault seed ⇒ identical stats and telemetry across two failover
/// runs (single worker, so every count is a pure function of the plan).
#[test]
fn failover_replay_reproduces_stats_and_telemetry_exactly() {
    with_deadline(Duration::from_secs(120), || {
        let cfg = failover_cfg(1, 1024)
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400));
        let inputs = gen_inputs(1, 1024, 37);
        let plan = FaultPlan::new(53).crash_after(cfg.aggregator_node(0), 5);
        let failover_counters: Vec<&str> = REPLAYED_COUNTERS
            .iter()
            .copied()
            .chain([
                "core.recovery.failovers",
                "core.recovery.agg.checkpoints_sent",
                "core.recovery.agg.checkpoints_applied",
                "core.recovery.agg.stale_epoch_dropped",
            ])
            .collect();

        let run = || {
            let telemetry = Telemetry::new();
            let out = run_chaos(&cfg, &plan, &inputs, Some(&telemetry));
            assert!(out.workers[0].result.is_ok(), "{:?}", out.workers[0].result);
            assert!(out.standbys[0].0.is_ok(), "{:?}", out.standbys[0].0);
            let snap = telemetry.snapshot();
            let counters: Vec<u64> = failover_counters
                .iter()
                .map(|name| snap.counter(name))
                .collect();
            (out.workers[0].stats, out.standbys[0].1, counters)
        };

        let (stats_a, sb_a, counters_a) = run();
        let (stats_b, sb_b, counters_b) = run();
        assert_eq!(stats_a, stats_b, "RecoveryStats diverge across replays");
        assert_eq!(sb_a, sb_b, "standby stats diverge across replays");
        for (name, (a, b)) in failover_counters
            .iter()
            .zip(counters_a.iter().zip(counters_b.iter()))
        {
            assert_eq!(a, b, "telemetry counter {name} diverges across replays");
        }
        assert_eq!(stats_a.failovers, 1, "the plan must force a failover");
        assert!(sb_a.checkpoints_applied > 0, "standby never caught up");
    });
}

/// Acceptance (sharded): crashing one shard's primary mid-stream while
/// the other shard stays healthy completes via that shard's standby,
/// bit-identical to the uninterrupted sharded run.
#[test]
fn sharded_primary_crash_fails_over_bit_identical() {
    use omnireduce_core::shard::ShardedAllReduce;

    with_deadline(Duration::from_secs(120), || {
        let n = 2;
        let cfg = OmniConfig::new(n, 1024)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_aggregators(2)
            .with_deterministic()
            .with_hot_standby()
            .with_initial_rto(Duration::from_millis(5))
            .with_rto_bounds(Duration::from_millis(2), Duration::from_millis(50))
            .with_max_retransmits(6)
            .with_eviction_timeout(Duration::from_secs(5));
        let inputs = gen_inputs(n, 1024, 59);

        let clean = [FaultPlan::new(1), FaultPlan::new(2)];
        let base = ShardedAllReduce::run_recovery_chaos(&cfg, &clean, &inputs, None);
        for (w, o) in base.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "baseline worker {w}: {:?}", o.result);
            assert!(o.shutdown.is_ok(), "baseline worker {w} goodbye failed");
        }

        // Shard 1's primary dies mid-stream; shard 0 stays healthy.
        let plans = [
            FaultPlan::new(1),
            FaultPlan::new(61).crash_after(cfg.aggregator_node(1), 3),
        ];
        let out = ShardedAllReduce::run_recovery_chaos(&cfg, &plans, &inputs, None);
        for (w, o) in out.workers.iter().enumerate() {
            assert!(o.result.is_ok(), "worker {w}: {:?}", o.result);
            let diff = o.output.max_abs_diff(&base.workers[w].output);
            assert_eq!(
                diff, 0.0,
                "worker {w}: sharded failover result differs from clean run by {diff}"
            );
            assert_eq!(
                o.stats.failovers, 1,
                "worker {w}: exactly one shard failed over"
            );
        }
        assert!(
            out.aggs[0].0.is_ok(),
            "healthy shard 0 failed: {:?}",
            out.aggs[0].0
        );
        assert!(
            out.aggs[1].0.is_err(),
            "crashed shard 1 primary reported Ok"
        );
        assert!(out.standbys[0].0.is_ok(), "{:?}", out.standbys[0].0);
        assert!(out.standbys[1].0.is_ok(), "{:?}", out.standbys[1].0);
        assert!(
            out.standbys[1].1.checkpoints_applied > 0 || out.standbys[1].1.results_sent > 0,
            "shard 1's standby never participated: {:?}",
            out.standbys[1].1
        );
    });
}

// ---------------------------------------------------------------------
// Deterministic replay
// ---------------------------------------------------------------------

/// Acceptance: same fault seed ⇒ identical `RecoveryStats` and telemetry
/// counter values across two runs.
///
/// Uses a single worker: with one protocol thread per side, every
/// retransmission/duplicate count is a pure function of the keyed fates
/// (multi-worker wall-clock runs interleave phase completions
/// nondeterministically, which can shift *which* retransmission path a
/// duplicate takes even though the fates themselves are replay-stable —
/// the order-independence of the fates is unit-tested in
/// `transport::fault`).
#[test]
fn replay_reproduces_stats_and_telemetry_exactly() {
    with_deadline(Duration::from_secs(120), || {
        let cfg = small_cfg(1, 1024)
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
            .with_max_retransmits(40);
        let inputs = gen_inputs(1, 1024, 37);
        let plan = FaultPlan::new(97).loss(
            KeyedLoss::uniform(0.15, 0.08)
                .with_burst(GilbertElliott::from_average(0.15, 0.6, 0.35)),
        );

        let run = || {
            let telemetry = Telemetry::new();
            let out = run_chaos(&cfg, &plan, &inputs, Some(&telemetry));
            assert!(out.workers[0].result.is_ok(), "{:?}", out.workers[0].result);
            assert!(out.aggs[0].0.is_ok());
            let snap = telemetry.snapshot();
            let counters: Vec<u64> = REPLAYED_COUNTERS
                .iter()
                .map(|name| snap.counter(name))
                .collect();
            (out.workers[0].stats, out.aggs[0].1, counters)
        };

        let (stats_a, agg_a, counters_a) = run();
        let (stats_b, agg_b, counters_b) = run();
        assert_eq!(stats_a, stats_b, "RecoveryStats diverge across replays");
        assert_eq!(agg_a, agg_b, "aggregator stats diverge across replays");
        for (name, (a, b)) in REPLAYED_COUNTERS
            .iter()
            .zip(counters_a.iter().zip(counters_b.iter()))
        {
            assert_eq!(a, b, "telemetry counter {name} diverges across replays");
        }
        assert!(
            stats_a.retransmissions > 0,
            "the replay test must actually exercise the loss path: {stats_a:?}"
        );
    });
}

// ---------------------------------------------------------------------
// Property: chaos never corrupts the sum; replays are exact
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random (seed, drop ≤ 0.3, dup ≤ 0.1, burstiness) the
    /// recovery engines still produce the exact lossless AllReduce
    /// result, and (single-worker) a replay reproduces identical
    /// `RecoveryStats`.
    #[test]
    fn prop_chaos_recovery_is_exact_and_replayable(
        n in 1usize..4,
        len in 64usize..256,
        drop in 0.0f64..0.3,
        dup in 0.0f64..0.1,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        with_deadline(Duration::from_secs(120), move || {
            // Deterministic aggregation ⇒ the result is bit-identical
            // to the lossless run of the same engine. Comfortable RTO
            // floor ⇒ retransmissions are driven by keyed fates only.
            let cfg = small_cfg(n, len)
                .with_deterministic()
                .with_initial_rto(Duration::from_millis(25))
                .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
                .with_max_retransmits(40);
            let inputs = gen_inputs(n, len, seed);

            let base = run_chaos(&cfg, &FaultPlan::new(seed), &inputs, None);
            for o in &base.workers {
                assert!(o.result.is_ok(), "lossless run failed: {:?}", o.result);
            }

            let mut loss = KeyedLoss::uniform(drop, dup);
            if bursty {
                let avg = drop.clamp(0.01, 0.25);
                loss = loss.with_burst(GilbertElliott::from_average(avg, 0.6, 0.3));
            }
            let plan = FaultPlan::new(seed ^ 0xDEAD).loss(loss);

            let out = run_chaos(&cfg, &plan, &inputs, None);
            for (w, o) in out.workers.iter().enumerate() {
                assert!(o.result.is_ok(), "worker {w} failed: {:?}", o.result);
                let diff = o.output.max_abs_diff(&base.workers[w].output);
                assert_eq!(
                    diff, 0.0,
                    "worker {w}: chaos result differs from lossless by {diff}"
                );
            }

            if n == 1 {
                let replay = run_chaos(&cfg, &plan, &inputs, None);
                assert_eq!(
                    out.workers[0].stats, replay.workers[0].stats,
                    "replay diverged"
                );
                assert_eq!(out.aggs[0].1, replay.aggs[0].1, "agg replay diverged");
            }
        });
    }
}

// ---------------------------------------------------------------------
// Simulated engines: adaptive RTO determinism and bounded failure
// ---------------------------------------------------------------------

#[test]
fn sim_adaptive_rto_is_deterministic_per_seed() {
    use omnireduce_core::sim::bitmaps_from_sets;
    use omnireduce_core::sim_recovery::{simulate_recovery_allreduce_with_telemetry, SimRtoConfig};
    use omnireduce_simnet::{Bandwidth, NicConfig, SimTime};
    use omnireduce_tensor::gen::worker_block_sets;

    let cfg = OmniConfig::new(4, 1 << 18)
        .with_block_size(256)
        .with_fusion(4)
        .with_streams(8)
        .with_aggregators(4);
    let nblocks = cfg.block_spec().block_count(1 << 18);
    let bms = bitmaps_from_sets(&worker_block_sets(4, nblocks, 0.5, OverlapMode::Random, 3));
    let nic = NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(15));
    let rto = SimRtoConfig::adaptive(
        SimTime::from_micros(2000),
        SimTime::from_micros(200),
        SimTime::from_millis(50),
    );
    let run = || {
        let telemetry = Telemetry::new();
        let out = simulate_recovery_allreduce_with_telemetry(
            &cfg,
            nic,
            nic,
            0.01,
            rto,
            &bms,
            42,
            Some(&telemetry),
        );
        let snap = telemetry.snapshot();
        (
            out.completion,
            out.failed_workers.clone(),
            snap.counter("core.sim_recovery.retransmissions"),
            snap.counter("core.sim_recovery.backoffs"),
        )
    };
    assert_eq!(run(), run());
    assert!(run().0 > SimTime::ZERO);
}
