//! Integration tests for the §7/§5 extensions: switch-constrained
//! aggregation end-to-end, and hierarchical (multi-GPU) AllReduce with a
//! real OmniReduce inter-server layer.

use std::sync::Arc;
use std::thread;

use omnireduce_core::config::OmniConfig;
use omnireduce_core::hierarchical::{hierarchical_allreduce, IntraNode};
use omnireduce_core::switch::{FixedPoint, SwitchAggregator, DEFAULT_SWITCH_POOL};
use omnireduce_core::worker::OmniWorker;
use omnireduce_tensor::dense::reference_sum;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::{ChannelNetwork, NodeId};

/// Full group with a switch aggregator instead of the server aggregator:
/// the result must equal the float sum within quantization error.
#[test]
fn switch_aggregator_end_to_end() {
    let cfg = OmniConfig::new(4, 2048)
        .with_block_size(32)
        .with_fusion(2)
        .with_streams(4);
    let fp = FixedPoint::default();
    let inputs = gen::workers(
        4,
        2048,
        BlockSpec::new(32),
        0.6,
        1.0,
        OverlapMode::Random,
        7,
    );
    let expect = reference_sum(&inputs);

    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || {
        let mut sw = SwitchAggregator::new(agg_t, agg_cfg, fp, DEFAULT_SWITCH_POOL);
        sw.run().unwrap();
        sw.stats
    });

    let mut handles = Vec::new();
    for (w, input) in inputs.into_iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            let mut tensor = input;
            worker.allreduce(&mut tensor).unwrap();
            worker.shutdown().unwrap();
            tensor
        }));
    }
    let outs: Vec<Tensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = agg.join().unwrap();

    // Quantization error bound: N workers × one step per value.
    let tol = fp.step() * 4.0 + 1e-5;
    for o in &outs {
        assert!(
            o.approx_eq(&expect, tol),
            "switch result off by {}",
            o.max_abs_diff(&expect)
        );
    }
    assert!(stats.packets > 0);
    assert_eq!(stats.saturations, 0, "unit-scale data must not saturate");
    assert!(stats.pipeline_passes > 0);
}

/// Big blocks require recirculation: pipeline passes exceed data entries.
#[test]
fn switch_recirculates_large_blocks() {
    let cfg = OmniConfig::new(2, 512)
        .with_block_size(256) // 256 > 34 → 8 passes per block
        .with_fusion(1)
        .with_streams(1);
    let fp = FixedPoint::default();
    let inputs = vec![
        Tensor::from_vec((0..512).map(|i| i as f32 * 1e-3).collect()),
        Tensor::from_vec((0..512).map(|i| 1.0 - i as f32 * 1e-3).collect()),
    ];
    let expect = reference_sum(&inputs);

    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || {
        let mut sw = SwitchAggregator::new(agg_t, agg_cfg, fp, DEFAULT_SWITCH_POOL);
        sw.run().unwrap();
        sw.stats
    });
    let mut handles = Vec::new();
    for (w, input) in inputs.into_iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            let mut tensor = input;
            worker.allreduce(&mut tensor).unwrap();
            worker.shutdown().unwrap();
            tensor
        }));
    }
    let outs: Vec<Tensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = agg.join().unwrap();
    for o in &outs {
        assert!(o.approx_eq(&expect, fp.step() * 2.0 + 1e-5));
    }
    // 256-value blocks need ceil(256/34) = 8 passes each.
    assert!(
        stats.pipeline_passes >= 8 * 2,
        "passes {}",
        stats.pipeline_passes
    );
}

/// Two servers × three local "GPUs", full two-layer aggregation with an
/// OmniReduce group between the server leaders.
#[test]
fn hierarchical_with_omnireduce_between_leaders() {
    let servers = 2;
    let gpus = 3;
    let len = 1024;
    let cfg = OmniConfig::new(servers, len)
        .with_block_size(16)
        .with_fusion(2)
        .with_streams(2);

    // Per-(server, gpu) inputs.
    let inputs: Vec<Vec<Tensor>> = (0..servers)
        .map(|s| {
            gen::workers(
                gpus,
                len,
                BlockSpec::new(16),
                0.5,
                1.0,
                OverlapMode::Random,
                (s * 100) as u64,
            )
        })
        .collect();
    let all: Vec<Tensor> = inputs.iter().flatten().cloned().collect();
    let expect = reference_sum(&all);

    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let agg_t = net.endpoint(NodeId(cfg.aggregator_node(0)));
    let agg_cfg = cfg.clone();
    let agg = thread::spawn(move || {
        omnireduce_core::aggregator::OmniAggregator::new(agg_t, agg_cfg)
            .run()
            .unwrap();
    });

    let mut handles = Vec::new();
    for (s, server_inputs) in inputs.into_iter().enumerate() {
        let node = IntraNode::new(gpus);
        let transport = Arc::new(parking_lot::Mutex::new(Some(
            net.endpoint(NodeId(cfg.worker_node(s))),
        )));
        for (r, input) in server_inputs.into_iter().enumerate() {
            let node = node.clone();
            let cfg = cfg.clone();
            let transport = transport.clone();
            let expect = expect.clone();
            handles.push(thread::spawn(move || {
                let mut t = input;
                hierarchical_allreduce(&node, r, &mut t, |sum| {
                    // Leader runs the inter-server OmniReduce.
                    let endpoint = transport.lock().take().expect("leader only");
                    let mut worker = OmniWorker::new(endpoint, cfg.clone());
                    let r = worker.allreduce(sum);
                    worker.shutdown().unwrap();
                    r
                })
                .unwrap();
                assert!(
                    t.approx_eq(&expect, 1e-4),
                    "hierarchical result off by {}",
                    t.max_abs_diff(&expect)
                );
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    agg.join().unwrap();
}
