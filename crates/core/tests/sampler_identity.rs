//! Background-sampler non-perturbation tests: the continuous
//! time-series pipeline (DESIGN §14) against the live recovery engines
//! under injected faults.
//!
//! * **Invisibility.** A chaos run with a background [`Sampler`]
//!   ticking throughout produces bit-identical tensors and identical
//!   `RecoveryStats` to the sampler-off run of the same seed — the
//!   sampler only ever reads.
//! * **Exact replay.** The counter plane of the sampled telemetry is a
//!   pure function of the keyed fates: two fresh runs of the same plan,
//!   each snapshotted by a manual sampler tick, yield byte-equal
//!   counter-delta series. (Gauge and histogram series carry wall-clock
//!   values — RTTs, contribution delays — and are inherently
//!   run-dependent, so the replay check covers counters.)

use std::thread;
use std::time::Duration;

use omnireduce_core::config::OmniConfig;
use omnireduce_core::error::ProtocolError;
use omnireduce_core::recovery::{
    RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker,
};
use omnireduce_core::testing::with_deadline;
use omnireduce_telemetry::{Sampler, SeriesKind, SeriesSnapshot, Telemetry};
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::fault::{ChaosNetwork, FaultPlan, KeyedLoss};
use omnireduce_transport::ChannelNetwork;
use proptest::prelude::*;

/// Ring capacity per series: far more ticks than any test produces.
const SERIES_CAP: usize = 256;

struct MultiRoundOutcome {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    outputs: Vec<Vec<Tensor>>,
    results: Vec<Result<(), ProtocolError>>,
    stats: Vec<RecoveryStats>,
    agg_stats: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
}

/// Runs `rounds` AllReduces per worker over a chaos-wrapped channel
/// mesh, mirroring `tests/flight.rs::run_rounds`.
fn run_rounds(
    cfg: &OmniConfig,
    plan: &FaultPlan,
    inputs: &[Vec<Tensor>],
    telemetry: Option<&Telemetry>,
) -> MultiRoundOutcome {
    assert_eq!(inputs.len(), cfg.num_workers);
    let mut net = ChannelNetwork::new(cfg.mesh_size());
    let endpoints = match telemetry {
        Some(t) => ChaosNetwork::wrap_with_telemetry(net.endpoints(), plan, t),
        None => ChaosNetwork::wrap(net.endpoints(), plan),
    };
    let mut endpoints: Vec<Option<_>> = endpoints.into_iter().map(Some).collect();

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = endpoints[cfg.aggregator_node(a) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        agg_handles.push(thread::spawn(move || {
            let mut agg = match &telemetry {
                Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                None => RecoveryAggregator::new(t, cfg),
            };
            let res = agg.run();
            let stats = agg.stats;
            (res, stats)
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.iter().enumerate() {
        let t = endpoints[cfg.worker_node(w) as usize].take().unwrap();
        let cfg = cfg.clone();
        let telemetry = telemetry.cloned();
        let mut tensors = tensors.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = match &telemetry {
                Some(tl) => RecoveryWorker::with_telemetry(t, cfg, tl),
                None => RecoveryWorker::new(t, cfg),
            };
            let mut result = Ok(());
            for tensor in tensors.iter_mut() {
                if let Err(e) = worker.allreduce(tensor) {
                    result = Err(e);
                    break;
                }
            }
            let stats = worker.stats();
            if result.is_ok() {
                let _ = worker.shutdown();
            }
            (result, stats, tensors)
        }));
    }

    let mut outputs = Vec::new();
    let mut results = Vec::new();
    let mut stats = Vec::new();
    for h in worker_handles {
        let (res, st, out) = h.join().expect("worker thread panicked");
        results.push(res);
        stats.push(st);
        outputs.push(out);
    }
    let agg_stats = agg_handles
        .into_iter()
        .map(|h| h.join().expect("aggregator thread panicked"))
        .collect();
    MultiRoundOutcome {
        outputs,
        results,
        stats,
        agg_stats,
    }
}

fn small_cfg(n: usize, len: usize) -> OmniConfig {
    OmniConfig::new(n, len)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2)
        .with_initial_rto(Duration::from_millis(25))
        .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
        .with_max_retransmits(40)
}

fn gen_rounds(n: usize, len: usize, rounds: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut per_worker: Vec<Vec<Tensor>> = (0..n).map(|_| Vec::with_capacity(rounds)).collect();
    for r in 0..rounds {
        let round = gen::workers(
            n,
            len,
            BlockSpec::new(8),
            0.5,
            1.0,
            OverlapMode::Random,
            seed.wrapping_add(r as u64),
        );
        for (w, t) in round.into_iter().enumerate() {
            per_worker[w].push(t);
        }
    }
    per_worker
}

/// Runs the plan once to register every instrument, scans a manual
/// sampler (delta baselines at the post-warmup totals), runs the plan
/// again, ticks once at a fixed timestamp, and returns the
/// counter-delta series: exactly one sample each, holding the measured
/// run's counter increments.
fn replay_counters(
    cfg: &OmniConfig,
    plan: &FaultPlan,
    inputs: &[Vec<Tensor>],
) -> Vec<SeriesSnapshot> {
    let telemetry = Telemetry::with_pipeline(0, 0, SERIES_CAP);
    let warm = run_rounds(cfg, plan, inputs, Some(&telemetry));
    assert!(
        warm.results[0].is_ok(),
        "warmup run failed: {:?}",
        warm.results[0]
    );

    let mut sampler = Sampler::new(&telemetry);
    let run = run_rounds(cfg, plan, inputs, Some(&telemetry));
    assert!(
        run.results[0].is_ok(),
        "measured run failed: {:?}",
        run.results[0]
    );
    sampler.tick_at(1_000);

    telemetry
        .series()
        .snapshot()
        .series
        .into_iter()
        .filter(|s| s.kind == SeriesKind::CounterDelta)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sampler-on chaos runs are bit-identical to sampler-off runs of
    /// the same seed (tensors AND stats), and the counter plane of the
    /// sampled telemetry replays exactly. Single worker: with one
    /// protocol thread per side the stats — and the counters that
    /// mirror them — are a pure function of the keyed fates (see
    /// `tests/fault.rs`), so equality is exact.
    #[test]
    fn prop_sampler_is_invisible_and_replays_exactly(
        len in 64usize..256,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.08,
        seed in 0u64..1000,
    ) {
        with_deadline(Duration::from_secs(120), move || {
            let cfg = small_cfg(1, len);
            let rounds = 3;
            let inputs = gen_rounds(1, len, rounds, seed);
            let plan = FaultPlan::new(seed ^ 0x5A4E).loss(KeyedLoss::uniform(drop, dup));

            let off = run_rounds(&cfg, &plan, &inputs, None);
            assert!(off.results[0].is_ok(), "{:?}", off.results[0]);

            // A live background sampler ticking every 200 µs while the
            // protocol runs.
            let telemetry = Telemetry::with_pipeline(0, 0, SERIES_CAP);
            let sampler =
                Sampler::spawn(&telemetry, Duration::from_micros(200)).expect("spawn sampler");
            let on = run_rounds(&cfg, &plan, &inputs, Some(&telemetry));
            sampler.stop();
            assert!(on.results[0].is_ok(), "{:?}", on.results[0]);

            for r in 0..rounds {
                let diff = off.outputs[0][r].max_abs_diff(&on.outputs[0][r]);
                assert_eq!(diff, 0.0, "round {r}: sampler perturbed the sum");
            }
            assert_eq!(off.stats[0], on.stats[0], "sampler perturbed worker stats");
            assert_eq!(
                off.agg_stats[0].1, on.agg_stats[0].1,
                "sampler perturbed aggregator stats"
            );
            let ticks = telemetry.series().snapshot().ticks();
            assert!(ticks >= 2, "background sampler recorded only {ticks} ticks");

            // Exact replay: same plan, fresh telemetry, manual tick at
            // a fixed timestamp — byte-equal counter series both times.
            let a = replay_counters(&cfg, &plan, &inputs);
            let b = replay_counters(&cfg, &plan, &inputs);
            assert_eq!(a, b, "counter plane diverged between replays");
            assert!(
                a.iter().any(|s| s.samples.iter().any(|&(_, v)| v > 0)),
                "replay captured no counter activity"
            );
        });
    }
}
