//! Fairness battery for the multi-tenant slot scheduler ([`WfqState`]).
//!
//! These are pure property tests over the deterministic WFQ core — no
//! threads, no clocks, every run reproducible from the proptest seed:
//!
//! * **Weighted shares.** Continuously backlogged tenants receive slot
//!   shares converging to their configured weights, for every seeded
//!   arrival order.
//! * **Bounded wait.** No tenant starves: the number of foreign grants
//!   between two of a tenant's grants is bounded by a closed-form
//!   function of the weight and request-size spread.
//! * **Capacity safety.** Under adversarial enqueue/complete schedules
//!   the scheduler never over-commits the pool, never grants a ticket
//!   twice, and never loses a request.
//! * **Quota debt.** An over-quota tenant is demoted in virtual time —
//!   it receives measurably fewer grants than an identical clean tenant
//!   and every over-quota round is counted as a throttle.
//! * **Replay.** The same seed reproduces the identical grant sequence.

use omnireduce_core::tenant::{Grant, WfqState};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut s = seed;
    for i in (1..v.len()).rev() {
        let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// One backlogged-tenant profile: request size and weight.
#[derive(Debug, Clone, Copy)]
struct Profile {
    slots: u64,
    weight: u64,
}

fn profiles() -> impl Strategy<Value = Vec<Profile>> {
    prop::collection::vec(
        (1u64..3, 1u64..7).prop_map(|(slots, weight)| Profile { slots, weight }),
        2..6,
    )
}

/// Drives `iters` grant cycles with every tenant continuously
/// backlogged (each grant is completed and re-enqueued immediately),
/// starting from a seeded arrival order. Returns per-tenant granted
/// slots and the maximum number of *foreign* grants observed between
/// two consecutive grants of each tenant.
fn run_backlogged(
    profiles: &[Profile],
    seed: u64,
    iters: usize,
) -> (Vec<u64>, Vec<u64>, Vec<Grant>) {
    let capacity = profiles.iter().map(|p| p.slots).max().unwrap();
    let mut q = WfqState::new(capacity);
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    shuffle(&mut order, seed);
    for &t in &order {
        q.register(t as u16 + 1, profiles[t].weight, None);
    }
    for &t in &order {
        q.enqueue(t as u16 + 1, profiles[t].slots);
    }

    let mut slots_granted = vec![0u64; profiles.len()];
    let mut max_gap = vec![0u64; profiles.len()];
    let mut since_last = vec![0u64; profiles.len()];
    let mut trace = Vec::new();
    for _ in 0..iters {
        let grants = q.pump();
        assert!(!grants.is_empty(), "backlogged pool must always progress");
        for g in grants {
            let t = (g.stream - 1) as usize;
            slots_granted[t] += g.slots;
            for (other, gap) in since_last.iter_mut().enumerate() {
                if other == t {
                    max_gap[t] = max_gap[t].max(*gap);
                    *gap = 0;
                } else {
                    *gap += 1;
                }
            }
            trace.push(g);
            q.complete(g.stream, g.slots, 0);
            q.enqueue(g.stream, profiles[t].slots);
        }
    }
    (slots_granted, max_gap, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backlogged tenants receive slot shares proportional to their
    /// weights, within 25% relative tolerance, regardless of the
    /// seeded arrival order.
    #[test]
    fn prop_slot_shares_converge_to_weights(
        profiles in profiles(),
        seed in any::<u64>(),
    ) {
        let iters = 1500;
        let (granted, _, _) = run_backlogged(&profiles, seed, iters);
        let total_slots: u64 = granted.iter().sum();
        let total_weight: u64 = profiles.iter().map(|p| p.weight).sum();
        for (t, p) in profiles.iter().enumerate() {
            let share = granted[t] as f64 / total_slots as f64;
            let want = p.weight as f64 / total_weight as f64;
            let rel = (share - want).abs() / want;
            prop_assert!(
                rel < 0.25,
                "tenant {t} (w={}, s={}): share {share:.4}, want {want:.4} \
                 (rel err {rel:.3}) over {total_slots} slots",
                p.weight,
                p.slots
            );
        }
    }

    /// No starvation: between two consecutive grants of tenant `i`,
    /// every other tenant `j` can be served at most `c_i/c_j + 2`
    /// times, where `c_t = slots_t / weight_t` is the tenant's virtual
    /// cost per request — so the foreign-grant gap is bounded by the
    /// closed-form sum, for every arrival order.
    #[test]
    fn prop_wait_between_grants_is_bounded(
        profiles in profiles(),
        seed in any::<u64>(),
    ) {
        let (_, max_gap, _) = run_backlogged(&profiles, seed, 1000);
        for (i, pi) in profiles.iter().enumerate() {
            let ci = pi.slots as f64 / pi.weight as f64;
            let bound: f64 = profiles
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, pj)| ci / (pj.slots as f64 / pj.weight as f64) + 2.0)
                .sum();
            prop_assert!(
                (max_gap[i] as f64) <= bound.ceil(),
                "tenant {i}: {} foreign grants between its own (bound {})",
                max_gap[i],
                bound.ceil()
            );
        }
    }

    /// The same profiles and seed reproduce the identical grant
    /// sequence — the scheduler is a pure function of its inputs.
    #[test]
    fn prop_grant_sequence_replays_exactly(
        profiles in profiles(),
        seed in any::<u64>(),
    ) {
        let (_, _, a) = run_backlogged(&profiles, seed, 200);
        let (_, _, b) = run_backlogged(&profiles, seed, 200);
        prop_assert_eq!(a, b);
    }

    /// Adversarial enqueue/complete schedules: in-flight slots never
    /// exceed the pool, grants balance completions, no ticket is
    /// granted twice, and every request is granted once all slots are
    /// eventually returned.
    #[test]
    fn prop_pool_is_never_overcommitted(
        tenants in 2usize..5,
        capacity in 2u64..8,
        ops in prop::collection::vec((0u8..4, any::<u64>()), 20..120),
        seed in any::<u64>(),
    ) {
        let mut q = WfqState::new(capacity);
        for t in 0..tenants {
            q.register(t as u16 + 1, 1 + (t as u64 % 3), None);
        }
        let mut rng = seed;
        let mut outstanding: Vec<Grant> = Vec::new();
        let mut enqueued = 0u64;
        let mut seen = std::collections::HashSet::new();
        let mut granted_total = 0u64;

        let mut absorb = |grants: Vec<Grant>,
                          outstanding: &mut Vec<Grant>,
                          q: &WfqState| {
            for g in grants {
                assert!(seen.insert(g.ticket), "ticket {} granted twice", g.ticket);
                granted_total += 1;
                outstanding.push(g);
            }
            let in_flight: u64 = outstanding.iter().map(|g| g.slots).sum();
            assert_eq!(in_flight, capacity - q.free(), "slot accounting drift");
        };

        for (op, arg) in ops {
            match op {
                // Enqueue a random fitting request for a random tenant.
                0 | 1 => {
                    let t = (arg % tenants as u64) as u16 + 1;
                    let slots = 1 + arg % capacity.min(2);
                    q.enqueue(t, slots);
                    enqueued += 1;
                    absorb(q.pump(), &mut outstanding, &q);
                }
                // Complete a random outstanding grant.
                2 => {
                    if !outstanding.is_empty() {
                        let i = (splitmix64(&mut rng) % outstanding.len() as u64) as usize;
                        let g = outstanding.swap_remove(i);
                        q.complete(g.stream, g.slots, 0);
                        absorb(q.pump(), &mut outstanding, &q);
                    }
                }
                // Idle pump: must be a no-op for accounting.
                _ => absorb(q.pump(), &mut outstanding, &q),
            }
        }
        // Drain: return every outstanding slot; everything pending must
        // eventually be granted exactly once.
        while !outstanding.is_empty() {
            let g = outstanding.swap_remove(0);
            q.complete(g.stream, g.slots, 0);
            absorb(q.pump(), &mut outstanding, &q);
        }
        prop_assert_eq!(q.pending_len(), 0, "requests left ungranted after drain");
        prop_assert_eq!(granted_total, enqueued, "grant/enqueue mismatch");
        prop_assert_eq!(q.free(), capacity, "pool not made whole");
    }

    /// Quota overuse demotes, never corrupts: of two identically
    /// weighted backlogged tenants, the one blowing its byte quota
    /// every round ends up with measurably fewer grants, and every
    /// over-quota completion is counted as a throttle.
    #[test]
    fn prop_quota_debt_delays_the_overuser(
        overuse_factor in 2u64..6,
        seed in any::<u64>(),
    ) {
        const QUOTA: u64 = 1000;
        let mut q = WfqState::new(1);
        let mut order = [1u16, 2u16];
        shuffle(&mut order, seed);
        for t in order {
            q.register(t, 1, Some(QUOTA));
        }
        for t in order {
            q.enqueue(t, 1);
        }
        let mut grants = [0u64; 2];
        for _ in 0..600 {
            for g in q.pump() {
                grants[(g.stream - 1) as usize] += 1;
                // Tenant 1 overshoots its quota every round; tenant 2
                // stays exactly at it.
                let bytes = if g.stream == 1 {
                    QUOTA * overuse_factor
                } else {
                    QUOTA
                };
                q.complete(g.stream, g.slots, bytes);
                q.enqueue(g.stream, 1);
            }
        }
        prop_assert_eq!(
            q.throttles(1),
            grants[0],
            "every over-quota round must count as a throttle"
        );
        prop_assert_eq!(q.throttles(2), 0);
        // Effective cost ratio is ~overuse_factor : 1, so the clean
        // tenant must clearly out-receive the overuser.
        prop_assert!(
            grants[1] > grants[0] * (overuse_factor - 1),
            "clean tenant got {} grants vs overuser's {} (factor {})",
            grants[1],
            grants[0],
            overuse_factor
        );
    }
}
