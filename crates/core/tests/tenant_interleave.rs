//! Tenant-isolation battery: concurrent jobs multiplexed over one
//! shared aggregator fleet must behave — bit for bit — as if each ran
//! alone.
//!
//! * **Clean multiplexing.** Eight lossless tenants over a shared
//!   2-shard fleet, run concurrently under slot contention: every
//!   tenant's outputs, worker stats, aggregator stats and telemetry
//!   counters equal its solo run on a fresh service.
//! * **Chaos isolation.** Tenants with per-tenant seeded fault plans
//!   (drops, dups, bursts, stragglers) recover to the exact solo
//!   results, and the solo run replays the multiplexed telemetry
//!   counter-for-counter — a tenant's fates are a function of its own
//!   seed, never of its neighbours.
//! * **Abort containment.** A tenant whose aggregator crashes
//!   mid-stream aborts alone: its goodbyes still wind down its own
//!   surviving engines (the regression companion to the
//!   `shutdown_errors` coverage in `membership.rs`), while a concurrent
//!   tenant finishes bit-identical to solo.
//! * **Quota backpressure.** An over-quota tenant is throttled in
//!   virtual time — grants slow down, payloads stay exact.
//! * **Engine equivalence.** A solo service tenant produces the same
//!   outputs, bytes and stats as the plain [`ShardedAllReduce`] harness
//!   with the same stream id — the service adds routing, not bytes.

use std::time::Duration;

use omnireduce_core::config::OmniConfig;
use omnireduce_core::error::ProtocolError;
use omnireduce_core::shard::ShardedAllReduce;
use omnireduce_core::tenant::{
    JobRegistry, TenantChaosWorker, TenantRecoveryOutcome, TenantRunResult, TenantService,
    TenantSpec,
};
use omnireduce_core::testing::with_deadline;
use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::fault::{FaultPlan, KeyedLoss};
use omnireduce_transport::GilbertElliott;
use proptest::prelude::*;

/// Counters compared solo-vs-multiplexed for lossless tenants (the
/// lossless engine is fully deterministic, so these must be exact for
/// any worker count).
const LOSSLESS_COUNTERS: &[&str] = &[
    "core.aggregator.packets",
    "core.aggregator.blocks_received",
    "core.aggregator.slots_completed",
    "core.aggregator.rounds_completed",
    "core.aggregator.results_sent",
    "core.worker.packets_sent",
    "core.worker.bytes_sent",
    "core.worker.blocks_sent",
    "core.worker.results_received",
    "core.worker.rounds_completed",
];

/// Counters compared solo-vs-multiplexed for single-worker recovery
/// tenants under chaos (the same guard list the sharded replay suite
/// uses in `shard_interleave.rs`).
const REPLAYED_COUNTERS: &[&str] = &[
    "core.recovery.packets_sent",
    "core.recovery.retransmissions",
    "core.recovery.bytes_sent",
    "core.recovery.blocks_sent",
    "core.recovery.timer_fires",
    "core.recovery.stale_results_ignored",
    "core.recovery.backoffs",
    "core.recovery.agg.results_sent",
    "core.recovery.agg.result_retransmissions",
    "core.recovery.agg.duplicates_ignored",
    "transport.fault.keyed_drops",
    "transport.fault.keyed_dups",
];

const SHARDS: usize = 2;

fn tenant_cfg(workers: usize, len: usize) -> OmniConfig {
    OmniConfig::new(workers, len)
        .with_block_size(8)
        .with_fusion(2)
        .with_streams(2)
        .with_aggregators(SHARDS)
}

/// Chaos-grade config: deterministic reduction + an RTO floor far above
/// channel latency, so retransmissions are driven by the keyed fates
/// and not by scheduling noise (the `shard_interleave.rs` idiom).
fn chaos_cfg(workers: usize, len: usize) -> OmniConfig {
    tenant_cfg(workers, len)
        .with_deterministic()
        .with_initial_rto(Duration::from_millis(25))
        .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(400))
        .with_max_retransmits(40)
}

fn gen_inputs(n: usize, len: usize, seed: u64) -> Vec<Tensor> {
    gen::workers(
        n,
        len,
        BlockSpec::new(8),
        0.5,
        1.0,
        OverlapMode::Random,
        seed,
    )
}

/// Per-worker round inputs: `rounds` tensors per worker, seeded per
/// round so every round differs.
fn round_inputs(workers: usize, len: usize, rounds: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut per_worker: Vec<Vec<Tensor>> = (0..workers).map(|_| Vec::new()).collect();
    for r in 0..rounds {
        let round = gen_inputs(workers, len, seed.wrapping_add(1 + r as u64));
        for (w, t) in round.into_iter().enumerate() {
            per_worker[w].push(t);
        }
    }
    per_worker
}

fn registry(cap: usize) -> JobRegistry {
    JobRegistry::with_limits(cap, vec![])
}

/// Runs one lossless spec alone on a fresh fleet — the isolation
/// baseline every multiplexed tenant is compared against.
fn solo_lossless(spec: TenantSpec, inputs: Vec<Vec<Tensor>>, slots: u64) -> TenantRunResult {
    let mut svc = TenantService::with_registry(SHARDS, slots, registry(1));
    let handle = svc.admit(spec).expect("solo admission");
    let res = handle.run_lossless(inputs);
    svc.shutdown();
    res
}

/// Runs one recovery spec alone on a fresh fleet.
fn solo_recovery(spec: TenantSpec, inputs: Vec<Vec<Tensor>>, slots: u64) -> TenantRecoveryOutcome {
    let mut svc = TenantService::with_registry(SHARDS, slots, registry(1));
    let handle = svc.admit(spec).expect("solo admission");
    let res = handle.run_recovery(inputs);
    svc.shutdown();
    res
}

fn assert_outputs_equal(label: &str, got: &[Vec<Tensor>], want: &[Vec<Tensor>]) {
    assert_eq!(got.len(), want.len(), "{label}: worker count");
    for (w, (g, e)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), e.len(), "{label}: round count on worker {w}");
        for (r, (gt, et)) in g.iter().zip(e).enumerate() {
            let diff = gt.max_abs_diff(et);
            assert_eq!(diff, 0.0, "{label}: worker {w} round {r} differs by {diff}");
        }
    }
}

// ---------------------------------------------------------------------
// Clean multiplexing: 8 tenants, bit-identical to solo
// ---------------------------------------------------------------------

/// Eight lossless tenants share the 2-shard fleet concurrently, with a
/// slot pool sized to keep at most two tenants in flight (real
/// contention, real queueing). Every tenant's outputs, per-worker
/// stats, per-shard aggregator stats and telemetry counters must equal
/// a solo run of the same spec on a fresh fleet.
#[test]
fn eight_tenants_are_bit_identical_to_their_solo_runs() {
    with_deadline(Duration::from_secs(120), || {
        const TENANTS: usize = 8;
        const WORKERS: usize = 2;
        const LEN: usize = 256;
        const ROUNDS: usize = 3;

        let inputs: Vec<Vec<Vec<Tensor>>> = (0..TENANTS)
            .map(|t| round_inputs(WORKERS, LEN, ROUNDS, 0x1000 + 7 * t as u64))
            .collect();

        // Solo baselines on private fleets (generous pool: no queueing).
        let solos: Vec<TenantRunResult> = (0..TENANTS)
            .map(|t| {
                solo_lossless(
                    TenantSpec::lossless(tenant_cfg(WORKERS, LEN)),
                    inputs[t].clone(),
                    64,
                )
            })
            .collect();

        // Probe the per-round slot need with a throwaway admission, so
        // the contended pool below can be sized to exactly two tenants
        // in flight at once (real contention, real queueing).
        let probe_slots = {
            let mut probe = TenantService::with_registry(SHARDS, 64, registry(1));
            let h = probe
                .admit(TenantSpec::lossless(tenant_cfg(WORKERS, LEN)))
                .unwrap();
            let slots = h.slots_per_round();
            h.run_lossless(round_inputs(WORKERS, LEN, 1, 99));
            probe.shutdown();
            slots
        };
        let mut svc = TenantService::with_registry(SHARDS, probe_slots * 2, registry(TENANTS));

        let handles: Vec<_> = (0..TENANTS)
            .map(|_| {
                svc.admit(TenantSpec::lossless(tenant_cfg(WORKERS, LEN)))
                    .expect("admission under cap")
            })
            .collect();
        assert_eq!(svc.live_tenants(), TENANTS);

        let results: Vec<TenantRunResult> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .zip(inputs.iter())
                .map(|(h, ins)| {
                    let ins = ins.clone();
                    scope.spawn(move || h.run_lossless(ins))
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("tenant run panicked"))
                .collect()
        });

        for (t, (multi, solo)) in results.iter().zip(&solos).enumerate() {
            let label = format!("tenant {t}");
            assert_outputs_equal(&label, &multi.outputs, &solo.outputs);
            assert_eq!(multi.stats, solo.stats, "{label}: worker stats");
            assert_eq!(multi.agg_stats, solo.agg_stats, "{label}: aggregator stats");
            for name in LOSSLESS_COUNTERS {
                assert_eq!(
                    multi.telemetry.counter(name),
                    solo.telemetry.counter(name),
                    "{label}: counter {name}"
                );
            }
        }

        assert_eq!(svc.live_tenants(), 0);
        let snap = svc.shutdown();
        assert_eq!(snap.counter("core.tenant.admitted"), TENANTS as u64);
        assert_eq!(snap.counter("core.tenant.completed"), TENANTS as u64);
        assert_eq!(snap.counter("core.tenant.demux.misrouted"), 0);
        assert_eq!(snap.counter("core.tenant.demux.unknown_sender"), 0);
        assert_eq!(
            snap.counter("core.tenant.sched.grants"),
            (TENANTS * ROUNDS) as u64,
            "exactly one grant per tenant round"
        );
    });
}

// ---------------------------------------------------------------------
// Chaos isolation: per-tenant seeded faults, exact solo replay
// ---------------------------------------------------------------------

fn tenant_plan(seed: u64, t: usize, drop: f64, dup: f64, bursty: bool) -> FaultPlan {
    let mut loss = KeyedLoss::uniform(drop, dup);
    if bursty {
        let avg = drop.clamp(0.01, 0.18);
        loss = loss.with_burst(GilbertElliott::from_average(avg, 0.6, 0.3));
    }
    FaultPlan::new(seed ^ (0xBEEF + 977 * t as u64)).loss(loss)
}

fn assert_chaos_worker_eq(label: &str, got: &TenantChaosWorker, want: &TenantChaosWorker) {
    assert!(
        got.result.is_ok(),
        "{label}: multiplexed run failed: {:?}",
        got.result
    );
    assert!(
        want.result.is_ok(),
        "{label}: solo run failed: {:?}",
        want.result
    );
    assert_eq!(got.stats, want.stats, "{label}: RecoveryStats");
    assert_eq!(got.outputs.len(), want.outputs.len(), "{label}: rounds");
    for (r, (g, e)) in got.outputs.iter().zip(&want.outputs).enumerate() {
        let diff = g.max_abs_diff(e);
        assert_eq!(diff, 0.0, "{label}: round {r} differs by {diff}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N single-worker recovery tenants, each with its own seeded chaos
    /// plan (drops, dups, optional burstiness, one optional straggling
    /// shard), run concurrently over the shared fleet. Each tenant's
    /// outputs, stats, per-shard aggregator stats and the full replay
    /// counter list must equal its solo run with the same seed — its
    /// fates depend on its plan, never on its neighbours.
    #[test]
    fn prop_chaos_tenants_match_their_solo_runs_exactly(
        tenants in 2usize..4,
        len in 64usize..192,
        drop in 0.0f64..0.15,
        dup in 0.0f64..0.06,
        bursty in any::<bool>(),
        straggler in any::<bool>(),
        seed in 0u64..1000,
    ) {
        with_deadline(Duration::from_secs(120), move || {
            const ROUNDS: usize = 2;
            let cfg = chaos_cfg(1, len);

            let specs = |t: usize| {
                let mut plan = tenant_plan(seed, t, drop, dup, bursty);
                if straggler && t == 0 {
                    plan = plan.straggle(
                        cfg.aggregator_node(1),
                        Duration::from_millis(1),
                    );
                }
                TenantSpec::recovery(cfg.clone()).with_plan(plan)
            };
            let inputs: Vec<Vec<Vec<Tensor>>> = (0..tenants)
                .map(|t| round_inputs(1, len, ROUNDS, seed ^ (0x5000 + 31 * t as u64)))
                .collect();

            let solos: Vec<TenantRecoveryOutcome> = (0..tenants)
                .map(|t| solo_recovery(specs(t), inputs[t].clone(), 64))
                .collect();

            let mut svc = TenantService::with_registry(SHARDS, 64, registry(tenants));
            let handles: Vec<_> = (0..tenants)
                .map(|t| svc.admit(specs(t)).expect("admission"))
                .collect();
            let results: Vec<TenantRecoveryOutcome> = std::thread::scope(|scope| {
                let joins: Vec<_> = handles
                    .into_iter()
                    .zip(inputs.iter())
                    .map(|(h, ins)| {
                        let ins = ins.clone();
                        scope.spawn(move || h.run_recovery(ins))
                    })
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("tenant run panicked"))
                    .collect()
            });

            for (t, (multi, solo)) in results.iter().zip(&solos).enumerate() {
                let label = format!("tenant {t}");
                assert_chaos_worker_eq(&label, &multi.workers[0], &solo.workers[0]);
                for (s, ((mr, ms), (sr, ss))) in
                    multi.aggs.iter().zip(&solo.aggs).enumerate()
                {
                    assert!(mr.is_ok(), "{label} shard {s}: {mr:?}");
                    assert!(sr.is_ok(), "{label} shard {s} solo: {sr:?}");
                    assert_eq!(ms, ss, "{label}: shard {s} aggregator stats");
                }
                for name in REPLAYED_COUNTERS {
                    assert_eq!(
                        multi.telemetry.counter(name),
                        solo.telemetry.counter(name),
                        "{label}: counter {name} diverges from solo"
                    );
                }
            }

            let snap = svc.shutdown();
            assert_eq!(snap.counter("core.tenant.demux.misrouted"), 0);
        });
    }
}

// ---------------------------------------------------------------------
// Abort containment (regression: aborting tenant, surviving neighbours)
// ---------------------------------------------------------------------

/// Tenant A's shard-1 aggregator crashes mid-stream: A's worker fails
/// with a typed error naming the dead shard, A's goodbyes still wind
/// down its *own* surviving shard-0 engine (the teardown-after-failure
/// fix; companion to the `shutdown_errors` tests in `membership.rs`) —
/// and tenant B, running concurrently on the same fleet the whole time,
/// finishes bit-identical to its solo run. One tenant's abort must
/// never wind down another tenant's lanes.
#[test]
fn aborting_tenant_winds_down_alone_and_neighbours_finish_exact() {
    with_deadline(Duration::from_secs(60), || {
        const LEN: usize = 256;
        let max_retransmits = 6;
        let crash_cfg = tenant_cfg(1, LEN)
            .with_deterministic()
            .with_initial_rto(Duration::from_millis(25))
            .with_rto_bounds(Duration::from_millis(25), Duration::from_millis(100))
            .with_max_retransmits(max_retransmits);
        let crash_plan = FaultPlan::new(61).crash_after(crash_cfg.aggregator_node(1), 2);

        let b_inputs = round_inputs(2, LEN, 6, 0x7000);
        let b_solo = solo_lossless(
            TenantSpec::lossless(tenant_cfg(2, LEN)),
            b_inputs.clone(),
            64,
        );

        let mut svc = TenantService::with_registry(SHARDS, 64, registry(2));
        let a = svc
            .admit(TenantSpec::recovery(crash_cfg.clone()).with_plan(crash_plan))
            .expect("admit crashing tenant");
        let b = svc
            .admit(TenantSpec::lossless(tenant_cfg(2, LEN)))
            .expect("admit healthy tenant");

        let (a_out, b_out) = std::thread::scope(|scope| {
            let ja = scope.spawn(|| a.run_recovery(round_inputs(1, LEN, 2, 0x8000)));
            let jb = scope.spawn(|| b.run_lossless(b_inputs.clone()));
            (
                ja.join().expect("tenant A panicked"),
                jb.join().expect("tenant B panicked"),
            )
        });

        // A failed fast with a typed error naming its own dead shard …
        match &a_out.workers[0].result {
            Err(ProtocolError::PeerUnresponsive {
                peer, retransmits, ..
            }) => {
                assert_eq!(*peer, crash_cfg.aggregator_node(1), "wrong shard blamed");
                assert_eq!(*retransmits, max_retransmits);
            }
            other => panic!("tenant A: expected PeerUnresponsive, got {other:?}"),
        }
        // … its goodbyes went out despite the failure (the regression:
        // teardown must follow an aborted round) …
        assert!(
            a_out.workers[0].shutdown.is_ok(),
            "tenant A goodbye fan-out failed: {:?}",
            a_out.workers[0].shutdown
        );
        // … so A's *surviving* shard-0 engine wound down on them, while
        // the crashed shard-1 engine observed its own death.
        assert!(
            a_out.aggs[0].0.is_ok(),
            "A's surviving shard hung or failed"
        );
        assert!(a_out.aggs[1].0.is_err(), "A's crashed shard reported Ok");

        // Tenant B never noticed: all rounds, all bits, all counters.
        assert_outputs_equal("tenant B", &b_out.outputs, &b_solo.outputs);
        assert_eq!(b_out.stats, b_solo.stats, "tenant B worker stats");
        assert_eq!(b_out.agg_stats, b_solo.agg_stats, "tenant B agg stats");
        for name in LOSSLESS_COUNTERS {
            assert_eq!(
                b_out.telemetry.counter(name),
                b_solo.telemetry.counter(name),
                "tenant B: counter {name}"
            );
        }

        assert_eq!(svc.live_tenants(), 0, "both tenants must deregister");
        let snap = svc.shutdown();
        assert_eq!(snap.counter("core.tenant.completed"), 2);
        assert_eq!(snap.counter("core.tenant.demux.misrouted"), 0);
    });
}

// ---------------------------------------------------------------------
// Quota backpressure: throttled, never corrupted
// ---------------------------------------------------------------------

/// A tenant with a one-byte round quota is over quota every round: the
/// scheduler charges it virtual-time debt (visible as throttle events),
/// yet its outputs and stats stay exactly equal to an unmetered solo
/// run — backpressure slows a tenant down, it never touches payloads.
#[test]
fn quota_overuse_throttles_grants_but_never_corrupts() {
    with_deadline(Duration::from_secs(60), || {
        const LEN: usize = 256;
        const ROUNDS: usize = 4;
        let inputs = round_inputs(1, LEN, ROUNDS, 0x9000);

        let solo = solo_lossless(TenantSpec::lossless(tenant_cfg(1, LEN)), inputs.clone(), 64);

        let mut svc = TenantService::with_registry(SHARDS, 64, registry(2));
        let metered = svc
            .admit(TenantSpec::lossless(tenant_cfg(1, LEN)).with_quota(1))
            .expect("admit metered tenant");
        let peer = svc
            .admit(TenantSpec::lossless(tenant_cfg(1, LEN)))
            .expect("admit peer tenant");

        let (m_out, p_out) = std::thread::scope(|scope| {
            let jm = scope.spawn(|| metered.run_lossless(inputs.clone()));
            let jp = scope.spawn(|| peer.run_lossless(round_inputs(1, LEN, ROUNDS, 0xA000)));
            (
                jm.join().expect("metered tenant panicked"),
                jp.join().expect("peer tenant panicked"),
            )
        });
        assert_eq!(p_out.outputs[0].len(), ROUNDS, "peer completed all rounds");

        assert_outputs_equal("metered tenant", &m_out.outputs, &solo.outputs);
        assert_eq!(m_out.stats, solo.stats, "metered tenant worker stats");

        let snap = svc.shutdown();
        assert!(
            snap.counter("core.tenant.sched.throttles") >= (ROUNDS - 1) as u64,
            "a one-byte quota must throttle (got {})",
            snap.counter("core.tenant.sched.throttles")
        );
    });
}

// ---------------------------------------------------------------------
// Engine equivalence: the service adds routing, not bytes
// ---------------------------------------------------------------------

/// A solo tenant on the service (stream 1) produces byte-for-byte the
/// same outputs, worker stats and aggregator stats as the plain
/// [`ShardedAllReduce`] harness running the same config with the same
/// stream id — demux, virtual lanes and the scheduler are invisible on
/// the wire.
#[test]
fn solo_service_tenant_matches_plain_sharded_harness() {
    with_deadline(Duration::from_secs(60), || {
        const LEN: usize = 512;
        let cfg = tenant_cfg(2, LEN);
        let inputs: Vec<Vec<Tensor>> = gen_inputs(2, LEN, 0xB000)
            .into_iter()
            .map(|t| vec![t])
            .collect();

        let service = solo_lossless(TenantSpec::lossless(cfg.clone()), inputs.clone(), 64);
        assert_eq!(service.stream, 1, "first admission takes stream 1");

        // The harness must speak the same dialect: stream id 1.
        let harness = ShardedAllReduce::run(&cfg.with_stream_id(1), inputs);

        assert_outputs_equal("service vs harness", &service.outputs, &harness.outputs);
        assert_eq!(service.stats, harness.stats, "worker stats differ");
        assert_eq!(
            service.agg_stats, harness.agg_stats,
            "aggregator stats differ"
        );
    });
}
