//! OmniReduce core: sparse-aware streaming AllReduce.
//!
//! This crate implements the paper's contribution — worker and aggregator
//! engines that aggregate only the non-zero blocks of the input tensors,
//! coordinated by a look-ahead "next non-zero block" exchange:
//!
//! * [`worker::OmniWorker`] / [`aggregator::OmniAggregator`] — Algorithm 1
//!   with Block Fusion (§3.2) and parallel streams (§3.1.1), for reliable
//!   transports (the paper's RDMA RC mode).
//! * [`recovery::RecoveryWorker`] / [`recovery::RecoveryAggregator`] —
//!   Algorithm 2 with acknowledgments, retransmission timers and
//!   two-phase versioned slots, for lossy transports (the paper's
//!   DPDK/UDP mode, Appendix A).
//! * [`kv::KvWorker`] / [`kv::KvAggregator`] — Algorithm 3, the sparse
//!   key-value block format (§3.3).
//! * [`switch`] — the aggregation logic under programmable-switch
//!   constraints (§7: bounded slots, fixed-point arithmetic, small
//!   payloads), demonstrating the in-network offload.
//! * [`hierarchical`] — two-layer aggregation for multi-GPU servers (§5):
//!   intra-server reduction + inter-server OmniReduce.
//! * [`sim`] — the same worker/aggregator protocol as
//!   [`omnireduce_simnet`] actors, used by the benchmark harness to
//!   reproduce the paper's timing figures on simulated 10/100 Gbps
//!   fabrics; [`sim_recovery`] adds the Algorithm 2 actors with
//!   simulated timers over a lossy fabric.
//! * [`staging`] — the Appendix B chunk-prefetch pipeline that overlaps
//!   the GPU→host copy with transmission on the non-GDR path.
//! * [`collective`] — AllGather and Broadcast expressed on the same
//!   machinery (§7, "Generalized collective operations").
//! * [`tenant`] — a long-running multi-tenant aggregation service:
//!   stream-tagged frames demultiplex many concurrent jobs over one
//!   shard fleet, with capacity-based admission, weighted-fair slot
//!   scheduling and per-tenant telemetry/quota isolation.

pub mod aggregator;
pub mod collective;
pub mod config;
pub mod error;
pub mod hierarchical;
mod instrument;
pub mod kv;
pub mod layout;
pub mod recovery;
pub mod shard;
pub mod sim;
pub mod sim_hierarchical;
pub mod sim_recovery;
pub mod slot;
pub mod staging;
pub mod switch;
pub mod tenant;
pub mod testing;
pub mod wire;
pub mod worker;

pub use aggregator::OmniAggregator;
pub use config::{DegradedMode, OmniConfig};
pub use error::ProtocolError;
pub use kv::{KvAggregator, KvConfig, KvWorker};
pub use layout::StreamLayout;
pub use recovery::{RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker};
pub use shard::{ShardJoin, ShardMap, ShardedAllReduce, ShardedWorker};
pub use slot::ColAccumulator;
pub use tenant::{
    AdmissionError, JobRegistry, SlotScheduler, TenantEngine, TenantHandle, TenantService,
    TenantSpec, WfqState,
};
pub use worker::{OmniWorker, WorkerStats};
