//! Stream/column geometry: how the tensor's blocks map onto parallel
//! aggregation streams and fused packet columns.
//!
//! Combining §3.1.1 (a pool of `S` slots driven by `S` independent
//! streams) with §3.2 (each packet fuses `w` blocks, one per column of a
//! row-major block matrix) gives the full geometry:
//!
//! * the tensor's blocks form a matrix with `w` columns;
//! * row `r` belongs to stream `r mod T` (T = total streams), so stream
//!   `g` owns rows `g, g+T, g+2T, …`;
//! * within a stream, each column advances independently through its own
//!   rows, and a slot (one per stream) aggregates one block per column at
//!   a time.
//!
//! With `w = 1` and `T = 1` this degenerates to the basic Algorithm 1.

use omnireduce_tensor::{BlockIdx, BlockSpec, NonZeroBitmap, INFINITY_BLOCK};

/// Geometry of streams × columns over a tensor's blocks.
#[derive(Debug, Clone, Copy)]
pub struct StreamLayout {
    spec: BlockSpec,
    width: usize,
    total_streams: usize,
    nblocks: usize,
    tensor_len: usize,
}

impl StreamLayout {
    /// Builds the layout for a `tensor_len`-element tensor split into
    /// `spec` blocks, fused `width` per packet, over `total_streams`
    /// streams.
    pub fn new(spec: BlockSpec, width: usize, total_streams: usize, tensor_len: usize) -> Self {
        assert!(width > 0 && total_streams > 0);
        StreamLayout {
            spec,
            width,
            total_streams,
            nblocks: spec.block_count(tensor_len),
            tensor_len,
        }
    }

    /// Block partitioning.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Fusion width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total streams `T`.
    pub fn total_streams(&self) -> usize {
        self.total_streams
    }

    /// Number of blocks in the tensor.
    pub fn nblocks(&self) -> usize {
        self.nblocks
    }

    /// Tensor length in elements.
    pub fn tensor_len(&self) -> usize {
        self.tensor_len
    }

    /// Element range of block `b`.
    pub fn block_range(&self, b: BlockIdx) -> std::ops::Range<usize> {
        self.spec.range(b, self.tensor_len)
    }

    /// Column of block `b`.
    pub fn column_of(&self, b: BlockIdx) -> usize {
        b as usize % self.width
    }

    /// Stream owning block `b`.
    pub fn stream_of(&self, b: BlockIdx) -> usize {
        (b as usize / self.width) % self.total_streams
    }

    /// The first block of stream `g`, column `c` (row `g`), or `None`
    /// when it falls past the end of the tensor.
    pub fn first_block(&self, stream: usize, col: usize) -> Option<BlockIdx> {
        debug_assert!(stream < self.total_streams && col < self.width);
        let b = stream * self.width + col;
        (b < self.nblocks).then_some(b as BlockIdx)
    }

    /// The block after `b` in the same stream and column (one stream-row
    /// down), or `None` past the end.
    pub fn successor(&self, b: BlockIdx) -> Option<BlockIdx> {
        let nb = b as usize + self.width * self.total_streams;
        (nb < self.nblocks).then_some(nb as BlockIdx)
    }

    /// First *non-zero* block of stream `g`, column `c`, strictly after
    /// `after` (or from the stream's first row when `after` is `None`).
    /// Returns [`INFINITY_BLOCK`] when the column is exhausted.
    ///
    /// When `skip_zero` is false every block counts as non-zero (the
    /// dense streaming mode).
    pub fn next_block(
        &self,
        bitmap: &NonZeroBitmap,
        stream: usize,
        col: usize,
        after: Option<BlockIdx>,
        skip_zero: bool,
    ) -> BlockIdx {
        let mut cursor = match after {
            None => self.first_block(stream, col),
            Some(b) => {
                debug_assert_eq!(self.stream_of(b), stream);
                debug_assert_eq!(self.column_of(b), col);
                self.successor(b)
            }
        };
        while let Some(b) = cursor {
            if !skip_zero || bitmap.is_set(b) {
                return b;
            }
            cursor = self.successor(b);
        }
        INFINITY_BLOCK
    }

    /// All valid columns of stream `g` (columns whose first row block
    /// exists).
    pub fn valid_columns(&self, stream: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.width).filter(move |c| self.first_block(stream, *c).is_some())
    }

    /// Streams that own at least one block.
    pub fn active_streams(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.total_streams).filter(|g| self.first_block(*g, 0).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnireduce_tensor::Tensor;

    fn layout(bs: usize, w: usize, t: usize, len: usize) -> StreamLayout {
        StreamLayout::new(BlockSpec::new(bs), w, t, len)
    }

    #[test]
    fn ownership_partition_is_exact() {
        // Every block belongs to exactly one (stream, column) and is
        // reachable by walking successors from first_block.
        let l = layout(4, 3, 2, 100); // 25 blocks
        let mut seen = vec![false; l.nblocks()];
        for g in 0..l.total_streams() {
            for c in 0..l.width() {
                let mut cur = l.first_block(g, c);
                while let Some(b) = cur {
                    assert_eq!(l.stream_of(b), g);
                    assert_eq!(l.column_of(b), c);
                    assert!(!seen[b as usize], "block {b} visited twice");
                    seen[b as usize] = true;
                    cur = l.successor(b);
                }
            }
        }
        assert!(seen.iter().all(|s| *s), "some block unowned");
    }

    #[test]
    fn degenerate_geometry_matches_blockspec_scan() {
        // w=1, T=1: next_block must equal BlockSpec::next_nonzero_block.
        let spec = BlockSpec::new(2);
        let vals: Vec<f32> = (0..40)
            .map(|i| if i % 9 == 0 { 1.0 } else { 0.0 })
            .collect();
        let t = Tensor::from_vec(vals);
        let bm = NonZeroBitmap::build(&t, spec);
        let l = layout(2, 1, 1, 40);
        // From the start (after block 0):
        let from0 = l.next_block(&bm, 0, 0, Some(0), true);
        assert_eq!(from0, spec.next_nonzero_block(&t, 1));
        let mut cur = 0u32;
        loop {
            let next = l.next_block(&bm, 0, 0, Some(cur), true);
            assert_eq!(next, spec.next_nonzero_block(&t, cur + 1));
            if next == INFINITY_BLOCK {
                break;
            }
            cur = next;
        }
    }

    #[test]
    fn first_block_none_past_end() {
        let l = layout(4, 4, 4, 16); // 4 blocks: only stream 0 row exists
        assert_eq!(l.first_block(0, 0), Some(0));
        assert_eq!(l.first_block(0, 3), Some(3));
        assert_eq!(l.first_block(1, 0), None);
        assert_eq!(l.active_streams().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn partial_last_row_limits_columns() {
        let l = layout(4, 4, 1, 24); // 6 blocks; row1 has cols 0,1 only
        assert_eq!(l.first_block(0, 0), Some(0));
        assert_eq!(l.successor(4), None);
        assert_eq!(l.successor(0), Some(4));
        assert_eq!(l.successor(1), Some(5));
        assert_eq!(l.successor(2), None);
        assert_eq!(l.valid_columns(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dense_mode_ignores_bitmap() {
        let l = layout(2, 2, 1, 12); // 6 blocks
        let bm = NonZeroBitmap::empty(6);
        assert_eq!(l.next_block(&bm, 0, 0, None, false), 0);
        assert_eq!(l.next_block(&bm, 0, 0, Some(0), false), 2);
        assert_eq!(l.next_block(&bm, 0, 0, Some(4), false), INFINITY_BLOCK);
        // sparse mode: everything zero → infinity immediately
        assert_eq!(l.next_block(&bm, 0, 0, None, true), INFINITY_BLOCK);
    }

    #[test]
    fn next_block_skips_zero_blocks_within_column() {
        let l = layout(2, 2, 2, 32); // 16 blocks, T=2, w=2
                                     // Stream 0, column 0 owns blocks: rows 0,2 → blocks 0, 8 (row r: r*2)
                                     // rows of stream 0: 0, 2 → blocks 0,1 (row0) and 4,5?? row 2 → blocks 4,5.
                                     // Careful: row r covers blocks r*w .. r*w+w. Stream 0 rows: 0, 2.
        let mut bm = NonZeroBitmap::empty(16);
        bm.set(4); // row 2, col 0 → stream 0
        assert_eq!(l.next_block(&bm, 0, 0, None, true), 4);
        assert_eq!(l.next_block(&bm, 0, 0, Some(4), true), INFINITY_BLOCK);
        // stream 1, col 0 owns rows 1,3 → blocks 2, 6; all zero.
        assert_eq!(l.next_block(&bm, 1, 0, None, true), INFINITY_BLOCK);
    }

    #[test]
    fn block_range_clamps_tail() {
        let l = layout(4, 1, 1, 10);
        assert_eq!(l.block_range(2), 8..10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every block belongs to exactly one (stream, column) chain and
        /// is reachable by walking successors — for arbitrary geometry.
        #[test]
        fn prop_ownership_partition(
            bs in 1usize..16,
            w in 1usize..6,
            t in 1usize..5,
            len in 1usize..2000,
        ) {
            let l = StreamLayout::new(BlockSpec::new(bs), w, t, len);
            let mut seen = vec![false; l.nblocks()];
            for g in 0..l.total_streams() {
                for c in 0..l.width() {
                    let mut cur = l.first_block(g, c);
                    while let Some(b) = cur {
                        prop_assert_eq!(l.stream_of(b), g);
                        prop_assert_eq!(l.column_of(b), c);
                        prop_assert!(!seen[b as usize]);
                        seen[b as usize] = true;
                        cur = l.successor(b);
                    }
                }
            }
            prop_assert!(seen.iter().all(|s| *s));
        }

        /// `next_block` in sparse mode returns the minimum non-zero block
        /// of the chain strictly after `after`, for arbitrary bitmaps.
        #[test]
        fn prop_next_block_is_chain_minimum(
            bs in 1usize..8,
            w in 1usize..4,
            t in 1usize..4,
            len in 8usize..600,
            nonzero in prop::collection::vec(any::<bool>(), 1..80),
        ) {
            let l = StreamLayout::new(BlockSpec::new(bs), w, t, len);
            let mut bm = NonZeroBitmap::empty(l.nblocks());
            for (i, on) in nonzero.iter().enumerate() {
                if *on && i < l.nblocks() {
                    bm.set(i as u32);
                }
            }
            for g in 0..l.total_streams() {
                for c in 0..l.width() {
                    // Collect the chain.
                    let mut chain = Vec::new();
                    let mut cur = l.first_block(g, c);
                    while let Some(b) = cur {
                        chain.push(b);
                        cur = l.successor(b);
                    }
                    // From the start.
                    let want = chain.iter().copied().find(|b| bm.is_set(*b));
                    let got = l.next_block(&bm, g, c, None, true);
                    prop_assert_eq!(got, want.unwrap_or(INFINITY_BLOCK));
                    // After each chain member.
                    for (i, b) in chain.iter().enumerate() {
                        let want = chain[i + 1..]
                            .iter()
                            .copied()
                            .find(|x| bm.is_set(*x))
                            .unwrap_or(INFINITY_BLOCK);
                        prop_assert_eq!(
                            l.next_block(&bm, g, c, Some(*b), true),
                            want
                        );
                    }
                }
            }
        }
    }
}
