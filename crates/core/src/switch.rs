//! In-network aggregation under programmable-switch constraints (§7).
//!
//! The paper offloads the aggregator to a Barefoot Tofino switch (Fig. 18)
//! and notes the offload "inherits some of the limitations described by
//! Sapio et al. (SwitchML) in terms of numeric representation and slot
//! size". This module models those constraints so the same protocol can be
//! exercised under them:
//!
//! * **Fixed-point arithmetic** — Tofino ALUs sum 32-bit integers, not
//!   floats. [`FixedPoint`] quantizes `f32` block values to `i32` with a
//!   shared scaling exponent and saturating accumulation, exactly the
//!   SwitchML numeric model.
//! * **Bounded slot memory** — switch register memory holds a fixed pool
//!   of slots; [`SwitchAggregator`] enforces the pool bound at
//!   construction (geometry that needs more concurrent slots than the
//!   switch has is rejected up front).
//! * **Small payloads** — a Tofino pipeline processes ~34 32-bit values
//!   per packet per pass ([`TOFINO_MAX_BLOCK`]); larger blocks must be
//!   recirculated. The aggregator accepts bigger blocks but reports the
//!   recirculation factor so the timing model can charge for it.
//!
//! [`SwitchAggregator`] is a drop-in replacement for
//! [`crate::aggregator::OmniAggregator`] over any reliable transport: same
//! wire protocol, switch-constrained internals. Results it produces are
//! quantized, so they differ from the float sum by at most the
//! quantization step times the worker count.

use omnireduce_telemetry::{Counter, Telemetry};
use omnireduce_tensor::{BlockIdx, INFINITY_BLOCK};
use omnireduce_transport::{
    BufferPool, Entry, Message, NodeId, Packet, PacketKind, Transport, TransportError,
};

use crate::config::OmniConfig;
use crate::layout::StreamLayout;
use crate::wire::{decode_next, encode_next};

/// Values a Tofino-class pipeline can aggregate per packet per pass
/// (the paper's Fig. 18 runs the P4 aggregator with block size 34).
pub const TOFINO_MAX_BLOCK: usize = 34;

/// Default register-memory slot pool of the modelled switch.
pub const DEFAULT_SWITCH_POOL: usize = 512;

/// SwitchML-style fixed-point codec: `f32 ↔ i32` with a power-of-two
/// scaling factor and saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// Fractional bits: value `x` is stored as `round(x · 2^frac_bits)`.
    pub frac_bits: u32,
}

impl Default for FixedPoint {
    fn default() -> Self {
        // 2^20 scaling: ±2047 representable range, ~1e-6 resolution —
        // ample for unit-scale gradients.
        FixedPoint { frac_bits: 20 }
    }
}

impl FixedPoint {
    /// Creates a codec with the given fractional bits (≤ 30).
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 30, "frac_bits too large");
        FixedPoint { frac_bits }
    }

    /// Quantizes a float to fixed point, saturating at the i32 range.
    pub fn quantize(&self, x: f32) -> i32 {
        let scaled = (x as f64) * (1u64 << self.frac_bits) as f64;
        scaled.round().clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }

    /// Dequantizes back to float.
    pub fn dequantize(&self, q: i32) -> f32 {
        (q as f64 / (1u64 << self.frac_bits) as f64) as f32
    }

    /// Saturating fixed-point add — the switch ALU operation.
    pub fn add(&self, a: i32, b: i32) -> i32 {
        a.saturating_add(b)
    }

    /// Worst-case absolute quantization error of a single value.
    pub fn step(&self) -> f32 {
        1.0 / (1u64 << self.frac_bits) as f32
    }
}

const NEG_INFINITY: i64 = -1;

struct ColSlot {
    cur: BlockIdx,
    acc: Vec<i32>,
    touched: bool,
    next_of: Vec<i64>,
}

impl ColSlot {
    fn new(first: BlockIdx, n: usize) -> Self {
        ColSlot {
            cur: first,
            acc: Vec::new(),
            touched: false,
            next_of: vec![NEG_INFINITY; n],
        }
    }

    fn active(&self) -> bool {
        self.cur != INFINITY_BLOCK
    }

    fn min_next(&self) -> Option<BlockIdx> {
        let mut min = i64::MAX;
        for n in &self.next_of {
            if *n == NEG_INFINITY {
                return None;
            }
            min = min.min(*n);
        }
        Some(min as BlockIdx)
    }

    fn complete(&self) -> bool {
        matches!(self.min_next(), Some(m) if (self.cur as i64) < m as i64)
    }

    /// Clears the slot for a new round in place, keeping the `acc` and
    /// `next_of` allocations (DESIGN §9: no per-round allocation).
    fn reset(&mut self, first: BlockIdx) {
        self.cur = first;
        self.acc.clear();
        self.touched = false;
        self.next_of.fill(NEG_INFINITY);
    }
}

struct Slot {
    cols: Vec<Option<ColSlot>>,
}

/// Statistics of the modelled switch data plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets processed.
    pub packets: u64,
    /// Pipeline passes, counting recirculation for blocks larger than
    /// [`TOFINO_MAX_BLOCK`].
    pub pipeline_passes: u64,
    /// Values that saturated during accumulation.
    pub saturations: u64,
    /// Result multicasts.
    pub results_sent: u64,
}

/// Fleet-wide `core.switch.*` registry mirrors of [`SwitchStats`]
/// (detached no-ops unless built via
/// [`SwitchAggregator::with_telemetry`]).
struct SwitchCounters {
    packets: Counter,
    pipeline_passes: Counter,
    saturations: Counter,
    results_sent: Counter,
}

impl SwitchCounters {
    fn detached() -> Self {
        SwitchCounters {
            packets: Counter::detached(),
            pipeline_passes: Counter::detached(),
            saturations: Counter::detached(),
            results_sent: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        SwitchCounters {
            packets: telemetry.counter("core.switch.packets"),
            pipeline_passes: telemetry.counter("core.switch.pipeline_passes"),
            saturations: telemetry.counter("core.switch.saturations"),
            results_sent: telemetry.counter("core.switch.results_sent"),
        }
    }
}

/// An aggregator with Tofino-like constraints: fixed-point slots drawn
/// from a bounded pool. Protocol-compatible with
/// [`crate::worker::OmniWorker`].
pub struct SwitchAggregator<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    fp: FixedPoint,
    slots: Vec<Option<Slot>>,
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
    /// Data-plane counters.
    pub stats: SwitchStats,
    counters: SwitchCounters,
    /// Freelists for outgoing result buffers (DESIGN §9): dequantized
    /// payloads and entry lists are checked out here and recycled after
    /// the multicast instead of reallocated per completion.
    pool: BufferPool,
    /// Multicast fan-out scratch, reused across completions.
    workers_scratch: Vec<NodeId>,
}

impl<T: Transport> SwitchAggregator<T> {
    /// Creates the switch aggregator with the given fixed-point codec and
    /// slot pool capacity.
    ///
    /// # Panics
    /// Panics when the geometry needs more concurrent slots than
    /// `pool_slots` — the register-memory bound of the switch. Each
    /// stream consumes `fusion` column slots.
    pub fn new(transport: T, cfg: OmniConfig, fp: FixedPoint, pool_slots: usize) -> Self {
        cfg.validate();
        let node = transport.local_id().0 as usize;
        assert!(
            node >= cfg.num_workers && node < cfg.mesh_size(),
            "node {node} is not an aggregator"
        );
        let shard = node - cfg.num_workers;
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let owned_streams = (0..layout.total_streams())
            .filter(|g| cfg.shard_of_stream(*g) == shard)
            .count();
        let needed = owned_streams * cfg.fusion;
        assert!(
            needed <= pool_slots,
            "geometry needs {needed} slots but the switch pool holds {pool_slots}"
        );
        let slots = (0..layout.total_streams())
            .map(|g| {
                (cfg.shard_of_stream(g) == shard).then(|| Slot {
                    cols: (0..layout.width())
                        .map(|c| {
                            layout
                                .first_block(g, c)
                                .map(|b0| ColSlot::new(b0, cfg.num_workers))
                        })
                        .collect(),
                })
            })
            .collect();
        let departed = vec![false; cfg.num_workers];
        let pool = BufferPool::for_block_size(cfg.block_size);
        SwitchAggregator {
            transport,
            cfg,
            layout,
            fp,
            slots,
            departed,
            goodbyes: 0,
            stats: SwitchStats::default(),
            counters: SwitchCounters::detached(),
            pool,
            workers_scratch: Vec::new(),
        }
    }

    /// Like [`SwitchAggregator::new`], but mirrors data-plane counters
    /// into `telemetry`'s `core.switch.*` counters.
    pub fn with_telemetry(
        transport: T,
        cfg: OmniConfig,
        fp: FixedPoint,
        pool_slots: usize,
        telemetry: &Telemetry,
    ) -> Self {
        let mut a = Self::new(transport, cfg, fp, pool_slots);
        a.counters = SwitchCounters::registered(telemetry);
        a.pool = BufferPool::for_block_size(a.cfg.block_size).with_telemetry("switch", telemetry);
        a
    }

    /// Serves the group until every worker says `Shutdown`.
    pub fn run(&mut self) -> Result<(), TransportError> {
        loop {
            let (from, msg) = self.transport.recv()?;
            match msg {
                Message::Block(p) if p.kind == PacketKind::Data => self.handle(p)?,
                Message::Shutdown => {
                    if !self.departed[from.index()] {
                        self.departed[from.index()] = true;
                        self.goodbyes += 1;
                    }
                    if self.goodbyes == self.cfg.num_workers {
                        return Ok(());
                    }
                }
                other => panic!("switch: unexpected {:?}", other.tag()),
            }
        }
    }

    fn handle(&mut self, p: Packet) -> Result<(), TransportError> {
        let g = p.slot as usize;
        let width = self.layout.width();
        self.stats.packets += 1;
        self.counters.packets.inc();
        let fp = self.fp;
        let slot = self.slots[g].as_mut().expect("stream not owned");
        for entry in &p.entries {
            let (col, next) = decode_next(entry.next, width);
            let cs = slot.cols[col].as_mut().expect("invalid column");
            if !entry.data.is_empty() {
                debug_assert_eq!(entry.block, cs.cur);
                let passes = entry.data.len().div_ceil(TOFINO_MAX_BLOCK) as u64;
                self.stats.pipeline_passes += passes;
                self.counters.pipeline_passes.add(passes);
                if !cs.touched {
                    cs.acc.clear();
                    cs.acc.extend(entry.data.iter().map(|v| fp.quantize(*v)));
                    cs.touched = true;
                } else {
                    for (a, v) in cs.acc.iter_mut().zip(&entry.data) {
                        let q = fp.quantize(*v);
                        let sum = fp.add(*a, q);
                        if sum == i32::MAX || sum == i32::MIN {
                            self.stats.saturations += 1;
                            self.counters.saturations.inc();
                        }
                        *a = sum;
                    }
                }
            }
            cs.next_of[p.wid as usize] = if next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                next as i64
            };
        }
        self.check_completion(g)
    }

    fn check_completion(&mut self, g: usize) -> Result<(), TransportError> {
        let width = self.layout.width();
        let fp = self.fp;
        let slot = self.slots[g].as_mut().expect("owned stream");
        let any_active = slot.cols.iter().flatten().any(|c| c.active());
        let all_complete = slot
            .cols
            .iter()
            .flatten()
            .filter(|c| c.active())
            .all(|c| c.complete());
        if !any_active || !all_complete {
            return Ok(());
        }
        let mut entries = self.pool.checkout_entries();
        let mut all_done = true;
        for (col, cs) in slot.cols.iter_mut().enumerate() {
            let Some(cs) = cs else { continue };
            if !cs.active() {
                continue;
            }
            let min_next = cs.min_next().expect("complete implies announced");
            // Pooled dequantized payload (no fresh Vec per completion).
            let mut data = self.pool.checkout_f32();
            data.extend(cs.acc.iter().map(|q| fp.dequantize(*q)));
            entries.push(Entry::data(cs.cur, encode_next(min_next, col, width), data));
            cs.acc.clear();
            cs.touched = false;
            cs.cur = min_next;
            if min_next != INFINITY_BLOCK {
                all_done = false;
            }
        }
        let msg = Message::Block(Packet {
            kind: PacketKind::Result,
            ver: 0,
            slot: g as u16,
            stream: self.cfg.stream_id,
            wid: u16::MAX,
            epoch: 0,
            entries,
        });
        self.workers_scratch.clear();
        for w in 0..self.cfg.num_workers {
            if !self.departed[w] {
                self.workers_scratch.push(NodeId(self.cfg.worker_node(w)));
            }
        }
        self.stats.results_sent += 1;
        self.counters.results_sent.inc();
        for w in &self.workers_scratch {
            crate::wire::send_best_effort(&self.transport, *w, &msg)?;
        }
        // The multicast borrowed the message; its buffers come back.
        self.pool.recycle_message(msg);
        if all_done {
            let layout = self.layout;
            let slot = self.slots[g].as_mut().expect("owned stream");
            for (c, cs) in slot.cols.iter_mut().enumerate() {
                if let Some(cs) = cs {
                    cs.reset(layout.first_block(g, c).expect("valid"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_within_step() {
        let fp = FixedPoint::default();
        for x in [0.0f32, 1.0, -1.0, 0.123456, -987.654, 1e-5] {
            let q = fp.quantize(x);
            let back = fp.dequantize(q);
            assert!((back - x).abs() <= fp.step(), "{x} → {back}");
        }
    }

    #[test]
    fn quantize_saturates_at_range() {
        let fp = FixedPoint::new(20);
        let max_repr = fp.dequantize(i32::MAX);
        assert_eq!(fp.quantize(1e10), i32::MAX);
        assert_eq!(fp.quantize(-1e10), i32::MIN);
        assert!(max_repr > 2000.0);
    }

    #[test]
    fn fixed_add_saturates() {
        let fp = FixedPoint::new(0);
        assert_eq!(fp.add(i32::MAX, 1), i32::MAX);
        assert_eq!(fp.add(i32::MIN, -1), i32::MIN);
        assert_eq!(fp.add(3, 4), 7);
    }

    #[test]
    fn step_is_inverse_power_of_two() {
        assert_eq!(FixedPoint::new(2).step(), 0.25);
    }

    #[test]
    #[should_panic(expected = "switch pool")]
    fn pool_bound_is_enforced() {
        use omnireduce_transport::{ChannelNetwork, NodeId};
        let cfg = OmniConfig::new(2, 1 << 16)
            .with_block_size(32)
            .with_fusion(8)
            .with_streams(64);
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let t = net.endpoint(NodeId(cfg.aggregator_node(0)));
        // 64 streams × 8 columns = 512 slots > 256.
        let _ = SwitchAggregator::new(t, cfg, FixedPoint::default(), 256);
    }
}
