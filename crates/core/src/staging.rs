//! Chunk-prefetch staging pipeline (paper Appendix B, Fig. 19).
//!
//! Without GPU-direct RDMA, tensor data must cross PCIe into host memory
//! before the NIC can send it. Copying per block (<1 KB) is hopeless —
//! small DMA transfers waste the bus — so the paper copies the whole
//! tensor in large chunks (4 MB) asynchronously while worker threads
//! consume completed chunks: "the memory copy operation between GPU and
//! host is almost completely overlapped with the communication".
//!
//! [`StagingPipeline`] models that schedule exactly: chunk `i` becomes
//! available at `(i+1) · chunk_bytes / pcie_rate + per_chunk_overhead`,
//! and a block can be transmitted no earlier than its chunk's ready
//! time. From it we derive the total completion time of a send of
//! `wire_bytes` at a given network rate — the quantity the
//! `ablation_staging` sweep uses to show why 4 MB chunks are a good
//! choice: big enough to amortize the per-chunk synchronization cost,
//! small enough that the pipeline fill (first chunk) doesn't delay the
//! network start.

/// The staging pipeline model.
#[derive(Debug, Clone, Copy)]
pub struct StagingPipeline {
    /// Total tensor bytes to stage.
    pub tensor_bytes: u64,
    /// Chunk size (the paper uses 4 MB).
    pub chunk_bytes: u64,
    /// PCIe effective copy rate, bytes/second.
    pub pcie_rate: f64,
    /// Fixed per-chunk cost (cudaMemcpyAsync launch + event sync),
    /// seconds.
    pub per_chunk_overhead: f64,
}

impl StagingPipeline {
    /// A PCIe gen3 x16 profile with the paper's 4 MB chunks.
    pub fn pcie_gen3(tensor_bytes: u64) -> Self {
        StagingPipeline {
            tensor_bytes,
            chunk_bytes: 4_000_000,
            pcie_rate: 16e9,
            per_chunk_overhead: 20e-6,
        }
    }

    /// Number of chunks.
    pub fn chunks(&self) -> u64 {
        self.tensor_bytes.div_ceil(self.chunk_bytes.max(1))
    }

    /// Time at which chunk `i` (0-based) is fully staged in host memory.
    pub fn chunk_ready(&self, i: u64) -> f64 {
        debug_assert!(i < self.chunks());
        let copied = ((i + 1) * self.chunk_bytes).min(self.tensor_bytes) as f64;
        copied / self.pcie_rate + (i + 1) as f64 * self.per_chunk_overhead
    }

    /// Time at which the byte at `offset` becomes sendable.
    pub fn byte_ready(&self, offset: u64) -> f64 {
        debug_assert!(offset < self.tensor_bytes);
        self.chunk_ready(offset / self.chunk_bytes.max(1))
    }

    /// Completion time of transmitting `wire_bytes` (spread uniformly
    /// over the tensor) at `net_rate` bytes/second, with sends gated on
    /// chunk availability.
    ///
    /// The NIC drains staged-and-unsent data at `net_rate`; whenever it
    /// catches up with the staging frontier it stalls until the next
    /// chunk lands. Returns the finish time of the last byte.
    pub fn overlapped_send_time(&self, wire_bytes: u64, net_rate: f64) -> f64 {
        let chunks = self.chunks();
        if chunks == 0 || wire_bytes == 0 {
            return 0.0;
        }
        // Wire bytes attributable to each chunk (uniform sparsity).
        let per_chunk_wire = wire_bytes as f64 / chunks as f64;
        let mut t = 0.0f64;
        for i in 0..chunks {
            // Cannot start sending chunk i's data before it is staged.
            t = t.max(self.chunk_ready(i));
            t += per_chunk_wire / net_rate;
        }
        t
    }

    /// Lower bound: perfect overlap of copy and network
    /// (`max(total_copy, total_send)`).
    pub fn ideal_time(&self, wire_bytes: u64, net_rate: f64) -> f64 {
        let copy = self.tensor_bytes as f64 / self.pcie_rate
            + self.chunks() as f64 * self.per_chunk_overhead;
        let send = wire_bytes as f64 / net_rate;
        copy.max(send)
    }

    /// Upper bound: no overlap (copy everything, then send).
    pub fn serial_time(&self, wire_bytes: u64, net_rate: f64) -> f64 {
        let copy = self.tensor_bytes as f64 / self.pcie_rate
            + self.chunks() as f64 * self.per_chunk_overhead;
        copy + wire_bytes as f64 / net_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(chunk_mb: u64) -> StagingPipeline {
        StagingPipeline {
            tensor_bytes: 100_000_000,
            chunk_bytes: chunk_mb * 1_000_000,
            pcie_rate: 16e9,
            per_chunk_overhead: 20e-6,
        }
    }

    #[test]
    fn chunk_schedule_is_monotone() {
        let p = pipe(4);
        let mut prev = 0.0;
        for i in 0..p.chunks() {
            let r = p.chunk_ready(i);
            assert!(r > prev);
            prev = r;
        }
        // Last chunk ready ≈ full copy time + per-chunk overheads.
        let full = 100e6 / 16e9 + p.chunks() as f64 * 20e-6;
        assert!((p.chunk_ready(p.chunks() - 1) - full).abs() < 1e-9);
    }

    #[test]
    fn byte_ready_maps_to_owning_chunk() {
        let p = pipe(4);
        assert_eq!(p.byte_ready(0), p.chunk_ready(0));
        assert_eq!(p.byte_ready(3_999_999), p.chunk_ready(0));
        assert_eq!(p.byte_ready(4_000_000), p.chunk_ready(1));
    }

    #[test]
    fn overlapped_between_ideal_and_serial() {
        let p = pipe(4);
        for wire in [100_000_000u64, 10_000_000, 1_000_000] {
            for rate in [1.25e9, 12.5e9] {
                let o = p.overlapped_send_time(wire, rate);
                let lo = p.ideal_time(wire, rate);
                let hi = p.serial_time(wire, rate);
                assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "wire {wire} rate {rate}");
            }
        }
    }

    #[test]
    fn network_bound_case_overlaps_almost_fully() {
        // 10 Gbps network, dense send: the slow network hides the copy.
        let p = pipe(4);
        let o = p.overlapped_send_time(100_000_000, 1.25e9);
        let ideal = p.ideal_time(100_000_000, 1.25e9);
        assert!((o - ideal) / ideal < 0.01, "o {o} ideal {ideal}");
    }

    #[test]
    fn copy_bound_case_hits_copy_floor() {
        // 100 Gbps + sparse send: the copy is the floor (§6.1.1's RDMA
        // saturation).
        let p = pipe(4);
        let o = p.overlapped_send_time(5_000_000, 12.5e9);
        let copy = 100e6 / 16e9;
        assert!(o >= copy, "o {o} below copy floor {copy}");
        assert!(o < copy * 1.2);
    }

    #[test]
    fn zero_wire_bytes_is_free() {
        let p = pipe(4);
        assert_eq!(p.overlapped_send_time(0, 1.25e9), 0.0);
        let empty = StagingPipeline {
            tensor_bytes: 0,
            ..pipe(4)
        };
        assert_eq!(empty.overlapped_send_time(1_000, 1.25e9), 0.0);
    }

    #[test]
    fn one_giant_chunk_degenerates_to_serial() {
        // chunk ≥ tensor: no overlap is possible — the overlapped time
        // equals copy-then-send exactly.
        let p = pipe(100); // single 100 MB chunk
        assert_eq!(p.chunks(), 1);
        let o = p.overlapped_send_time(50_000_000, 1.25e9);
        let serial = p.serial_time(50_000_000, 1.25e9);
        assert!((o - serial).abs() < 1e-12, "o {o} serial {serial}");
    }

    #[test]
    fn chunk_count_rounds_up_for_partial_tail() {
        let p = StagingPipeline {
            tensor_bytes: 9_000_001,
            chunk_bytes: 4_000_000,
            pcie_rate: 16e9,
            per_chunk_overhead: 0.0,
        };
        assert_eq!(p.chunks(), 3);
        // The tail chunk's ready time is capped at the real tensor size.
        let full_copy = 9_000_001f64 / 16e9;
        assert!((p.chunk_ready(2) - full_copy).abs() < 1e-12);
    }

    #[test]
    fn pcie_gen3_profile_matches_paper_constants() {
        let p = StagingPipeline::pcie_gen3(100_000_000);
        assert_eq!(p.chunk_bytes, 4_000_000, "the paper stages in 4 MB chunks");
        assert_eq!(p.pcie_rate, 16e9, "PCIe gen3 x16 effective rate");
        assert_eq!(p.chunks(), 25);
    }

    #[test]
    fn tiny_chunks_pay_overhead_big_chunks_pay_fill() {
        // Sweep: per-chunk overhead hurts at 64 KB; at one giant chunk
        // there is no overlap at all. A middle size wins.
        let time = |chunk_mb_frac: f64| {
            let p = StagingPipeline {
                tensor_bytes: 100_000_000,
                chunk_bytes: (chunk_mb_frac * 1e6) as u64,
                pcie_rate: 16e9,
                per_chunk_overhead: 20e-6,
            };
            p.overlapped_send_time(100_000_000, 12.5e9)
        };
        let tiny = time(0.064);
        let mid = time(4.0);
        let huge = time(100.0);
        assert!(mid < tiny, "4 MB {mid} should beat 64 KB {tiny}");
        assert!(mid < huge, "4 MB {mid} should beat one-shot {huge}");
    }
}
