//! Two-layer hierarchical aggregation for multi-GPU servers (§5, §6.3).
//!
//! "When there are multiple GPUs per server, OmniReduce performs a
//! two-layer hierarchical aggregation. We use NCCL for intra-server
//! multi-GPU reduction and broadcast in the first layer and use
//! OmniReduce for inter-server communication."
//!
//! Here each "GPU" is a thread; the intra-server layer is a shared-memory
//! reduce + broadcast (the NVLink stand-in: on a real server this is an
//! NCCL reduce to a leader GPU and a broadcast back), and the leader runs
//! the inter-server OmniReduce AllReduce. [`IntraNode`] provides the
//! shared-memory layer; [`hierarchical_allreduce`] composes the two.

use std::sync::{Arc, Barrier};

use parking_lot::Mutex;

use omnireduce_tensor::Tensor;

/// Shared state of one server's local reduction group.
pub struct IntraNode {
    barrier: Barrier,
    /// Local reduction accumulator (leader reads it, everyone adds).
    acc: Mutex<Option<Tensor>>,
    /// Globally-aggregated result broadcast back to local ranks.
    result: Mutex<Option<Tensor>>,
    size: usize,
}

impl IntraNode {
    /// Creates the group for `size` local ranks; clone the `Arc` to each.
    pub fn new(size: usize) -> Arc<Self> {
        assert!(size >= 1, "need at least one local rank");
        Arc::new(IntraNode {
            barrier: Barrier::new(size),
            acc: Mutex::new(None),
            result: Mutex::new(None),
            size,
        })
    }

    /// Number of local ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Phase 1: every local rank contributes its tensor; returns the
    /// local sum to the leader (`Some`) and `None` to everyone else.
    /// All ranks must call this before anyone proceeds.
    fn reduce(&self, local_rank: usize, tensor: &Tensor) -> Option<Tensor> {
        {
            let mut acc = self.acc.lock();
            match acc.as_mut() {
                None => *acc = Some(tensor.clone()),
                Some(a) => a.add_assign(tensor),
            }
        }
        self.barrier.wait();
        if local_rank == 0 {
            Some(self.acc.lock().take().expect("accumulated"))
        } else {
            None
        }
    }

    /// Phase 2: the leader deposits the globally-reduced tensor; every
    /// rank receives a copy.
    fn broadcast(&self, local_rank: usize, global: Option<Tensor>) -> Tensor {
        if local_rank == 0 {
            *self.result.lock() = Some(global.expect("leader provides result"));
        }
        self.barrier.wait();
        let out = self.result.lock().clone().expect("leader deposited result");
        // Second barrier so the leader doesn't clear/overwrite the slot
        // for a subsequent round before everyone copied it out.
        self.barrier.wait();
        if local_rank == 0 {
            *self.result.lock() = None;
        }
        out
    }
}

/// Runs one hierarchical AllReduce step for a local rank.
///
/// `tensor` is this rank's ("GPU's") contribution; on return it holds the
/// global sum across all ranks of all servers. `inter_node` is invoked on
/// the leader (local rank 0) only, with the server's locally-reduced
/// tensor; it must perform the inter-server AllReduce in place — usually
/// [`crate::worker::OmniWorker::allreduce`].
pub fn hierarchical_allreduce<E>(
    node: &IntraNode,
    local_rank: usize,
    tensor: &mut Tensor,
    inter_node: impl FnOnce(&mut Tensor) -> Result<(), E>,
) -> Result<(), E> {
    let local_sum = node.reduce(local_rank, tensor);
    let global = match local_sum {
        Some(mut sum) => {
            inter_node(&mut sum)?;
            Some(sum)
        }
        None => None,
    };
    *tensor = node.broadcast(local_rank, global);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnireduce_tensor::dense::reference_sum;
    use std::convert::Infallible;
    use std::thread;

    #[test]
    fn intra_node_reduce_broadcast_sums() {
        let node = IntraNode::new(4);
        let inputs: Vec<Tensor> = (0..4)
            .map(|r| Tensor::from_vec(vec![r as f32 + 1.0; 8]))
            .collect();
        let expect = reference_sum(&inputs);
        let mut handles = Vec::new();
        for (r, input) in inputs.into_iter().enumerate() {
            let node = node.clone();
            let expect = expect.clone();
            handles.push(thread::spawn(move || {
                let mut t = input;
                hierarchical_allreduce(&node, r, &mut t, |_global| Ok::<(), Infallible>(()))
                    .unwrap();
                assert!(t.approx_eq(&expect, 1e-5));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn leader_sees_local_sum() {
        let node = IntraNode::new(2);
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![10.0, 20.0]);
        let n0 = node.clone();
        let h = thread::spawn(move || {
            let mut t = a;
            hierarchical_allreduce(&n0, 0, &mut t, |sum| {
                assert_eq!(sum.as_slice(), &[11.0, 22.0]);
                // Leader transform visible to everyone.
                sum.scale(2.0);
                Ok::<(), Infallible>(())
            })
            .unwrap();
            t
        });
        let mut t1 = b;
        hierarchical_allreduce(&node, 1, &mut t1, |_| Ok::<(), Infallible>(())).unwrap();
        let t0 = h.join().unwrap();
        assert_eq!(t0.as_slice(), &[22.0, 44.0]);
        assert_eq!(t1.as_slice(), &[22.0, 44.0]);
    }

    #[test]
    fn multiple_rounds_reuse_group() {
        let node = IntraNode::new(3);
        let mut handles = Vec::new();
        for r in 0..3 {
            let node = node.clone();
            handles.push(thread::spawn(move || {
                for round in 0..5 {
                    let mut t = Tensor::from_vec(vec![(r + round) as f32; 4]);
                    hierarchical_allreduce(&node, r, &mut t, |_| Ok::<(), Infallible>(())).unwrap();
                    let expect = (0..3).map(|x| (x + round) as f32).sum::<f32>();
                    assert_eq!(t[0], expect, "round {round}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn inter_node_error_propagates_to_the_leader() {
        // Single-rank node so no peer is left stranded at the barrier.
        let node = IntraNode::new(1);
        let mut t = Tensor::from_vec(vec![1.0]);
        let err = hierarchical_allreduce(&node, 0, &mut t, |_| Err::<(), &str>("link down"));
        assert_eq!(err, Err("link down"));
    }

    #[test]
    fn broadcast_copies_are_independent() {
        // Each rank owns its copy of the result: mutating one must not
        // leak into another (the result is cloned out of the shared slot).
        let node = IntraNode::new(2);
        let n0 = node.clone();
        let h = thread::spawn(move || {
            let mut t = Tensor::from_vec(vec![1.0, 1.0]);
            hierarchical_allreduce(&n0, 0, &mut t, |_| Ok::<(), Infallible>(())).unwrap();
            t.scale(100.0); // must stay local to rank 0
            t
        });
        let mut t1 = Tensor::from_vec(vec![2.0, 2.0]);
        hierarchical_allreduce(&node, 1, &mut t1, |_| Ok::<(), Infallible>(())).unwrap();
        let t0 = h.join().unwrap();
        assert_eq!(t1.as_slice(), &[3.0, 3.0]);
        assert_eq!(t0.as_slice(), &[300.0, 300.0]);
    }

    #[test]
    fn single_rank_node_is_identity_plus_global() {
        let node = IntraNode::new(1);
        let mut t = Tensor::from_vec(vec![1.0, 2.0]);
        hierarchical_allreduce(&node, 0, &mut t, |sum| {
            sum.scale(3.0);
            Ok::<(), Infallible>(())
        })
        .unwrap();
        assert_eq!(t.as_slice(), &[3.0, 6.0]);
    }
}
