//! Multi-aggregator sharding (§4): block-index round-robin across N
//! parallel aggregator engines, each on its own OS thread.
//!
//! The paper scales aggregation bandwidth by running several aggregator
//! processes and assigning blocks to them round-robin by block index.
//! This reproduction expresses the assignment through the stream
//! geometry: block `b` belongs to stream `(b / w) % T` (width `w`,
//! `T = streams_per_shard × num_aggregators` total streams), and stream
//! `g` belongs to shard `g % num_aggregators`. Because the aggregator
//! count always divides `T`, the composition collapses — with `w = 1`,
//! `shard_of_block(b) = b % num_aggregators`, exactly the paper's
//! round-robin; with Block Fusion the unit of assignment becomes the
//! fused row, preserving the same interleaving at row granularity.
//! [`ShardMap`] makes the mapping first-class and testable.
//!
//! * [`ShardedWorker`] runs Algorithm 1 with **one transport lane and
//!   one set of next-nonzero-block cursors per shard**, instead of one
//!   multiplexed connection. Lanes are polled fairly; per-shard traffic
//!   counters feed the wire-byte differential suite.
//! * [`ShardJoin`] is the explicit completion join: a round finishes
//!   when every shard's streams have finished, and a shard owning no
//!   blocks (possible for short tensors) completes immediately rather
//!   than wedging the round.
//! * [`ShardedAllReduce`] deploys the whole group — N aggregator
//!   engines and M workers on real OS threads — for the lossless and
//!   the Algorithm 2 recovery engines, with optional per-shard fault
//!   plans ([`ShardedChaosMesh`]).
//!
//! **Determinism.** Every block is owned by exactly one shard, and
//! workers write result blocks into disjoint tensor ranges, so
//! cross-shard thread interleaving cannot affect *which* values land
//! where. With [`OmniConfig::deterministic`] each shard reduces every
//! block in worker-id order (§7), so the bits of each block are also
//! interleaving-independent: a sharded run's output is bit-identical to
//! the single-aggregator reference. The conformance suite asserts this
//! across seeded interleavings (DESIGN §10).

use std::thread;
use std::time::Duration;

use omnireduce_tensor::{BlockIdx, NonZeroBitmap, Tensor, INFINITY_BLOCK};
use omnireduce_transport::{
    codec, BufferPool, Entry, FaultPlan, Message, NodeId, Packet, PacketKind, ShardedChannelMesh,
    ShardedChaosMesh, Transport, TransportError,
};

use omnireduce_telemetry::{Counter, FlightEventKind, FlightLane, LaneRole, Telemetry, NO_BLOCK};

use crate::aggregator::{AggregatorStats, OmniAggregator};
use crate::config::OmniConfig;
use crate::error::ProtocolError;
use crate::layout::StreamLayout;
use crate::recovery::{RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker};
use crate::wire::{decode_next, encode_next};
use crate::worker::WorkerStats;

/// How long one lane is polled before rotating while waiting for
/// results (mirrors the bond's fairness slice).
const LANE_POLL: Duration = Duration::from_micros(200);

/// The block → shard assignment induced by the stream geometry.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    layout: StreamLayout,
    num_shards: usize,
}

impl ShardMap {
    /// Builds the map for a config (shard count =
    /// [`OmniConfig::num_aggregators`]).
    pub fn new(cfg: &OmniConfig) -> Self {
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        Self::from_layout(layout, cfg.num_aggregators)
    }

    /// Builds the map from an explicit layout. `num_shards` must divide
    /// the layout's stream count (the config builder guarantees this).
    pub fn from_layout(layout: StreamLayout, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert_eq!(
            layout.total_streams() % num_shards,
            0,
            "shard count must divide the stream count"
        );
        ShardMap { layout, num_shards }
    }

    /// Number of shards (aggregators).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The stream geometry the map derives from.
    pub fn layout(&self) -> &StreamLayout {
        &self.layout
    }

    /// Shard owning stream `g`.
    pub fn shard_of_stream(&self, g: usize) -> usize {
        g % self.num_shards
    }

    /// Shard owning block `b`: round-robin by fused row. With fusion
    /// width 1 this is exactly the paper's `b % num_aggregators`.
    pub fn shard_of_block(&self, b: BlockIdx) -> usize {
        self.shard_of_stream(self.layout.stream_of(b))
    }

    /// The streams shard `s` owns (active or not).
    pub fn streams_of(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(s < self.num_shards, "shard out of range");
        (s..self.layout.total_streams()).step_by(self.num_shards)
    }

    /// Number of *active* streams (streams owning ≥ 1 block) shard `s`
    /// serves. Streams past the end of a short tensor own nothing.
    pub fn active_streams_of(&self, s: usize) -> usize {
        self.streams_of(s)
            .filter(|&g| self.layout.first_block(g, 0).is_some())
            .count()
    }

    /// True when shard `s` owns no blocks at all — its block range is
    /// entirely absent, so it must complete every round immediately.
    pub fn is_empty(&self, s: usize) -> bool {
        self.active_streams_of(s) == 0
    }
}

/// What one stream completion did to the join state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEvent {
    /// The shard the completed stream belongs to.
    pub shard: usize,
    /// This completion finished the shard.
    pub shard_done: bool,
    /// This completion finished the round (every shard done).
    pub round_done: bool,
}

/// Per-shard completion join: tracks how many active streams each shard
/// still owes, and when the whole round is complete.
///
/// A shard with zero active streams is born complete — the empty-shard
/// edge case: the round must not wait for an aggregator that will never
/// send anything.
#[derive(Debug, Clone)]
pub struct ShardJoin {
    map: ShardMap,
    /// Active streams not yet complete, per shard.
    open: Vec<usize>,
    /// Shards with `open > 0`.
    open_shards: usize,
}

impl ShardJoin {
    /// Builds the join for one round over `map`.
    pub fn new(map: ShardMap) -> Self {
        let open: Vec<usize> = (0..map.num_shards())
            .map(|s| map.active_streams_of(s))
            .collect();
        let open_shards = open.iter().filter(|&&n| n > 0).count();
        ShardJoin {
            map,
            open,
            open_shards,
        }
    }

    /// Streams shard `s` still owes this round.
    pub fn open_streams(&self, s: usize) -> usize {
        self.open[s]
    }

    /// True when shard `s` has completed (including born-empty shards).
    pub fn shard_done(&self, s: usize) -> bool {
        self.open[s] == 0
    }

    /// True when every shard has completed.
    pub fn round_done(&self) -> bool {
        self.open_shards == 0
    }

    /// Records stream `g` completing and reports what that did.
    ///
    /// # Panics
    /// Panics when `g`'s shard has no open streams left — a
    /// double-completion is a protocol bug, not a race to paper over.
    pub fn on_stream_complete(&mut self, g: usize) -> JoinEvent {
        let shard = self.map.shard_of_stream(g);
        assert!(
            self.open[shard] > 0,
            "stream {g} completed but shard {shard} has no open streams"
        );
        self.open[shard] -= 1;
        let shard_done = self.open[shard] == 0;
        if shard_done {
            self.open_shards -= 1;
        }
        JoinEvent {
            shard,
            shard_done,
            round_done: self.open_shards == 0,
        }
    }
}

/// Per-column protocol state within one stream (the per-shard
/// next-nonzero-block cursor lives in `my_next`).
struct ColState {
    my_next: BlockIdx,
    done: bool,
}

/// Per-stream protocol state.
struct StreamState {
    cols: Vec<Option<ColState>>,
    remaining: usize,
}

/// Algorithm 1 worker with one transport lane per aggregator shard.
///
/// Protocol-identical to [`crate::worker::OmniWorker`] — the same
/// packets flow to the same aggregators — but the transport is split:
/// stream `g`'s traffic rides lane `shard_of_stream(g)`, receives poll
/// the lanes fairly, and traffic counters are kept **per shard** so the
/// differential suite can check each shard's wire bytes independently.
pub struct ShardedWorker<T: Transport> {
    lanes: Vec<T>,
    cfg: OmniConfig,
    layout: StreamLayout,
    map: ShardMap,
    wid: u16,
    /// Per-shard traffic counters; `stats()` aggregates them.
    shard_stats: Vec<WorkerStats>,
    rounds: u64,
    /// Fair-poll rotation over lanes.
    cursor: usize,
    pool: BufferPool,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// `core.shard.shutdown_errors`: goodbye sends that failed during
    /// wind-down (attempted on every lane regardless).
    shutdown_errors: Counter,
}

impl<T: Transport> ShardedWorker<T> {
    /// Creates the engine from one lane per shard (index = shard). All
    /// lanes must agree on the local worker id.
    pub fn new(lanes: Vec<T>, cfg: OmniConfig) -> Self {
        cfg.validate();
        assert_eq!(
            lanes.len(),
            cfg.num_aggregators,
            "one lane per aggregator shard"
        );
        let wid = lanes[0].local_id().0;
        for l in &lanes {
            assert_eq!(l.local_id().0, wid, "lanes must share the worker id");
        }
        assert!(
            (wid as usize) < cfg.num_workers,
            "transport node {wid} is not a worker"
        );
        let map = ShardMap::new(&cfg);
        let layout = *map.layout();
        let pool = BufferPool::for_block_size(cfg.block_size);
        ShardedWorker {
            shard_stats: vec![WorkerStats::default(); lanes.len()],
            lanes,
            cfg,
            layout,
            map,
            wid,
            rounds: 0,
            cursor: 0,
            pool,
            flight: FlightLane::disabled(),
            shutdown_errors: Counter::detached(),
        }
    }

    /// Like [`ShardedWorker::new`], but records protocol flight events
    /// on a `worker{wid}` lane when `telemetry`'s flight recorder is
    /// enabled. Events carry the destination shard, so the reconstructor
    /// attributes wire time per shard.
    pub fn with_telemetry(lanes: Vec<T>, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(lanes, cfg);
        w.flight = telemetry
            .flight()
            .lane(&format!("worker{}", w.wid), LaneRole::Worker, w.wid);
        w.shutdown_errors = telemetry.counter("core.shard.shutdown_errors");
        w
    }

    /// This worker's id.
    pub fn wid(&self) -> u16 {
        self.wid
    }

    /// Aggregate traffic counters across all shards.
    pub fn stats(&self) -> WorkerStats {
        let mut total = WorkerStats {
            rounds_completed: self.rounds,
            ..WorkerStats::default()
        };
        for s in &self.shard_stats {
            total.packets_sent += s.packets_sent;
            total.bytes_sent += s.bytes_sent;
            total.blocks_sent += s.blocks_sent;
            total.results_received += s.results_received;
        }
        total
    }

    /// Per-shard traffic counters (index = shard).
    pub fn shard_stats(&self) -> &[WorkerStats] {
        &self.shard_stats
    }

    /// Wire bytes sent to each shard (index = shard).
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.shard_stats.iter().map(|s| s.bytes_sent).collect()
    }

    /// Runs one AllReduce: on return, `tensor` holds the element-wise
    /// sum across all workers, joined across every shard.
    pub fn allreduce(&mut self, tensor: &mut Tensor) -> Result<(), TransportError> {
        assert_eq!(
            tensor.len(),
            self.cfg.tensor_len,
            "tensor length does not match group config"
        );
        let round = self.rounds as u32;
        self.flight
            .record(FlightEventKind::RoundStart, round, NO_BLOCK, 0, self.wid, 0);
        let encode_t0 = self.flight.now_ns();
        let bitmap = NonZeroBitmap::build(tensor, self.cfg.block_spec());
        let skip = self.cfg.skip_zero_blocks;
        let layout = self.layout;

        let mut streams: Vec<Option<StreamState>> =
            (0..layout.total_streams()).map(|_| None).collect();
        let mut join = ShardJoin::new(self.map);
        for g in layout.active_streams() {
            let mut cols: Vec<Option<ColState>> = Vec::with_capacity(layout.width());
            let mut entries = self.pool.checkout_entries();
            let mut remaining = 0usize;
            for c in 0..layout.width() {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&bitmap, g, c, Some(b0), skip);
                        let mut data = self.pool.checkout_f32();
                        data.extend_from_slice(&tensor[layout.block_range(b0)]);
                        entries.push(Entry::data(
                            b0,
                            encode_next(my_next, c, layout.width()),
                            data,
                        ));
                        cols.push(Some(ColState {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            self.send_data(g, entries)?;
            streams[g] = Some(StreamState { cols, remaining });
        }
        self.flight.record(
            FlightEventKind::Encode,
            round,
            NO_BLOCK,
            0,
            self.wid,
            self.flight.now_ns().saturating_sub(encode_t0),
        );

        while !join.round_done() {
            let (shard, msg) = self.poll_lanes()?;
            let packet = match msg {
                Message::Block(p) if p.kind == PacketKind::Result => p,
                other => panic!("sharded worker: unexpected message {:?}", other.tag()),
            };
            self.shard_stats[shard].results_received += 1;
            self.flight.record(
                FlightEventKind::ResultRx,
                round,
                NO_BLOCK,
                shard as u16,
                self.wid,
                packet.entries.len() as u64,
            );
            let g = packet.slot as usize;
            debug_assert_eq!(
                self.map.shard_of_stream(g),
                shard,
                "result for stream {g} arrived on the wrong lane"
            );
            let state = streams[g].as_mut().expect("result for unknown stream");
            let mut reply = self.pool.checkout_entries();
            for entry in &packet.entries {
                let (col, requested) = decode_next(entry.next, layout.width());
                if !entry.data.is_empty() {
                    tensor.copy_slice_at(layout.block_range(entry.block).start, &entry.data);
                }
                let cs = state.cols[col]
                    .as_mut()
                    .expect("result entry for invalid column");
                if cs.done {
                    continue;
                }
                if requested == INFINITY_BLOCK {
                    cs.done = true;
                    state.remaining -= 1;
                    continue;
                }
                if cs.my_next == requested {
                    let new_next = layout.next_block(&bitmap, g, col, Some(requested), skip);
                    let mut data = self.pool.checkout_f32();
                    data.extend_from_slice(&tensor[layout.block_range(requested)]);
                    reply.push(Entry::data(
                        requested,
                        encode_next(new_next, col, layout.width()),
                        data,
                    ));
                    cs.my_next = new_next;
                }
            }
            if !reply.is_empty() {
                self.send_data(g, reply)?;
            } else {
                self.pool.checkin_entries(reply);
            }
            if state.remaining == 0 {
                streams[g] = None;
                join.on_stream_complete(g);
            }
        }
        self.rounds += 1;
        for s in &mut self.shard_stats {
            s.rounds_completed += 1;
        }
        self.flight
            .record(FlightEventKind::RoundEnd, round, NO_BLOCK, 0, self.wid, 0);
        Ok(())
    }

    /// One fair polling sweep over the lanes, blocking until a message
    /// arrives on any of them.
    fn poll_lanes(&mut self) -> Result<(usize, Message), TransportError> {
        let n = self.lanes.len();
        loop {
            for i in 0..n {
                let lane = (self.cursor + i) % n;
                if let Some((_, msg)) = self.lanes[lane].recv_timeout(LANE_POLL)? {
                    self.cursor = (lane + 1) % n;
                    return Ok((lane, msg));
                }
            }
        }
    }

    fn send_data(&mut self, stream: usize, entries: Vec<Entry>) -> Result<(), TransportError> {
        let blocks = entries.iter().filter(|e| !e.is_ack()).count() as u64;
        let msg = Message::Block(Packet {
            kind: PacketKind::Data,
            ver: 0,
            slot: stream as u16,
            stream: self.cfg.stream_id,
            wid: self.wid,
            epoch: 0,
            entries,
        });
        let wire_bytes = codec::encoded_len(&msg) as u64;
        let shard = self.map.shard_of_stream(stream);
        let st = &mut self.shard_stats[shard];
        st.packets_sent += 1;
        st.blocks_sent += blocks;
        st.bytes_sent += wire_bytes;
        // One flight event per fused message, keyed by the first entry's
        // block — mirrored by the aggregator's PacketRx for pairing.
        if let Message::Block(p) = &msg {
            if let Some(first) = p.entries.first() {
                self.flight.record(
                    FlightEventKind::PacketTx,
                    self.rounds as u32,
                    first.block as u64,
                    shard as u16,
                    self.wid,
                    wire_bytes,
                );
            }
        }
        let sent = self.lanes[shard].send(NodeId(self.cfg.aggregator_node(shard)), &msg);
        self.pool.recycle_message(msg);
        sent
    }

    /// Says goodbye to every shard's aggregator on its own lane.
    ///
    /// Wind-down is symmetric across lanes: a dead shard must not keep
    /// the goodbye from reaching the surviving shards, so every lane is
    /// attempted even after a failure. Failed goodbyes are counted in
    /// `core.shard.shutdown_errors` and the first error is returned
    /// once all lanes have been tried.
    pub fn shutdown(self) -> Result<(), TransportError> {
        let mut first_err = None;
        for (s, lane) in self.lanes.iter().enumerate() {
            if let Err(e) = lane.send(NodeId(self.cfg.aggregator_node(s)), &Message::Shutdown) {
                self.shutdown_errors.inc();
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Result of a sharded lossless deployment.
pub struct ShardedRunResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker aggregate traffic counters.
    pub stats: Vec<WorkerStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to shard `s`.
    pub shard_bytes: Vec<Vec<u64>>,
    /// Per-shard aggregator counters (index = shard).
    pub agg_stats: Vec<AggregatorStats>,
}

/// Result of a sharded recovery deployment on a healthy mesh.
pub struct ShardedRecoveryResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker recovery counters.
    pub stats: Vec<RecoveryStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to shard `s`.
    pub shard_bytes: Vec<Vec<u64>>,
    /// Per-shard recovery-aggregator counters.
    pub agg_stats: Vec<RecoveryAggregatorStats>,
}

/// One worker's outcome under a sharded chaos deployment.
pub struct ShardedChaosWorker {
    /// `Ok` when every round completed; typed protocol error otherwise.
    pub result: Result<(), ProtocolError>,
    /// Recovery counters up to completion or failure.
    pub stats: RecoveryStats,
    /// Wire bytes sent per shard.
    pub shard_bytes: Vec<u64>,
    /// The tensor after the last attempted round.
    pub output: Tensor,
    /// Outcome of the wind-down goodbye fan-out (best effort on a
    /// faulted fabric, but never silently discarded).
    pub shutdown: Result<(), TransportError>,
}

/// Outcome of a sharded recovery deployment under per-shard fault plans.
pub struct ShardedChaosOutcome {
    /// Per-worker outcomes (no panics — failures are data).
    pub workers: Vec<ShardedChaosWorker>,
    /// Per-shard aggregator results and counters.
    pub aggs: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
    /// Per-shard hot-standby results and counters (empty unless
    /// [`OmniConfig::hot_standby`]).
    pub standbys: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
}

/// Deploys sharded groups: N aggregator engines + M workers, each on
/// its own OS thread, over per-shard channel meshes.
pub struct ShardedAllReduce;

impl ShardedAllReduce {
    /// Runs `inputs[w]` rounds of the **lossless** engine over
    /// `cfg.num_aggregators` shards.
    ///
    /// # Panics
    /// Panics when shapes don't match the config or any thread fails.
    pub fn run(cfg: &OmniConfig, inputs: Vec<Vec<Tensor>>) -> ShardedRunResult {
        let mut mesh = ShardedChannelMesh::new(cfg.num_workers, cfg.num_aggregators);
        let lanes = (0..cfg.num_workers).map(|w| mesh.worker_lanes(w)).collect();
        let aggs = (0..cfg.num_aggregators)
            .map(|s| mesh.aggregator_endpoint(s))
            .collect();
        Self::run_lossless_over(cfg, inputs, lanes, aggs, None)
    }

    /// Like [`ShardedAllReduce::run`], but attaches every engine to
    /// `telemetry`, so runs record flight events (and registry counters)
    /// for offline attribution.
    pub fn run_traced(
        cfg: &OmniConfig,
        inputs: Vec<Vec<Tensor>>,
        telemetry: &Telemetry,
    ) -> ShardedRunResult {
        let mut mesh = ShardedChannelMesh::new(cfg.num_workers, cfg.num_aggregators);
        let lanes = (0..cfg.num_workers).map(|w| mesh.worker_lanes(w)).collect();
        let aggs = (0..cfg.num_aggregators)
            .map(|s| mesh.aggregator_endpoint(s))
            .collect();
        Self::run_lossless_over(cfg, inputs, lanes, aggs, Some(telemetry))
    }

    /// Like [`ShardedAllReduce::run`], but wraps shard `s`'s mesh in
    /// `plans[s]`. Intended for *reliability-preserving* plans
    /// (stragglers, delays): the lossless engine has no retransmission,
    /// so plans that drop data packets will wedge it.
    pub fn run_with_plans(
        cfg: &OmniConfig,
        plans: &[FaultPlan],
        inputs: Vec<Vec<Tensor>>,
    ) -> ShardedRunResult {
        assert_eq!(plans.len(), cfg.num_aggregators, "one plan per shard");
        let mut mesh = ShardedChaosMesh::wrap(cfg.num_workers, plans);
        let lanes = (0..cfg.num_workers).map(|w| mesh.worker_lanes(w)).collect();
        let aggs = (0..cfg.num_aggregators)
            .map(|s| mesh.aggregator_endpoint(s))
            .collect();
        Self::run_lossless_over(cfg, inputs, lanes, aggs, None)
    }

    fn run_lossless_over<T: Transport + 'static>(
        cfg: &OmniConfig,
        inputs: Vec<Vec<Tensor>>,
        worker_lanes: Vec<Vec<T>>,
        agg_endpoints: Vec<T>,
        telemetry: Option<&Telemetry>,
    ) -> ShardedRunResult {
        assert_eq!(inputs.len(), cfg.num_workers, "one input set per worker");
        let rounds = inputs[0].len();
        for i in &inputs {
            assert_eq!(i.len(), rounds, "same round count per worker");
        }

        let mut agg_handles = Vec::new();
        for (s, t) in agg_endpoints.into_iter().enumerate() {
            let cfg = cfg.clone();
            let telemetry = telemetry.cloned();
            agg_handles.push(
                thread::Builder::new()
                    .name(format!("shard{s}-aggregator"))
                    .spawn(move || {
                        let mut agg = match &telemetry {
                            Some(tl) => OmniAggregator::with_telemetry(t, cfg, tl),
                            None => OmniAggregator::new(t, cfg),
                        };
                        agg.run().expect("aggregator failed");
                        agg.stats
                    })
                    .expect("failed to spawn aggregator thread"),
            );
        }

        let mut worker_handles = Vec::new();
        for (w, (lanes, tensors)) in worker_lanes.into_iter().zip(inputs).enumerate() {
            let cfg = cfg.clone();
            let telemetry = telemetry.cloned();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("sharded-worker{w}"))
                    .spawn(move || {
                        let mut worker = match &telemetry {
                            Some(tl) => ShardedWorker::with_telemetry(lanes, cfg, tl),
                            None => ShardedWorker::new(lanes, cfg),
                        };
                        let mut outs = Vec::with_capacity(tensors.len());
                        let mut failure = None;
                        for mut tensor in tensors {
                            match worker.allreduce(&mut tensor) {
                                Ok(()) => outs.push(tensor),
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                        let stats = worker.stats();
                        let shard_bytes = worker.shard_bytes();
                        // Goodbyes go out even after a failed round: an
                        // aborting worker must not keep the *surviving*
                        // shards (or, through the tenant service,
                        // another tenant's lanes) waiting forever for a
                        // wind-down that would never come.
                        let shutdown = worker.shutdown();
                        if let Some(e) = failure {
                            panic!("allreduce failed: {e:?}");
                        }
                        shutdown.expect("shutdown failed");
                        (outs, stats, shard_bytes)
                    })
                    .expect("failed to spawn worker thread"),
            );
        }

        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        let mut shard_bytes = Vec::new();
        for h in worker_handles {
            let (o, s, b) = h.join().expect("worker thread panicked");
            outputs.push(o);
            stats.push(s);
            shard_bytes.push(b);
        }
        let agg_stats = agg_handles
            .into_iter()
            .map(|h| h.join().expect("aggregator thread panicked"))
            .collect();
        ShardedRunResult {
            outputs,
            stats,
            shard_bytes,
            agg_stats,
        }
    }

    /// Runs the **Algorithm 2 recovery** engine sharded: every worker
    /// holds per-shard endpoints bonded by
    /// [`omnireduce_transport::ShardBond`], every shard runs its own
    /// [`RecoveryAggregator`] thread.
    ///
    /// # Panics
    /// Panics when any worker fails — use
    /// [`ShardedAllReduce::run_recovery_chaos`] when failure is the
    /// point.
    pub fn run_recovery(cfg: &OmniConfig, inputs: Vec<Vec<Tensor>>) -> ShardedRecoveryResult {
        assert_eq!(inputs.len(), cfg.num_workers, "one input set per worker");
        let mut mesh = ShardedChannelMesh::new(cfg.num_workers, cfg.num_aggregators);

        let mut agg_handles = Vec::new();
        for s in 0..cfg.num_aggregators {
            let t = mesh.aggregator_endpoint(s);
            let cfg = cfg.clone();
            agg_handles.push(
                thread::Builder::new()
                    .name(format!("shard{s}-aggregator"))
                    .spawn(move || {
                        let mut agg = RecoveryAggregator::new(t, cfg);
                        agg.run().expect("aggregator failed");
                        agg.stats
                    })
                    .expect("failed to spawn aggregator thread"),
            );
        }

        let mut worker_handles = Vec::new();
        for (w, tensors) in inputs.into_iter().enumerate() {
            let bond = mesh.worker_bond(w);
            let cfg = cfg.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("sharded-worker{w}"))
                    .spawn(move || {
                        let mut worker = RecoveryWorker::new(bond, cfg);
                        let mut outs = Vec::with_capacity(tensors.len());
                        let mut failure = None;
                        for mut tensor in tensors {
                            match worker.allreduce(&mut tensor) {
                                Ok(()) => outs.push(tensor),
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                        let stats = worker.stats();
                        let shard_bytes = worker.shard_bytes().to_vec();
                        // Same wind-down discipline as the lossless
                        // harness: goodbyes before the panic.
                        let shutdown = worker.shutdown();
                        if let Some(e) = failure {
                            panic!("allreduce failed: {e:?}");
                        }
                        shutdown.expect("shutdown failed");
                        (outs, stats, shard_bytes)
                    })
                    .expect("failed to spawn worker thread"),
            );
        }

        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        let mut shard_bytes = Vec::new();
        for h in worker_handles {
            let (o, s, b) = h.join().expect("worker thread panicked");
            outputs.push(o);
            stats.push(s);
            shard_bytes.push(b);
        }
        let agg_stats = agg_handles
            .into_iter()
            .map(|h| h.join().expect("aggregator thread panicked"))
            .collect();
        ShardedRecoveryResult {
            outputs,
            stats,
            shard_bytes,
            agg_stats,
        }
    }

    /// Runs one round of the recovery engine with shard `s`'s mesh
    /// wrapped in `plans[s]`, collecting per-thread outcomes instead of
    /// panicking: per-shard drops, a straggling shard, or a crashed
    /// non-primary aggregator all surface as data.
    ///
    /// A crashed shard's endpoint is kept alive until every worker has
    /// been joined, so the dead aggregator looks like a black hole (UDP
    /// semantics), not a closed connection.
    pub fn run_recovery_chaos(
        cfg: &OmniConfig,
        plans: &[FaultPlan],
        inputs: &[Tensor],
        telemetry: Option<&Telemetry>,
    ) -> ShardedChaosOutcome {
        assert_eq!(plans.len(), cfg.num_aggregators, "one plan per shard");
        assert_eq!(inputs.len(), cfg.num_workers, "one input per worker");
        let mut mesh = if cfg.hot_standby {
            ShardedChaosMesh::wrap_with_standby(cfg.num_workers, plans, telemetry)
        } else {
            match telemetry {
                Some(t) => ShardedChaosMesh::wrap_with_telemetry(cfg.num_workers, plans, t),
                None => ShardedChaosMesh::wrap(cfg.num_workers, plans),
            }
        };

        let mut agg_handles = Vec::new();
        for s in 0..cfg.num_aggregators {
            let t = mesh.aggregator_endpoint(s);
            let cfg = cfg.clone();
            let telemetry = telemetry.cloned();
            agg_handles.push(
                thread::Builder::new()
                    .name(format!("shard{s}-aggregator"))
                    .spawn(move || {
                        let mut agg = match &telemetry {
                            Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                            None => RecoveryAggregator::new(t, cfg),
                        };
                        let res = agg.run();
                        let stats = agg.stats;
                        // Keep `agg` (and its endpoint) alive inside the
                        // handle so a crashed shard black-holes instead
                        // of closing the channel under the workers.
                        (res, stats, agg)
                    })
                    .expect("failed to spawn aggregator thread"),
            );
        }

        // Hot standbys: same engine, standby node ids (`W + A + s`). The
        // constructor detects the role from the node id; the engine
        // stays passive until workers fail over to it.
        let mut standby_handles = Vec::new();
        if cfg.hot_standby {
            for s in 0..cfg.num_aggregators {
                let t = mesh.standby_endpoint(s);
                let cfg = cfg.clone();
                let telemetry = telemetry.cloned();
                standby_handles.push(
                    thread::Builder::new()
                        .name(format!("shard{s}-standby"))
                        .spawn(move || {
                            let mut agg = match &telemetry {
                                Some(tl) => RecoveryAggregator::with_telemetry(t, cfg, tl),
                                None => RecoveryAggregator::new(t, cfg),
                            };
                            let res = agg.run();
                            let stats = agg.stats;
                            (res, stats, agg)
                        })
                        .expect("failed to spawn standby thread"),
                );
            }
        }

        let mut worker_handles = Vec::new();
        for (w, tensor) in inputs.iter().enumerate() {
            let bond = mesh.worker_bond(w);
            let cfg = cfg.clone();
            let telemetry = telemetry.cloned();
            let mut tensor = tensor.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("sharded-worker{w}"))
                    .spawn(move || {
                        let mut worker = match &telemetry {
                            Some(tl) => RecoveryWorker::with_telemetry(bond, cfg, tl),
                            None => RecoveryWorker::new(bond, cfg),
                        };
                        let result = worker.allreduce(&mut tensor);
                        let stats = worker.stats();
                        let shard_bytes = worker.shard_bytes().to_vec();
                        // Say goodbye even after a failure (best effort:
                        // parts of the fabric may be gone). A worker that
                        // gave up on one shard must still let *surviving*
                        // shards wind down — a shard whose round already
                        // completed is not waiting on anyone, so it would
                        // otherwise idle forever for this goodbye.
                        let shutdown = worker.shutdown();
                        ShardedChaosWorker {
                            result,
                            stats,
                            shard_bytes,
                            output: tensor,
                            shutdown,
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }

        let workers: Vec<ShardedChaosWorker> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let aggs = agg_handles
            .into_iter()
            .map(|h| {
                let (res, stats, agg) = h.join().expect("aggregator thread panicked");
                drop(agg);
                (res, stats)
            })
            .collect();
        let standbys = standby_handles
            .into_iter()
            .map(|h| {
                let (res, stats, agg) = h.join().expect("standby thread panicked");
                drop(agg);
                (res, stats)
            })
            .collect();
        ShardedChaosOutcome {
            workers,
            aggs,
            standbys,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, elements: usize, shards: usize) -> OmniConfig {
        OmniConfig::new(workers, elements)
            .with_block_size(4)
            .with_streams(2)
            .with_aggregators(shards)
    }

    #[test]
    fn shard_of_block_is_round_robin_when_width_is_one() {
        // Fusion width 1: the stream geometry collapses to the paper's
        // `shard = block % num_aggregators` (§4).
        for shards in [1usize, 2, 4] {
            let c = OmniConfig::new(2, 256)
                .with_block_size(4)
                .with_fusion(1)
                .with_streams(2)
                .with_aggregators(shards);
            let map = ShardMap::new(&c);
            for b in 0..map.layout().nblocks() as u32 {
                assert_eq!(
                    map.shard_of_block(b),
                    b as usize % shards,
                    "block {b} with {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_of_block_matches_stream_ownership_under_fusion() {
        let c = OmniConfig::new(2, 512)
            .with_block_size(4)
            .with_fusion(4)
            .with_streams(2)
            .with_aggregators(2);
        let map = ShardMap::new(&c);
        for b in 0..map.layout().nblocks() as u32 {
            let g = map.layout().stream_of(b);
            assert_eq!(map.shard_of_block(b), map.shard_of_stream(g));
        }
    }

    #[test]
    fn join_completes_round_only_after_every_shard() {
        let c = cfg(2, 256, 2);
        let map = ShardMap::new(&c);
        let mut join = ShardJoin::new(map);
        assert!(!join.round_done());
        let active: Vec<usize> = map.layout().active_streams().collect();
        for (i, &g) in active.iter().enumerate() {
            let ev = join.on_stream_complete(g);
            assert_eq!(ev.round_done, i + 1 == active.len());
        }
        assert!(join.round_done());
    }

    #[test]
    fn join_reports_empty_shards_complete_at_birth() {
        // 2 shards × 2 streams/shard × width 1 × block 4 = rows of 4
        // blocks; a 17-element tensor has 5 blocks → streams 0..4 get
        // one block each via round-robin... shrink further: 1 block
        // total → only stream 0 (shard 0) active; shard 1 empty.
        let c = OmniConfig::new(2, 4)
            .with_block_size(4)
            .with_fusion(1)
            .with_streams(1)
            .with_aggregators(2);
        let map = ShardMap::new(&c);
        assert!(!map.is_empty(0));
        assert!(map.is_empty(1));
        let mut join = ShardJoin::new(map);
        assert!(join.shard_done(1), "empty shard must be born complete");
        assert!(!join.round_done());
        let ev = join.on_stream_complete(0);
        assert!(ev.shard_done && ev.round_done);
    }

    #[test]
    #[should_panic(expected = "no open streams")]
    fn join_panics_on_double_completion() {
        let c = cfg(2, 256, 2);
        let map = ShardMap::new(&c);
        let mut join = ShardJoin::new(map);
        let g = map.layout().active_streams().next().unwrap();
        let n = map.active_streams_of(map.shard_of_stream(g));
        for _ in 0..n {
            join.on_stream_complete(g);
        }
        join.on_stream_complete(g); // one too many
    }

    #[test]
    fn sharded_group_reduces_across_threads() {
        let c = cfg(3, 256, 2);
        let inputs: Vec<Vec<Tensor>> = (0..3)
            .map(|w| vec![Tensor::from_vec(vec![w as f32 + 1.0; 256])])
            .collect();
        let res = ShardedAllReduce::run(&c, inputs);
        for outs in &res.outputs {
            for v in outs[0].as_slice() {
                assert_eq!(*v, 6.0);
            }
        }
        // Every shard served traffic and completed the round.
        for (s, a) in res.agg_stats.iter().enumerate() {
            assert!(a.packets > 0, "shard {s} saw no packets");
            assert_eq!(a.rounds_completed, 1, "shard {s} rounds");
        }
        // Per-shard bytes decompose the aggregate counter.
        for (w, st) in res.stats.iter().enumerate() {
            let per_shard: u64 = res.shard_bytes[w].iter().sum();
            assert_eq!(per_shard, st.bytes_sent, "worker {w} byte split");
        }
    }
}
