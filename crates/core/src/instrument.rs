//! Internal glue between protocol engines and `omnireduce-telemetry`.
//!
//! Engines keep their plain-old-data stats structs (per-instance counts,
//! cheap to copy out of threads) and additionally mirror increments into
//! fleet-wide registry counters when constructed with a shared
//! [`Telemetry`] handle. Engines built without one get
//! [`Counter::detached`] handles, so the hot-path increments cost a
//! single relaxed atomic either way.
//!
//! [`EngineTrace`] is the span side of the same story: a per-engine trace
//! track plus a wall clock, recording nothing unless the registry's
//! recorder is enabled.

use omnireduce_telemetry::{Clock, ClockDomain, Telemetry, TrackId, WallClock};

/// A per-engine timeline row in the trace recorder.
///
/// Disabled instances are free: `start` returns 0 and `span`/`instant`
/// are no-ops without touching any shared state.
pub(crate) struct EngineTrace {
    inner: Option<(Telemetry, TrackId, WallClock)>,
}

impl EngineTrace {
    /// A trace handle that records nothing.
    pub fn disabled() -> Self {
        EngineTrace { inner: None }
    }

    /// Registers a track named `track` on `telemetry`'s recorder.
    ///
    /// The track is unique (suffixed on name collision): sharded runs
    /// spawn many engines against one registry, and sharing a row would
    /// interleave unrelated engines' spans. The clock is the registry's
    /// shared wall clock, so spans from different engines — and flight
    /// events — land on one comparable timeline.
    pub fn new(telemetry: &Telemetry, track: &str) -> Self {
        let id = telemetry.trace().unique_track(track, ClockDomain::Wall);
        EngineTrace {
            inner: Some((telemetry.clone(), id, telemetry.wall_clock())),
        }
    }

    /// Timestamp for a later [`EngineTrace::span`] call.
    pub fn start(&self) -> u64 {
        match &self.inner {
            Some((_, _, clock)) => clock.now_ns(),
            None => 0,
        }
    }

    /// Records a span from `start_ns` (a [`EngineTrace::start`] result)
    /// to now.
    pub fn span(&self, name: &'static str, start_ns: u64) {
        if let Some((telemetry, track, clock)) = &self.inner {
            telemetry
                .trace()
                .span(*track, name, start_ns, clock.now_ns());
        }
    }

    /// Records a point event at the current time.
    #[allow(dead_code)]
    pub fn instant(&self, name: &'static str) {
        if let Some((telemetry, track, clock)) = &self.inner {
            telemetry.trace().instant(*track, name, clock.now_ns());
        }
    }
}
