//! The OmniReduce worker engine for reliable transports (Algorithm 1 with
//! Block Fusion and parallel streams).
//!
//! One `allreduce` call runs the full protocol for one tensor:
//!
//! 1. build the non-zero block bitmap (the paper does this on the GPU,
//!    Appendix B.1);
//! 2. for every stream it owns data in, send the stream's first row of
//!    blocks unconditionally, each entry carrying this worker's next
//!    non-zero block in that column;
//! 3. loop: on each result packet, store the aggregated blocks into the
//!    local tensor, and for every column whose newly requested block
//!    matches this worker's next non-zero block, send it (with the
//!    subsequent next); a stream finishes when every column's request
//!    is ∞.
//!
//! All streams are outstanding concurrently — that is the fine-grained
//! pipelining of §3.1.1; a single protocol thread multiplexes them off
//! one receive queue.

use omnireduce_telemetry::{Counter, FlightEventKind, FlightLane, LaneRole, Telemetry, NO_BLOCK};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, Tensor, INFINITY_BLOCK};
use omnireduce_transport::{
    codec, BufferPool, Entry, Message, NodeId, Packet, PacketKind, Transport, TransportError,
};

use crate::config::OmniConfig;
use crate::instrument::EngineTrace;
use crate::layout::StreamLayout;
use crate::wire::{decode_next, encode_next};

/// Traffic counters for one worker, used by tests and by the Table 1
/// "OmniReduce communication volume" reproduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Data packets sent to aggregators.
    pub packets_sent: u64,
    /// Wire bytes sent (codec-encoded sizes).
    pub bytes_sent: u64,
    /// Blocks transmitted (data entries).
    pub blocks_sent: u64,
    /// Result packets received.
    pub results_received: u64,
    /// AllReduce rounds driven to completion.
    pub rounds_completed: u64,
}

/// Fleet-wide `core.worker.*` registry mirrors of [`WorkerStats`]
/// (detached no-ops unless built via [`OmniWorker::with_telemetry`]).
struct WorkerCounters {
    packets_sent: Counter,
    bytes_sent: Counter,
    blocks_sent: Counter,
    results_received: Counter,
    rounds_completed: Counter,
}

impl WorkerCounters {
    fn detached() -> Self {
        WorkerCounters {
            packets_sent: Counter::detached(),
            bytes_sent: Counter::detached(),
            blocks_sent: Counter::detached(),
            results_received: Counter::detached(),
            rounds_completed: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        WorkerCounters {
            packets_sent: telemetry.counter("core.worker.packets_sent"),
            bytes_sent: telemetry.counter("core.worker.bytes_sent"),
            blocks_sent: telemetry.counter("core.worker.blocks_sent"),
            results_received: telemetry.counter("core.worker.results_received"),
            rounds_completed: telemetry.counter("core.worker.rounds_completed"),
        }
    }
}

/// Per-column protocol state within one stream.
struct ColState {
    /// This worker's next untransmitted non-zero block in the column.
    my_next: BlockIdx,
    /// The column finished (aggregator requested ∞).
    done: bool,
}

/// Per-stream protocol state.
struct StreamState {
    cols: Vec<Option<ColState>>, // None for invalid (past-end) columns
    remaining: usize,            // active columns not yet done
}

/// The worker engine. Generic over the transport, so the same code runs
/// over in-process channels, TCP sockets, or tests' mocks.
pub struct OmniWorker<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: u16,
    stats: WorkerStats,
    /// Wire bytes sent per destination shard (index = shard); sums to
    /// `stats.bytes_sent`. Multi-aggregator deployments account each
    /// shard's traffic independently (DESIGN §10).
    shard_bytes: Vec<u64>,
    counters: WorkerCounters,
    trace: EngineTrace,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// Freelists for outgoing packet buffers: each data entry's payload
    /// is checked out here instead of `to_vec()`-ing the block, and
    /// returns after the send (DESIGN §9).
    pool: BufferPool,
}

impl<T: Transport> OmniWorker<T> {
    /// Creates the engine for worker `wid` (must equal the transport's
    /// node id).
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let wid = transport.local_id().0;
        assert!(
            (wid as usize) < cfg.num_workers,
            "transport node {wid} is not a worker"
        );
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let pool = BufferPool::for_block_size(cfg.block_size);
        let shard_bytes = vec![0; cfg.num_aggregators];
        OmniWorker {
            transport,
            cfg,
            layout,
            wid,
            stats: WorkerStats::default(),
            shard_bytes,
            counters: WorkerCounters::detached(),
            trace: EngineTrace::disabled(),
            flight: FlightLane::disabled(),
            pool,
        }
    }

    /// Like [`OmniWorker::new`], but mirrors traffic counters into
    /// `telemetry`'s `core.worker.*` counters and records an
    /// `allreduce` span per round on a `worker{wid}` track when the
    /// registry's trace recorder is enabled.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(transport, cfg);
        w.counters = WorkerCounters::registered(telemetry);
        w.trace = EngineTrace::new(telemetry, &format!("worker{}", w.wid));
        w.flight = telemetry
            .flight()
            .lane(&format!("worker{}", w.wid), LaneRole::Worker, w.wid);
        w.pool = BufferPool::for_block_size(w.cfg.block_size)
            .with_telemetry(&format!("worker{}", w.wid), telemetry);
        w
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }

    /// Wire bytes sent to each aggregator shard (index = shard). Sums
    /// to [`WorkerStats::bytes_sent`].
    pub fn shard_bytes(&self) -> &[u64] {
        &self.shard_bytes
    }

    /// This worker's id.
    pub fn wid(&self) -> u16 {
        self.wid
    }

    /// Runs one AllReduce: on return, `tensor` holds the element-wise sum
    /// across all workers.
    pub fn allreduce(&mut self, tensor: &mut Tensor) -> Result<(), TransportError> {
        assert_eq!(
            tensor.len(),
            self.cfg.tensor_len,
            "tensor length does not match group config"
        );
        let round_start = self.trace.start();
        let round = self.stats.rounds_completed as u32;
        self.flight
            .record(FlightEventKind::RoundStart, round, NO_BLOCK, 0, self.wid, 0);
        let encode_t0 = self.flight.now_ns();
        let bitmap = NonZeroBitmap::build(tensor, self.cfg.block_spec());
        let skip = self.cfg.skip_zero_blocks;
        let layout = self.layout;

        // Initialize stream states and send first-row packets.
        let mut streams: Vec<Option<StreamState>> =
            (0..layout.total_streams()).map(|_| None).collect();
        let mut pending = 0usize;
        for g in layout.active_streams() {
            let mut cols: Vec<Option<ColState>> = Vec::with_capacity(layout.width());
            let mut entries = self.pool.checkout_entries();
            let mut remaining = 0usize;
            for c in 0..layout.width() {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&bitmap, g, c, Some(b0), skip);
                        // Pooled copy of the block (no `to_vec` per block).
                        let mut data = self.pool.checkout_f32();
                        data.extend_from_slice(&tensor[layout.block_range(b0)]);
                        entries.push(Entry::data(
                            b0,
                            encode_next(my_next, c, layout.width()),
                            data,
                        ));
                        cols.push(Some(ColState {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            self.send_data(g, entries)?;
            streams[g] = Some(StreamState { cols, remaining });
            pending += 1;
        }
        self.flight.record(
            FlightEventKind::Encode,
            round,
            NO_BLOCK,
            0,
            self.wid,
            self.flight.now_ns().saturating_sub(encode_t0),
        );

        // Main loop: process results until every stream completes.
        while pending > 0 {
            let (_, msg) = self.transport.recv()?;
            let packet = match msg {
                Message::Block(p) if p.kind == PacketKind::Result => p,
                other => panic!("worker: unexpected message {:?}", other.tag()),
            };
            self.stats.results_received += 1;
            self.counters.results_received.inc();
            let g = packet.slot as usize;
            self.flight.record(
                FlightEventKind::ResultRx,
                round,
                NO_BLOCK,
                self.cfg.shard_of_stream(g) as u16,
                self.wid,
                packet.entries.len() as u64,
            );
            let state = streams[g].as_mut().expect("result for unknown stream");
            let mut reply = self.pool.checkout_entries();
            for entry in &packet.entries {
                let (col, requested) = decode_next(entry.next, layout.width());
                // Store the aggregated block.
                if !entry.data.is_empty() {
                    tensor.copy_slice_at(layout.block_range(entry.block).start, &entry.data);
                }
                let cs = state.cols[col]
                    .as_mut()
                    .expect("result entry for invalid column");
                if cs.done {
                    continue;
                }
                if requested == INFINITY_BLOCK {
                    cs.done = true;
                    state.remaining -= 1;
                    continue;
                }
                if cs.my_next == requested {
                    let new_next = layout.next_block(&bitmap, g, col, Some(requested), skip);
                    let mut data = self.pool.checkout_f32();
                    data.extend_from_slice(&tensor[layout.block_range(requested)]);
                    reply.push(Entry::data(
                        requested,
                        encode_next(new_next, col, layout.width()),
                        data,
                    ));
                    cs.my_next = new_next;
                }
                // requested < my_next: another worker owns it; stay silent
                // (Algorithm 1 — the aggregator already has our next).
            }
            if !reply.is_empty() {
                self.send_data(g, reply)?;
            } else {
                self.pool.checkin_entries(reply);
            }
            if state.remaining == 0 {
                streams[g] = None;
                pending -= 1;
            }
        }
        self.stats.rounds_completed += 1;
        self.counters.rounds_completed.inc();
        self.flight
            .record(FlightEventKind::RoundEnd, round, NO_BLOCK, 0, self.wid, 0);
        self.trace.span("allreduce", round_start);
        Ok(())
    }

    fn send_data(&mut self, stream: usize, entries: Vec<Entry>) -> Result<(), TransportError> {
        let blocks = entries.iter().filter(|e| !e.is_ack()).count() as u64;
        let msg = Message::Block(Packet {
            kind: PacketKind::Data,
            ver: 0,
            slot: stream as u16,
            stream: self.cfg.stream_id,
            wid: self.wid,
            epoch: 0,
            entries,
        });
        let wire_bytes = codec::encoded_len(&msg) as u64;
        self.stats.packets_sent += 1;
        self.stats.blocks_sent += blocks;
        self.stats.bytes_sent += wire_bytes;
        self.counters.packets_sent.inc();
        self.counters.blocks_sent.add(blocks);
        self.counters.bytes_sent.add(wire_bytes);
        let shard = self.cfg.shard_of_stream(stream);
        self.shard_bytes[shard] += wire_bytes;
        // One flight event per fused message (not per block), keyed by
        // the first entry's block — the aggregator mirrors the key on
        // its PacketRx so the reconstructor can pair them.
        if let Message::Block(p) = &msg {
            if let Some(first) = p.entries.first() {
                self.flight.record(
                    FlightEventKind::PacketTx,
                    self.stats.rounds_completed as u32,
                    first.block as u64,
                    shard as u16,
                    self.wid,
                    wire_bytes,
                );
            }
        }
        let sent = self
            .transport
            .send(NodeId(self.cfg.aggregator_node(shard)), &msg);
        // `send` borrows the message; its pooled buffers come back for
        // the next packet (DESIGN §9).
        self.pool.recycle_message(msg);
        sent
    }

    /// Tells every aggregator shard this worker is leaving; aggregators
    /// exit once all workers have said goodbye.
    pub fn shutdown(self) -> Result<(), TransportError> {
        for a in 0..self.cfg.num_aggregators {
            self.transport
                .send(NodeId(self.cfg.aggregator_node(a)), &Message::Shutdown)?;
        }
        Ok(())
    }
}
