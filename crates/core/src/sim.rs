//! OmniReduce as [`omnireduce_simnet`] actors — the timing model used by
//! the benchmark harness to reproduce the paper's figures on simulated
//! 10/100 Gbps fabrics.
//!
//! The actors run the *same protocol* as the executable engines
//! ([`crate::worker`], [`crate::aggregator`]): real per-column lookahead
//! over the workers' actual non-zero bitmaps, real fused packets, real
//! min-next coordination. Only the tensor payload is elided — packets
//! carry block indices and the simulator charges them their exact encoded
//! byte size ([`omnireduce_transport::codec`] constants), so the timing
//! reflects true protocol behaviour including partial overlap between
//! workers (§6.4.2) and the extra round trips it causes.
//!
//! Topology knobs cover the paper's deployment modes:
//!
//! * **dedicated** aggregators — each shard on its own NIC (the paper's
//!   default testbed: 8 workers + 8 CPU aggregator nodes);
//! * **colocated** — shard `i` shares worker `i`'s NIC (the paper's
//!   `OmniReduce(Co)`), halving effective per-role bandwidth;
//! * arbitrary NIC rate/latency/loss, so the bench crate expresses the
//!   DPDK / RDMA / GDR profiles as NIC parameters (e.g. host-copy
//!   bottleneck = capped worker TX rate).

use std::sync::Arc;

use omnireduce_simnet::{
    ActorId, Bandwidth, Ctx, NicConfig, Process, RunReport, SimTime, Simulator, Topology,
};
use omnireduce_telemetry::{Counter, FlightEventKind, FlightLane, LaneRole, Telemetry, NO_BLOCK};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, INFINITY_BLOCK};
use omnireduce_transport::codec::ENTRY_HEADER_BYTES;

use crate::config::OmniConfig;
use crate::layout::StreamLayout;

/// One fused entry in a simulated packet.
#[derive(Debug, Clone, Copy)]
pub struct SimEntry {
    /// Block index this entry refers to.
    pub block: BlockIdx,
    /// Column within the fused packet.
    pub col: usize,
    /// Sender's next non-zero block in this column (or ∞).
    pub next: BlockIdx,
    /// Number of payload values (0 for acknowledgments).
    pub values: usize,
}

/// Simulated protocol message.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// Worker → aggregator block data.
    Data {
        /// Stream id.
        stream: usize,
        /// Sending worker.
        wid: usize,
        /// Fused entries.
        entries: Vec<SimEntry>,
    },
    /// Aggregator → worker aggregated result.
    Result {
        /// Stream id.
        stream: usize,
        /// Fused entries (per active column).
        entries: Vec<SimEntry>,
    },
}

fn msg_bytes(stream_id: u16, entries: &[SimEntry]) -> usize {
    omnireduce_transport::codec::block_header_bytes(stream_id)
        + entries
            .iter()
            .map(|e| ENTRY_HEADER_BYTES + 4 * e.values)
            .sum::<usize>()
}

/// Full specification of a simulated OmniReduce run.
pub struct SimSpec {
    /// Protocol geometry (block size, fusion, streams, shards, workers).
    pub cfg: OmniConfig,
    /// Worker NIC parameters.
    pub worker_nic: NicConfig,
    /// Aggregator NIC parameters (ignored when `colocated`).
    pub agg_nic: NicConfig,
    /// Shard `i` shares worker `i`'s NIC instead of its own.
    pub colocated: bool,
    /// Telemetry registry the run reports into (`core.sim.*` protocol
    /// counters, `simnet.nic.*` fabric counters, and — when the
    /// registry's trace recorder is enabled — per-NIC timeline spans).
    pub telemetry: Option<Telemetry>,
    /// Engine threads for the simnet backend (1 = classic sequential
    /// drain; >1 = conservative parallel windows, bit-identical output).
    pub threads: usize,
    /// Fabric topology override (e.g. multi-rack); `None` = flat.
    pub topology: Option<Arc<dyn Topology>>,
}

impl SimSpec {
    /// Dedicated-aggregator spec with symmetric NICs everywhere.
    pub fn dedicated(cfg: OmniConfig, rate: Bandwidth, latency: SimTime) -> Self {
        SimSpec {
            cfg,
            worker_nic: NicConfig::symmetric(rate, latency),
            agg_nic: NicConfig::symmetric(rate, latency),
            colocated: false,
            telemetry: None,
            threads: 1,
            topology: None,
        }
    }

    /// Colocated spec (shards share worker NICs).
    pub fn colocated(cfg: OmniConfig, rate: Bandwidth, latency: SimTime) -> Self {
        SimSpec {
            cfg,
            worker_nic: NicConfig::symmetric(rate, latency),
            agg_nic: NicConfig::symmetric(rate, latency),
            colocated: true,
            telemetry: None,
            threads: 1,
            topology: None,
        }
    }

    /// Attaches a telemetry registry to the spec (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets the simnet engine thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fabric topology (builder style).
    pub fn with_topology(mut self, topology: impl Topology + 'static) -> Self {
        self.topology = Some(Arc::new(topology));
        self
    }
}

/// `core.sim.worker.*` counter handles shared by every worker actor.
#[derive(Clone)]
struct SimWorkerCounters {
    packets_sent: Counter,
    bytes_sent: Counter,
    results_received: Counter,
    rounds_completed: Counter,
}

impl SimWorkerCounters {
    fn from_spec(spec: &SimSpec) -> Self {
        match &spec.telemetry {
            Some(t) => SimWorkerCounters {
                packets_sent: t.counter("core.sim.worker.packets_sent"),
                bytes_sent: t.counter("core.sim.worker.bytes_sent"),
                results_received: t.counter("core.sim.worker.results_received"),
                rounds_completed: t.counter("core.sim.worker.rounds_completed"),
            },
            None => SimWorkerCounters {
                packets_sent: Counter::detached(),
                bytes_sent: Counter::detached(),
                results_received: Counter::detached(),
                rounds_completed: Counter::detached(),
            },
        }
    }
}

/// `core.sim.aggregator.*` counter handles shared by every shard actor.
#[derive(Clone)]
struct SimAggCounters {
    packets_received: Counter,
    results_sent: Counter,
    bytes_sent: Counter,
    slots_completed: Counter,
}

impl SimAggCounters {
    fn from_spec(spec: &SimSpec) -> Self {
        match &spec.telemetry {
            Some(t) => SimAggCounters {
                packets_received: t.counter("core.sim.aggregator.packets_received"),
                results_sent: t.counter("core.sim.aggregator.results_sent"),
                bytes_sent: t.counter("core.sim.aggregator.bytes_sent"),
                slots_completed: t.counter("core.sim.aggregator.slots_completed"),
            },
            None => SimAggCounters {
                packets_received: Counter::detached(),
                results_sent: Counter::detached(),
                bytes_sent: Counter::detached(),
                slots_completed: Counter::detached(),
            },
        }
    }
}

struct WCol {
    my_next: BlockIdx,
    done: bool,
}

struct WStream {
    cols: Vec<Option<WCol>>,
    remaining: usize,
}

/// Worker actor: mirrors [`crate::worker::OmniWorker`].
struct WorkerActor {
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: usize,
    bitmap: Arc<NonZeroBitmap>,
    /// Actor ids of the shards, indexed by shard number.
    shards: Vec<ActorId>,
    streams: Vec<Option<WStream>>,
    pending: usize,
    counters: SimWorkerCounters,
    /// Flight lane recording simulated-time protocol events
    /// (`record_at` with sim ns — never the wall clock).
    flight: FlightLane,
}

impl WorkerActor {
    fn send_data(&self, ctx: &mut Ctx<SimMsg>, stream: usize, entries: Vec<SimEntry>) {
        let bytes = msg_bytes(self.cfg.stream_id, &entries);
        let shard_no = self.cfg.shard_of_stream(stream);
        let shard = self.shards[shard_no];
        self.counters.packets_sent.inc();
        self.counters.bytes_sent.add(bytes as u64);
        if let Some(first) = entries.first() {
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::PacketTx,
                0,
                first.block as u64,
                shard_no as u16,
                self.wid as u16,
                bytes as u64,
            );
        }
        ctx.send(
            shard,
            SimMsg::Data {
                stream,
                wid: self.wid,
                entries,
            },
            bytes,
        );
    }
}

impl Process<SimMsg> for WorkerActor {
    fn on_start(&mut self, ctx: &mut Ctx<SimMsg>) {
        self.flight.record_at(
            ctx.now().as_nanos(),
            FlightEventKind::RoundStart,
            0,
            NO_BLOCK,
            0,
            self.wid as u16,
            0,
        );
        let layout = self.layout;
        let skip = self.cfg.skip_zero_blocks;
        self.streams = (0..layout.total_streams()).map(|_| None).collect();
        for g in layout.active_streams() {
            let mut cols: Vec<Option<WCol>> = Vec::with_capacity(layout.width());
            let mut entries = Vec::with_capacity(layout.width());
            let mut remaining = 0;
            for c in 0..layout.width() {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&self.bitmap, g, c, Some(b0), skip);
                        entries.push(SimEntry {
                            block: b0,
                            col: c,
                            next: my_next,
                            values: layout.block_range(b0).len(),
                        });
                        cols.push(Some(WCol {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            self.send_data(ctx, g, entries);
            self.streams[g] = Some(WStream { cols, remaining });
            self.pending += 1;
        }
        if self.pending == 0 {
            self.counters.rounds_completed.inc();
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::RoundEnd,
                0,
                NO_BLOCK,
                0,
                self.wid as u16,
                0,
            );
            ctx.halt();
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<SimMsg>, _from: ActorId, msg: SimMsg) {
        let SimMsg::Result { stream: g, entries } = msg else {
            panic!("worker received non-result message");
        };
        self.counters.results_received.inc();
        self.flight.record_at(
            ctx.now().as_nanos(),
            FlightEventKind::ResultRx,
            0,
            NO_BLOCK,
            self.cfg.shard_of_stream(g) as u16,
            self.wid as u16,
            entries.len() as u64,
        );
        let layout = self.layout;
        let skip = self.cfg.skip_zero_blocks;
        let state = self.streams[g].as_mut().expect("unknown stream");
        let mut reply = Vec::with_capacity(entries.len());
        for e in &entries {
            let cs = state.cols[e.col].as_mut().expect("invalid column");
            if cs.done {
                continue;
            }
            let requested = e.next;
            if requested == INFINITY_BLOCK {
                cs.done = true;
                state.remaining -= 1;
                continue;
            }
            if cs.my_next == requested {
                let new_next = layout.next_block(&self.bitmap, g, e.col, Some(requested), skip);
                reply.push(SimEntry {
                    block: requested,
                    col: e.col,
                    next: new_next,
                    values: layout.block_range(requested).len(),
                });
                cs.my_next = new_next;
            }
        }
        let finished = state.remaining == 0;
        if !reply.is_empty() {
            self.send_data(ctx, g, reply);
        }
        if finished {
            self.streams[g] = None;
            self.pending -= 1;
            if self.pending == 0 {
                self.counters.rounds_completed.inc();
                self.flight.record_at(
                    ctx.now().as_nanos(),
                    FlightEventKind::RoundEnd,
                    0,
                    NO_BLOCK,
                    0,
                    self.wid as u16,
                    0,
                );
                ctx.halt();
            }
        }
    }
}

const NEG_INF: i64 = -1;

struct ACol {
    cur: BlockIdx,
    next_of: Vec<i64>,
}

impl ACol {
    fn min_next(&self) -> Option<BlockIdx> {
        let mut min = i64::MAX;
        for n in &self.next_of {
            if *n == NEG_INF {
                return None;
            }
            min = min.min(*n);
        }
        Some(min as BlockIdx)
    }

    fn complete(&self) -> bool {
        matches!(self.min_next(), Some(m) if (self.cur as i64) < m as i64)
    }

    fn active(&self) -> bool {
        self.cur != INFINITY_BLOCK
    }
}

struct ASlot {
    cols: Vec<Option<ACol>>,
}

/// Aggregator shard actor: mirrors [`crate::aggregator::OmniAggregator`],
/// serving exactly one AllReduce round and halting when every owned
/// stream completes.
struct AggActor {
    cfg: OmniConfig,
    layout: StreamLayout,
    shard: usize,
    workers: Vec<ActorId>,
    slots: Vec<Option<ASlot>>,
    open_streams: usize,
    counters: SimAggCounters,
    /// Flight lane recording simulated-time protocol events.
    flight: FlightLane,
}

impl Process<SimMsg> for AggActor {
    fn on_start(&mut self, ctx: &mut Ctx<SimMsg>) {
        let layout = self.layout;
        self.slots = (0..layout.total_streams())
            .map(|g| {
                (self.cfg.shard_of_stream(g) == self.shard && layout.first_block(g, 0).is_some())
                    .then(|| ASlot {
                        cols: (0..layout.width())
                            .map(|c| {
                                layout.first_block(g, c).map(|b0| ACol {
                                    cur: b0,
                                    next_of: vec![NEG_INF; self.cfg.num_workers],
                                })
                            })
                            .collect(),
                    })
            })
            .collect();
        self.open_streams = self.slots.iter().flatten().count();
        if self.open_streams == 0 {
            ctx.halt();
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<SimMsg>, _from: ActorId, msg: SimMsg) {
        let SimMsg::Data {
            stream: g,
            wid,
            entries,
        } = msg
        else {
            panic!("aggregator received non-data message");
        };
        self.counters.packets_received.inc();
        // Keyed by the first entry's block, mirroring the sender's
        // PacketTx so the reconstructor pairs tx with rx.
        if let Some(first) = entries.first() {
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::PacketRx,
                0,
                first.block as u64,
                self.shard as u16,
                wid as u16,
                entries.len() as u64,
            );
        }
        let slot = self.slots[g].as_mut().expect("stream not owned");
        for e in &entries {
            let cs = slot.cols[e.col].as_mut().expect("invalid column");
            debug_assert_eq!(e.block, cs.cur);
            cs.next_of[wid] = if e.next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                e.next as i64
            };
        }
        let all_complete = slot
            .cols
            .iter()
            .flatten()
            .filter(|c| c.active())
            .all(|c| c.complete());
        let any_active = slot.cols.iter().flatten().any(|c| c.active());
        if !any_active || !all_complete {
            return;
        }
        let layout = self.layout;
        let mut result = Vec::with_capacity(layout.width());
        let mut all_done = true;
        for (c, cs) in slot.cols.iter_mut().enumerate() {
            let Some(cs) = cs else { continue };
            if !cs.active() {
                continue;
            }
            let min_next = cs.min_next().expect("complete implies announced");
            result.push(SimEntry {
                block: cs.cur,
                col: c,
                next: min_next,
                values: layout.block_range(cs.cur).len(),
            });
            cs.cur = min_next;
            if min_next != INFINITY_BLOCK {
                all_done = false;
            }
        }
        let bytes = msg_bytes(self.cfg.stream_id, &result);
        self.counters.slots_completed.inc();
        if let Some(first) = result.first() {
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::ResultTx,
                0,
                first.block as u64,
                self.shard as u16,
                u16::MAX,
                result.len() as u64,
            );
        }
        for w in &self.workers {
            self.counters.results_sent.inc();
            self.counters.bytes_sent.add(bytes as u64);
            ctx.send(
                *w,
                SimMsg::Result {
                    stream: g,
                    entries: result.clone(),
                },
                bytes,
            );
        }
        if all_done {
            self.slots[g] = None;
            self.open_streams -= 1;
            if self.open_streams == 0 {
                ctx.halt();
            }
        }
    }
}

/// Outcome of a simulated AllReduce.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Time the last worker finished.
    pub completion: SimTime,
    /// Raw simulator report (per-NIC byte counters, etc.).
    pub report: RunReport,
    /// Total bytes workers transmitted.
    pub worker_tx_bytes: u64,
    /// Bytes received by each aggregator shard's NIC (index = shard) —
    /// the per-shard half of the wire-byte differential (DESIGN §10).
    /// Exact only with dedicated shard NICs: in colocated mode a shard
    /// shares its NIC with a worker, so the counter also contains that
    /// worker's inbound result traffic.
    pub shard_rx_bytes: Vec<u64>,
    /// Workers that gave up (retry budget exhausted against an
    /// unreachable peer) instead of finishing. Always empty for the
    /// lossless engines; see
    /// [`crate::sim_recovery::SimRtoConfig::max_retransmits`].
    pub failed_workers: Vec<usize>,
}

/// Simulates one OmniReduce AllReduce over the given per-worker non-zero
/// bitmaps, returning completion time and traffic counters.
///
/// # Panics
/// Panics when `bitmaps.len() != cfg.num_workers` or bitmap sizes
/// disagree with the config.
pub fn simulate_allreduce(spec: &SimSpec, bitmaps: &[NonZeroBitmap]) -> SimOutcome {
    let cfg = &spec.cfg;
    cfg.validate();
    assert_eq!(bitmaps.len(), cfg.num_workers, "one bitmap per worker");
    let layout = StreamLayout::new(
        cfg.block_spec(),
        cfg.fusion,
        cfg.total_streams(),
        cfg.tensor_len,
    );
    for bm in bitmaps {
        assert_eq!(bm.block_count(), layout.nblocks(), "bitmap size mismatch");
    }
    if spec.colocated {
        assert!(
            cfg.num_aggregators <= cfg.num_workers,
            "colocated mode needs shards ≤ workers"
        );
    }

    let mut sim: Simulator<SimMsg> = Simulator::new(0xC0FFEE);
    sim.set_threads(spec.threads.max(1));
    if let Some(topology) = &spec.topology {
        sim.set_topology_shared(topology.clone());
    }
    if let Some(telemetry) = &spec.telemetry {
        sim.attach_telemetry(telemetry.clone());
    }
    let worker_counters = SimWorkerCounters::from_spec(spec);
    let agg_counters = SimAggCounters::from_spec(spec);
    // NICs: one per worker; one per shard unless colocated.
    let worker_nics: Vec<_> = (0..cfg.num_workers)
        .map(|_| sim.add_nic(spec.worker_nic))
        .collect();
    let shard_nics: Vec<_> = (0..cfg.num_aggregators)
        .map(|a| {
            if spec.colocated {
                worker_nics[a]
            } else {
                sim.add_nic(spec.agg_nic)
            }
        })
        .collect();

    // Actor ids are assigned in insertion order: workers first.
    let worker_ids: Vec<ActorId> = (0..cfg.num_workers).map(ActorId).collect();
    let shard_ids: Vec<ActorId> = (0..cfg.num_aggregators)
        .map(|a| ActorId(cfg.num_workers + a))
        .collect();

    // Flight lanes carry *simulated* nanoseconds (`record_at`), so a
    // recording from a sim run feeds the same reconstructor as a live
    // run — just in the sim clock domain.
    let flight_lane = |name: &str, role, actor| match &spec.telemetry {
        Some(t) => t.flight().lane(name, role, actor),
        None => FlightLane::disabled(),
    };
    for (w, bm) in bitmaps.iter().enumerate() {
        sim.add_actor(
            worker_nics[w],
            Box::new(WorkerActor {
                cfg: cfg.clone(),
                layout,
                wid: w,
                bitmap: Arc::new(bm.clone()),
                shards: shard_ids.clone(),
                streams: Vec::new(),
                pending: 0,
                counters: worker_counters.clone(),
                flight: flight_lane(&format!("worker{w}"), LaneRole::Worker, w as u16),
            }),
        );
    }
    for (a, nic) in shard_nics.iter().enumerate() {
        sim.add_actor(
            *nic,
            Box::new(AggActor {
                cfg: cfg.clone(),
                layout,
                shard: a,
                workers: worker_ids.clone(),
                slots: Vec::new(),
                open_streams: 0,
                counters: agg_counters.clone(),
                flight: flight_lane(&format!("agg{a}"), LaneRole::Aggregator, a as u16),
            }),
        );
    }

    let report = sim.run();
    let completion = worker_ids
        .iter()
        .map(|w| report.finished_at[w.0].expect("worker never finished"))
        .max()
        .unwrap_or(SimTime::ZERO);
    let worker_tx_bytes = (0..cfg.num_workers)
        .map(|w| report.nic_stats[w].bytes_tx)
        .sum();
    let shard_rx_bytes = shard_nics
        .iter()
        .map(|n| report.nic_stats[n.0].bytes_rx)
        .collect();
    SimOutcome {
        completion,
        report,
        worker_tx_bytes,
        shard_rx_bytes,
        failed_workers: Vec::new(),
    }
}

/// Builds per-worker bitmaps from [`omnireduce_tensor::gen`] block masks.
pub fn bitmaps_from_sets(sets: &[Vec<bool>]) -> Vec<NonZeroBitmap> {
    sets.iter()
        .map(|mask| {
            let mut bm = NonZeroBitmap::empty(mask.len());
            for (i, on) in mask.iter().enumerate() {
                if *on {
                    bm.set(i as u32);
                }
            }
            bm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnireduce_tensor::gen::{worker_block_sets, OverlapMode};

    fn spec(n: usize, len: usize, sparsity: f64, seed: u64) -> (SimSpec, Vec<NonZeroBitmap>) {
        let cfg = OmniConfig::new(n, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(n);
        let nblocks = cfg.block_spec().block_count(len);
        let sets = worker_block_sets(n, nblocks, sparsity, OverlapMode::Random, seed);
        let s = SimSpec::dedicated(cfg, Bandwidth::gbps(10.0), SimTime::from_micros(5));
        (s, bitmaps_from_sets(&sets))
    }

    #[test]
    fn higher_sparsity_is_faster() {
        // Random overlap: the result multicast covers the union of
        // non-zero positions (1 − 0.9⁴ ≈ 34% here), so the speedup is
        // diluted — exactly the effect §6.1.1 reports. Expect >2×.
        let len = 1 << 20; // 4 MB of f32
        let (s0, b0) = spec(4, len, 0.0, 1);
        let (s9, b9) = spec(4, len, 0.9, 1);
        let t0 = simulate_allreduce(&s0, &b0).completion;
        let t9 = simulate_allreduce(&s9, &b9).completion;
        assert!(
            t9.as_nanos() * 2 < t0.as_nanos(),
            "90% sparse {t9} should be much faster than dense {t0}"
        );
    }

    #[test]
    fn full_overlap_speedup_matches_inverse_density() {
        // With all workers' non-zero blocks overlapping, time scales with
        // the density D (§3.4 model): 90% sparsity → ≈10× faster. The
        // tensor must be large enough that the unconditional first-row
        // exchange (one block per stream × column) is amortized.
        let len = 1 << 22;
        let cfg = OmniConfig::new(4, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(4);
        let nblocks = cfg.block_spec().block_count(len);
        let run = |sparsity| {
            let sets = worker_block_sets(4, nblocks, sparsity, OverlapMode::All, 21);
            let s = SimSpec::dedicated(cfg.clone(), Bandwidth::gbps(10.0), SimTime::from_micros(5));
            simulate_allreduce(&s, &bitmaps_from_sets(&sets))
                .completion
                .as_secs_f64()
        };
        let t0 = run(0.0);
        let t9 = run(0.9);
        let speedup = t0 / t9;
        assert!(
            (speedup - 10.0).abs() < 2.5,
            "full-overlap speedup {speedup} should be ≈ 1/D = 10"
        );
    }

    #[test]
    fn dense_time_matches_bandwidth_bound() {
        // Dense tensor, N workers, N shards: each worker sends S bytes and
        // receives S bytes; expected time ≈ S/B plus small overheads.
        let len = 1 << 20;
        let (s, b) = spec(4, len, 0.0, 2);
        let out = simulate_allreduce(&s, &b);
        let bytes = (len * 4) as f64;
        let ideal = bytes / Bandwidth::gbps(10.0).as_bytes_per_sec();
        let measured = out.completion.as_secs_f64();
        assert!(
            measured > ideal * 0.95 && measured < ideal * 1.4,
            "measured {measured}, ideal {ideal}"
        );
    }

    #[test]
    fn sparse_traffic_proportional_to_density() {
        let len = 1 << 20;
        let (s0, b0) = spec(4, len, 0.0, 3);
        let (s9, b9) = spec(4, len, 0.9, 3);
        let t0 = simulate_allreduce(&s0, &b0).worker_tx_bytes;
        let t9 = simulate_allreduce(&s9, &b9).worker_tx_bytes;
        let ratio = t9 as f64 / t0 as f64;
        assert!((ratio - 0.1).abs() < 0.03, "traffic ratio {ratio}");
    }

    #[test]
    fn overlap_ordering_at_mid_sparsity() {
        // §6.4.2: at s ∈ [60%, 90%] all-overlap beats random beats none.
        let len = 1 << 20;
        let cfg = OmniConfig::new(8, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(8);
        let nblocks = cfg.block_spec().block_count(len);
        let run = |mode| {
            let sets = worker_block_sets(8, nblocks, 0.8, mode, 5);
            let s = SimSpec::dedicated(cfg.clone(), Bandwidth::gbps(10.0), SimTime::from_micros(5));
            simulate_allreduce(&s, &bitmaps_from_sets(&sets)).completion
        };
        let t_all = run(OverlapMode::All);
        let t_rand = run(OverlapMode::Random);
        let t_none = run(OverlapMode::None);
        assert!(t_all < t_rand, "all {t_all} < random {t_rand}");
        assert!(t_rand < t_none, "random {t_rand} < none {t_none}");
    }

    #[test]
    fn colocated_dense_slower_than_dedicated() {
        let len = 1 << 20;
        let cfg = OmniConfig::new(4, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(4);
        let nblocks = cfg.block_spec().block_count(len);
        let sets = worker_block_sets(4, nblocks, 0.0, OverlapMode::All, 7);
        let bms = bitmaps_from_sets(&sets);
        let rate = Bandwidth::gbps(10.0);
        let lat = SimTime::from_micros(5);
        let t_ded = simulate_allreduce(&SimSpec::dedicated(cfg.clone(), rate, lat), &bms);
        let t_co = simulate_allreduce(&SimSpec::colocated(cfg, rate, lat), &bms);
        assert!(
            t_co.completion > t_ded.completion,
            "colocated {} should be slower than dedicated {}",
            t_co.completion,
            t_ded.completion
        );
    }

    #[test]
    fn empty_bitmaps_complete_quickly() {
        let len = 4096; // 16 blocks of 256
        let cfg = OmniConfig::new(2, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(2)
            .with_aggregators(2);
        let bms = vec![NonZeroBitmap::empty(16), NonZeroBitmap::empty(16)];
        let s = SimSpec::dedicated(cfg, Bandwidth::gbps(10.0), SimTime::from_micros(5));
        let out = simulate_allreduce(&s, &bms);
        // One first-row exchange only.
        assert!(out.completion.as_millis_f64() < 1.0, "{}", out.completion);
    }

    #[test]
    fn more_streams_mask_latency() {
        // With high latency, pipeline depth (streams) should cut time.
        let len = 1 << 20;
        let mk = |streams| {
            let cfg = OmniConfig::new(2, len)
                .with_block_size(256)
                .with_fusion(4)
                .with_streams(streams)
                .with_aggregators(2);
            let nblocks = cfg.block_spec().block_count(len);
            let sets = worker_block_sets(2, nblocks, 0.0, OverlapMode::All, 11);
            let s = SimSpec::dedicated(cfg, Bandwidth::gbps(100.0), SimTime::from_micros(20));
            simulate_allreduce(&s, &bitmaps_from_sets(&sets)).completion
        };
        let t1 = mk(1);
        let t16 = mk(16);
        assert!(
            t16.as_nanos() * 3 < t1.as_nanos(),
            "16 streams {t16} should beat 1 stream {t1} at high BDP"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let (s, b) = spec(4, 1 << 18, 0.5, 13);
        let a = simulate_allreduce(&s, &b).completion;
        let c = simulate_allreduce(&s, &b).completion;
        assert_eq!(a, c);
    }
}
