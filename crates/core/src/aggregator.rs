//! The OmniReduce aggregator engine for reliable transports
//! (Algorithm 1 with Block Fusion and parallel streams).
//!
//! One aggregator shard serves the streams assigned to it. Per stream it
//! keeps one *slot*: for each fused column, an accumulator for the block
//! currently being aggregated plus every worker's announced next non-zero
//! block in that column. When, for every active column, the current block
//! index is below the minimum of the workers' nexts, the slot is complete:
//! the shard multicasts the aggregated row (with the new per-column
//! requests — the global minima) to all workers, advances the columns,
//! and resets the accumulators (Algorithm 1 lines 19–27).
//!
//! The shard runs until every worker has sent a `Shutdown`.

use omnireduce_telemetry::{Counter, FlightEventKind, FlightLane, LaneRole, Telemetry};
use omnireduce_tensor::{BlockIdx, INFINITY_BLOCK};
use omnireduce_transport::{
    BufferPool, Entry, Message, NodeId, Packet, PacketKind, Transport, TransportError,
};

use crate::config::OmniConfig;
use crate::layout::StreamLayout;
use crate::slot::ColAccumulator;
use crate::wire::{decode_next, encode_next};

/// Sentinel for "worker has not announced a next yet" — the paper's −∞
/// (Algorithm 1 line 18).
const NEG_INFINITY: i64 = -1;

/// Per-column slot state.
struct ColSlot {
    /// Block currently being aggregated ([`INFINITY_BLOCK`] once the
    /// column is exhausted).
    cur: BlockIdx,
    /// Block accumulator (arrival-order or deterministic §7; buffers
    /// reused in place across blocks and rounds — DESIGN §9).
    acc: ColAccumulator,
    /// Per-worker next non-zero block (−1 = not yet announced).
    next_of: Vec<i64>,
}

impl ColSlot {
    fn new(first: BlockIdx, num_workers: usize, deterministic: bool) -> Self {
        ColSlot {
            cur: first,
            acc: ColAccumulator::new(num_workers, deterministic),
            next_of: vec![NEG_INFINITY; num_workers],
        }
    }

    /// Rearms the column for a new round, keeping every buffer.
    fn reset(&mut self, first: BlockIdx) {
        self.cur = first;
        self.acc.reset();
        self.next_of.fill(NEG_INFINITY);
    }

    fn active(&self) -> bool {
        self.cur != INFINITY_BLOCK
    }

    /// min over workers of next_of; `None` while any worker is still at −∞.
    fn min_next(&self) -> Option<BlockIdx> {
        let mut min = i64::MAX;
        for n in &self.next_of {
            if *n == NEG_INFINITY {
                return None;
            }
            min = min.min(*n);
        }
        Some(min as BlockIdx)
    }

    /// The completion condition of Algorithm 1 line 22:
    /// `cur < min(next)` with −∞ blocking completion.
    fn complete(&self) -> bool {
        match self.min_next() {
            Some(m) => {
                (self.cur as i64) < m as i64 || m == INFINITY_BLOCK && self.cur != INFINITY_BLOCK
            }
            None => false,
        }
    }
}

/// Per-stream slot.
struct Slot {
    cols: Vec<Option<ColSlot>>,
}

/// Data-plane counters of one aggregator shard (observability for
/// operators; also used by tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Data packets processed.
    pub packets: u64,
    /// Data entries aggregated (blocks received, incl. duplicates of the
    /// same position from different workers).
    pub blocks_received: u64,
    /// Slots (block rows) completed and multicast.
    pub slots_completed: u64,
    /// AllReduce rounds fully served (every owned stream reset).
    pub rounds_completed: u64,
    /// Result packets multicast to the workers.
    pub results_sent: u64,
}

/// Fleet-wide `core.aggregator.*` registry mirrors of
/// [`AggregatorStats`] (detached no-ops unless built via
/// [`OmniAggregator::with_telemetry`]).
struct AggregatorCounters {
    packets: Counter,
    blocks_received: Counter,
    slots_completed: Counter,
    rounds_completed: Counter,
    results_sent: Counter,
}

impl AggregatorCounters {
    fn detached() -> Self {
        AggregatorCounters {
            packets: Counter::detached(),
            blocks_received: Counter::detached(),
            slots_completed: Counter::detached(),
            rounds_completed: Counter::detached(),
            results_sent: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        AggregatorCounters {
            packets: telemetry.counter("core.aggregator.packets"),
            blocks_received: telemetry.counter("core.aggregator.blocks_received"),
            slots_completed: telemetry.counter("core.aggregator.slots_completed"),
            rounds_completed: telemetry.counter("core.aggregator.rounds_completed"),
            results_sent: telemetry.counter("core.aggregator.results_sent"),
        }
    }
}

/// The aggregator shard engine.
pub struct OmniAggregator<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    shard: usize,
    slots: Vec<Option<Slot>>, // indexed by stream; None if not ours
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
    /// Data-plane counters.
    pub stats: AggregatorStats,
    counters: AggregatorCounters,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    streams_open_this_round: usize,
    /// Freelists for result-packet buffers (checked out at completion,
    /// recycled after the multicast — DESIGN §9).
    pool: BufferPool,
    /// Multicast destination scratch, refilled per completion.
    workers_scratch: Vec<NodeId>,
}

impl<T: Transport> OmniAggregator<T> {
    /// Creates the engine for the shard whose node id matches the
    /// transport's.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let node = transport.local_id().0 as usize;
        assert!(
            node >= cfg.num_workers && node < cfg.mesh_size(),
            "transport node {node} is not an aggregator"
        );
        let shard = node - cfg.num_workers;
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let slots = (0..layout.total_streams())
            .map(|g| {
                (cfg.shard_of_stream(g) == shard).then(|| Slot {
                    cols: (0..layout.width())
                        .map(|c| {
                            layout
                                .first_block(g, c)
                                .map(|b0| ColSlot::new(b0, cfg.num_workers, cfg.deterministic))
                        })
                        .collect(),
                })
            })
            .collect();
        let departed = vec![false; cfg.num_workers];
        let streams_open_this_round = (0..layout.total_streams())
            .filter(|g| cfg.shard_of_stream(*g) == shard && layout.first_block(*g, 0).is_some())
            .count();
        let pool = BufferPool::for_block_size(cfg.block_size);
        OmniAggregator {
            transport,
            cfg,
            layout,
            shard,
            slots,
            departed,
            goodbyes: 0,
            stats: AggregatorStats::default(),
            counters: AggregatorCounters::detached(),
            flight: FlightLane::disabled(),
            streams_open_this_round,
            pool,
            workers_scratch: Vec::new(),
        }
    }

    /// Like [`OmniAggregator::new`], but mirrors data-plane counters into
    /// `telemetry`'s `core.aggregator.*` counters (and the buffer pool's
    /// hit/miss counters under `transport.pool.aggregator.*`).
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut a = Self::new(transport, cfg);
        a.counters = AggregatorCounters::registered(telemetry);
        a.flight = telemetry.flight().lane(
            &format!("agg{}", a.shard),
            LaneRole::Aggregator,
            a.shard as u16,
        );
        a.pool =
            BufferPool::for_block_size(a.cfg.block_size).with_telemetry("aggregator", telemetry);
        a
    }

    /// Shard index of this aggregator.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Serves the group until every worker sends `Shutdown`.
    pub fn run(&mut self) -> Result<(), TransportError> {
        loop {
            let (from, msg) = self.transport.recv()?;
            match msg {
                Message::Block(p) if p.kind == PacketKind::Data => {
                    self.handle_data(p)?;
                }
                Message::Shutdown => {
                    // The worker has finished every round it will run;
                    // stop multicasting results to it (its endpoint may
                    // already be gone).
                    if !self.departed[from.index()] {
                        self.departed[from.index()] = true;
                        self.goodbyes += 1;
                    }
                    if self.goodbyes == self.cfg.num_workers {
                        return Ok(());
                    }
                }
                other => panic!("aggregator: unexpected {:?} from {from}", other.tag()),
            }
        }
    }

    fn handle_data(&mut self, p: Packet) -> Result<(), TransportError> {
        let g = p.slot as usize;
        let width = self.layout.width();
        let blocks = p.entries.iter().filter(|e| !e.data.is_empty()).count() as u64;
        self.stats.packets += 1;
        self.stats.blocks_received += blocks;
        self.counters.packets.inc();
        self.counters.blocks_received.add(blocks);
        // Keyed by the first entry's block, mirroring the sender's
        // PacketTx key so the reconstructor can pair tx with rx.
        if let Some(first) = p.entries.first() {
            self.flight.record(
                FlightEventKind::PacketRx,
                0,
                first.block as u64,
                self.shard as u16,
                p.wid,
                blocks,
            );
        }
        let slot = self.slots[g]
            .as_mut()
            .unwrap_or_else(|| panic!("stream {g} not owned by shard"));
        for entry in &p.entries {
            let (col, next) = decode_next(entry.next, width);
            let cs = slot.cols[col]
                .as_mut()
                .expect("data entry for invalid column");
            if !entry.data.is_empty() {
                debug_assert_eq!(entry.block, cs.cur, "entry for wrong block");
                debug_assert!(!cs.acc.has_contrib(p.wid as usize), "double contribution");
                if !cs.acc.touched() {
                    // First contribution claims the column's slot.
                    self.flight.record(
                        FlightEventKind::SlotOccupy,
                        0,
                        cs.cur as u64,
                        self.shard as u16,
                        p.wid,
                        col as u64,
                    );
                }
                // Copy into the accumulator's persistent buffers (no
                // per-block allocation; vectorized reduction kernel).
                cs.acc.store(p.wid as usize, &entry.data);
            }
            cs.next_of[p.wid as usize] = if next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                next as i64
            };
        }
        self.check_completion(g)
    }

    /// If every active column of stream `g` is complete, emit the result
    /// and advance the slot.
    fn check_completion(&mut self, g: usize) -> Result<(), TransportError> {
        let width = self.layout.width();
        let slot = self.slots[g].as_mut().expect("owned stream");
        let all_complete = slot
            .cols
            .iter()
            .flatten()
            .filter(|c| c.active())
            .all(|c| c.complete());
        // `all` on an empty iterator is true — guard: nothing to do if no
        // column is active (stream fully finished, awaiting next round).
        let any_active = slot.cols.iter().flatten().any(|c| c.active());
        if !any_active || !all_complete {
            return Ok(());
        }

        // Build the result packet from pooled buffers (DESIGN §9): the
        // entry list and each payload come from the freelists and return
        // to them right after the multicast, so the steady state
        // allocates nothing.
        let mut entries = self.pool.checkout_entries();
        let mut all_done = true;
        for (col, cs) in slot.cols.iter_mut().enumerate() {
            let Some(cs) = cs else { continue };
            if !cs.active() {
                continue;
            }
            let min_next = cs.min_next().expect("complete implies announced");
            debug_assert!(cs.acc.touched(), "completed block with no data");
            let mut data = self.pool.checkout_f32();
            cs.acc.take_into(&mut data);
            entries.push(Entry::data(cs.cur, encode_next(min_next, col, width), data));
            cs.cur = min_next; // INFINITY_BLOCK deactivates the column
            if min_next != INFINITY_BLOCK {
                all_done = false;
            }
        }

        let msg = Message::Block(Packet {
            kind: PacketKind::Result,
            ver: 0,
            slot: g as u16,
            stream: self.cfg.stream_id,
            wid: u16::MAX,
            epoch: 0,
            entries,
        });
        self.workers_scratch.clear();
        for w in 0..self.cfg.num_workers {
            if !self.departed[w] {
                self.workers_scratch.push(NodeId(self.cfg.worker_node(w)));
            }
        }
        self.stats.results_sent += 1;
        self.stats.slots_completed += 1;
        self.counters.results_sent.inc();
        self.counters.slots_completed.inc();
        if let Message::Block(pkt) = &msg {
            if let Some(first) = pkt.entries.first() {
                self.flight.record(
                    FlightEventKind::SlotRelease,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    0,
                    pkt.entries.len() as u64,
                );
                self.flight.record(
                    FlightEventKind::ResultTx,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    0,
                    pkt.entries.len() as u64,
                );
            }
        }
        for w in &self.workers_scratch {
            crate::wire::send_best_effort(&self.transport, *w, &msg)?;
        }
        // Transports borrow `&Message`: we still own it, so its buffers
        // go back to the freelists for the next completion.
        self.pool.recycle_message(msg);

        if all_done {
            // Round over for this stream: reset for the next tensor
            // (Algorithm 1 line 26) — in place, keeping every buffer.
            let layout = self.layout;
            let slot = self.slots[g].as_mut().expect("owned stream");
            for (c, cs) in slot.cols.iter_mut().enumerate() {
                if let Some(cs) = cs {
                    cs.reset(layout.first_block(g, c).expect("valid column"));
                }
            }
            // Round bookkeeping: when the last open stream of this round
            // resets, a full AllReduce has been served.
            self.streams_open_this_round -= 1;
            if self.streams_open_this_round == 0 {
                self.stats.rounds_completed += 1;
                self.counters.rounds_completed.inc();
                self.streams_open_this_round = (0..layout.total_streams())
                    .filter(|g| {
                        self.cfg.shard_of_stream(*g) == self.shard
                            && layout.first_block(*g, 0).is_some()
                    })
                    .count();
            }
        }
        Ok(())
    }
}
