//! Deployment configuration shared by workers and aggregators.

use std::time::Duration;

use omnireduce_tensor::BlockSpec;

/// What an aggregator does when it evicts an unresponsive worker
/// mid-collective (the fail-fast degradation policy of the robustness
/// layer; see DESIGN.md "Fault model & degradation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Abort the collective with [`crate::ProtocolError::WorkerEvicted`].
    /// The conservative default: surviving workers observe a disconnect
    /// and the job scheduler restarts the job from a checkpoint.
    Abort,
    /// Complete the collective without the evicted workers' remaining
    /// contributions: the aggregator renormalizes the per-phase
    /// completion count to the survivors and the result simply omits the
    /// dead workers' gradients (acceptable for SGD-style workloads where
    /// a dropped contribution is equivalent to a skipped micro-batch).
    DropWorker,
    /// Like [`DegradedMode::DropWorker`], but an evicted worker that is
    /// still alive is told so immediately: the aggregator answers its
    /// stale data packets with a `Welcome` carrying the current epoch,
    /// so the worker fails fast with
    /// [`crate::ProtocolError::Evicted`] (instead of burning its whole
    /// retry budget) and can re-`join()` at the bumped epoch.
    Rejoin,
}

impl std::str::FromStr for DegradedMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "abort" => Ok(DegradedMode::Abort),
            "drop" | "drop_worker" | "dropworker" => Ok(DegradedMode::DropWorker),
            "rejoin" => Ok(DegradedMode::Rejoin),
            other => Err(format!(
                "unknown degraded mode {other:?} (expected \"abort\", \"drop_worker\" or \"rejoin\")"
            )),
        }
    }
}

/// Static configuration of an OmniReduce deployment. Every worker and
/// aggregator in a group must be constructed from an identical config
/// (like an MPI communicator, membership and geometry are agreed out of
/// band).
#[derive(Debug, Clone)]
pub struct OmniConfig {
    /// Number of workers (`N`).
    pub num_workers: usize,
    /// Number of aggregator shards; each owns a disjoint subset of the
    /// streams (paper §3: "each node owns a disjoint shard of blocks").
    pub num_aggregators: usize,
    /// Elements per block (`bs`, paper default 256).
    pub block_size: usize,
    /// Blocks fused per packet (`w`, §3.2); 1 disables Block Fusion.
    pub fusion: usize,
    /// Parallel aggregation streams per shard (§3.1.1). More streams
    /// deepen the pipeline that masks network latency.
    pub streams_per_shard: usize,
    /// Tensor length in elements this group aggregates. Fixed per group,
    /// like a persistent MPI collective; callers with variable sizes pad
    /// or build one group per size.
    pub tensor_len: usize,
    /// When false, workers transmit every block (zero or not) — this is
    /// the *streaming dense aggregation* mode used as the SwitchML*
    /// baseline in §6.2.2.
    pub skip_zero_blocks: bool,
    /// Numeric reproducibility (§7): when true, the aggregator buffers
    /// each worker's contribution and reduces them in worker-id order at
    /// slot completion, making the floating-point result bit-identical
    /// across runs and arrival orders (at the cost of N block buffers
    /// per slot instead of one).
    pub deterministic: bool,
    /// Retransmission timeout for the loss-recovery protocol
    /// (Algorithm 2); unused by the lossless engines. With
    /// [`OmniConfig::adaptive_rto`] enabled this is only the *initial*
    /// RTO, before the first RTT sample arrives.
    pub retransmit_timeout: Duration,
    /// When true (default), the recovery worker estimates the RTO from
    /// observed RTTs (RFC 6298 SRTT/RTTVAR with Karn's rule and
    /// exponential backoff) instead of using the fixed
    /// [`OmniConfig::retransmit_timeout`].
    pub adaptive_rto: bool,
    /// Lower clamp for the adaptive RTO (also the floor after backoff
    /// reset).
    pub rto_min: Duration,
    /// Upper clamp for the adaptive RTO, including backoff. Together
    /// with [`OmniConfig::max_retransmits`] this bounds how long a
    /// worker can wait on a dead peer.
    pub rto_max: Duration,
    /// Retry budget: after this many *consecutive unanswered*
    /// retransmissions of the same slot, the worker declares the peer
    /// dead and returns [`crate::ProtocolError::PeerUnresponsive`]
    /// instead of retransmitting forever.
    pub max_retransmits: u32,
    /// How long an aggregator waits without hearing from a worker it
    /// still needs before evicting it (the symmetric fail-fast bound on
    /// the aggregator side).
    pub worker_eviction_timeout: Duration,
    /// What the aggregator does after evicting a worker.
    pub degraded_mode: DegradedMode,
    /// When true, every aggregator shard has a hot-standby twin (node
    /// `W + A + a` for shard `a`) receiving checkpoint deltas over the
    /// replication lane; workers that exhaust their retry budget against
    /// the primary re-target the standby instead of failing.
    pub hot_standby: bool,
    /// Tenant stream id stamped on every block frame this job emits
    /// (DESIGN §15). `0` — the default — is the single-job legacy
    /// stream and keeps the pre-tenancy wire layout byte for byte;
    /// nonzero ids select the 12-byte tagged block header so a shared
    /// aggregator fleet can demultiplex concurrent jobs.
    pub stream_id: u16,
}

impl OmniConfig {
    /// A reasonable default geometry for `num_workers` workers and a
    /// `tensor_len`-element tensor: one aggregator shard, paper-default
    /// block size 256, fusion width 4, 16 streams.
    pub fn new(num_workers: usize, tensor_len: usize) -> Self {
        OmniConfig {
            num_workers,
            num_aggregators: 1,
            block_size: 256,
            fusion: 4,
            streams_per_shard: 16,
            tensor_len,
            skip_zero_blocks: true,
            deterministic: false,
            retransmit_timeout: Duration::from_millis(20),
            adaptive_rto: true,
            rto_min: Duration::from_millis(2),
            rto_max: Duration::from_millis(500),
            max_retransmits: 10,
            worker_eviction_timeout: Duration::from_secs(2),
            degraded_mode: DegradedMode::Abort,
            hot_standby: false,
            stream_id: 0,
        }
    }

    /// Sets the tenant stream id stamped on block frames (0 = legacy
    /// single-job layout).
    pub fn with_stream_id(mut self, id: u16) -> Self {
        self.stream_id = id;
        self
    }

    /// Sets a *fixed* retransmission timeout (disables adaptive RTO) —
    /// the pre-robustness behaviour, kept for ablations.
    pub fn with_fixed_rto(mut self, t: Duration) -> Self {
        self.retransmit_timeout = t;
        self.adaptive_rto = false;
        self
    }

    /// Sets the initial RTO used before the first RTT sample (adaptive
    /// mode stays on).
    pub fn with_initial_rto(mut self, t: Duration) -> Self {
        self.retransmit_timeout = t;
        self
    }

    /// Sets the adaptive-RTO clamp range.
    pub fn with_rto_bounds(mut self, floor: Duration, ceiling: Duration) -> Self {
        self.rto_min = floor;
        self.rto_max = ceiling;
        self
    }

    /// Sets the retry budget before a peer is declared dead.
    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }

    /// Sets the aggregator-side worker eviction timeout.
    pub fn with_eviction_timeout(mut self, t: Duration) -> Self {
        self.worker_eviction_timeout = t;
        self
    }

    /// Sets the post-eviction degradation policy.
    pub fn with_degraded_mode(mut self, m: DegradedMode) -> Self {
        self.degraded_mode = m;
        self
    }

    /// Enables hot-standby aggregator failover: one standby node per
    /// shard, fed by checkpoint deltas.
    pub fn with_hot_standby(mut self) -> Self {
        self.hot_standby = true;
        self
    }

    /// Sets the block size.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        self.block_size = bs;
        self
    }

    /// Sets the fusion width.
    pub fn with_fusion(mut self, w: usize) -> Self {
        self.fusion = w;
        self
    }

    /// Sets the number of aggregator shards.
    pub fn with_aggregators(mut self, a: usize) -> Self {
        self.num_aggregators = a;
        self
    }

    /// Sets the number of streams per shard.
    pub fn with_streams(mut self, s: usize) -> Self {
        self.streams_per_shard = s;
        self
    }

    /// Disables zero-block skipping (SwitchML*-style streaming dense
    /// aggregation).
    pub fn dense_streaming(mut self) -> Self {
        self.skip_zero_blocks = false;
        self
    }

    /// Enables numerically reproducible aggregation (§7): worker
    /// contributions are reduced in worker-id order.
    pub fn with_deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Validates invariants; call once at engine construction.
    pub fn validate(&self) {
        assert!(self.num_workers >= 1, "need at least one worker");
        assert!(self.num_aggregators >= 1, "need at least one aggregator");
        assert!(self.block_size >= 1, "block size must be positive");
        assert!(self.fusion >= 1, "fusion width must be positive");
        assert!(self.streams_per_shard >= 1, "need at least one stream");
        assert!(
            self.num_workers <= u16::MAX as usize,
            "worker id must fit u16"
        );
        assert!(
            self.total_streams() <= u16::MAX as usize,
            "stream id must fit u16"
        );
        assert!(self.max_retransmits >= 1, "retry budget must be positive");
        assert!(
            self.rto_min <= self.rto_max,
            "rto floor must not exceed ceiling"
        );
        assert!(
            self.rto_max > Duration::ZERO,
            "rto ceiling must be positive"
        );
    }

    /// The block partitioning implied by this config.
    pub fn block_spec(&self) -> BlockSpec {
        BlockSpec::new(self.block_size)
    }

    /// Total streams across all shards (`T`).
    pub fn total_streams(&self) -> usize {
        self.streams_per_shard * self.num_aggregators
    }

    /// Shard that serves stream `s` (streams interleave across shards).
    pub fn shard_of_stream(&self, s: usize) -> usize {
        s % self.num_aggregators
    }

    /// Transport node id of worker `w` (workers come first in the mesh).
    pub fn worker_node(&self, w: usize) -> u16 {
        debug_assert!(w < self.num_workers);
        w as u16
    }

    /// Transport node id of aggregator shard `a`.
    pub fn aggregator_node(&self, a: usize) -> u16 {
        debug_assert!(a < self.num_aggregators);
        (self.num_workers + a) as u16
    }

    /// Transport node id of shard `a`'s hot standby (only meaningful
    /// when [`OmniConfig::hot_standby`] is set).
    pub fn standby_node(&self, a: usize) -> u16 {
        debug_assert!(a < self.num_aggregators);
        (self.num_workers + self.num_aggregators + a) as u16
    }

    /// Total mesh size (workers + aggregator shards + standbys).
    pub fn mesh_size(&self) -> usize {
        let standbys = if self.hot_standby {
            self.num_aggregators
        } else {
            0
        };
        self.num_workers + self.num_aggregators + standbys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_valid() {
        let c = OmniConfig::new(8, 1 << 20);
        c.validate();
        assert_eq!(c.total_streams(), 16);
        assert_eq!(c.mesh_size(), 9);
    }

    #[test]
    fn node_id_layout() {
        let c = OmniConfig::new(4, 1024).with_aggregators(2);
        assert_eq!(c.worker_node(0), 0);
        assert_eq!(c.worker_node(3), 3);
        assert_eq!(c.aggregator_node(0), 4);
        assert_eq!(c.aggregator_node(1), 5);
        assert_eq!(c.mesh_size(), 6);
    }

    #[test]
    fn streams_interleave_across_shards() {
        let c = OmniConfig::new(2, 1024).with_aggregators(2).with_streams(2);
        assert_eq!(c.total_streams(), 4);
        assert_eq!(c.shard_of_stream(0), 0);
        assert_eq!(c.shard_of_stream(1), 1);
        assert_eq!(c.shard_of_stream(2), 0);
        assert_eq!(c.shard_of_stream(3), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_invalid() {
        OmniConfig::new(0, 10).validate();
    }

    #[test]
    fn hot_standby_extends_the_mesh() {
        let c = OmniConfig::new(4, 1024).with_aggregators(2);
        assert_eq!(c.mesh_size(), 6);
        let c = c.with_hot_standby();
        assert_eq!(c.mesh_size(), 8);
        assert_eq!(c.standby_node(0), 6);
        assert_eq!(c.standby_node(1), 7);
    }

    #[test]
    fn degraded_mode_parses() {
        use std::str::FromStr;
        assert_eq!(DegradedMode::from_str("abort"), Ok(DegradedMode::Abort));
        for s in ["drop", "drop_worker", "DropWorker"] {
            assert_eq!(DegradedMode::from_str(s), Ok(DegradedMode::DropWorker));
        }
        for s in ["rejoin", "Rejoin", "REJOIN"] {
            assert_eq!(DegradedMode::from_str(s), Ok(DegradedMode::Rejoin));
        }
        let err = DegradedMode::from_str("bogus").unwrap_err();
        assert!(err.contains("rejoin"), "{err}");
    }

    #[test]
    fn builders_apply() {
        let c = OmniConfig::new(2, 100)
            .with_block_size(64)
            .with_fusion(8)
            .with_streams(4)
            .with_stream_id(9)
            .dense_streaming();
        assert_eq!(c.block_size, 64);
        assert_eq!(c.fusion, 8);
        assert_eq!(c.streams_per_shard, 4);
        assert_eq!(c.stream_id, 9);
        assert!(!c.skip_zero_blocks);
    }
}
