//! Sparse key-value block protocol (paper §3.3, Algorithm 3).
//!
//! The input is a COO tensor per worker. Each packet carries a block of
//! `bs` key-value pairs plus `nextkey` — the sender's first key after the
//! block. The aggregator tracks every worker's `nextkey`, merges incoming
//! pairs into a keyed accumulator, and whenever the global minimum
//! `nextkey` advances past its `sent` watermark, multicasts the aggregated
//! pairs below the new watermark. A worker sends its next block exactly
//! when the announced watermark has caught up to its own next key — the
//! same look-ahead coordination as the dense block protocol, on the key
//! axis instead of the block-index axis.
//!
//! As in the paper, this extension is presented single-stream and without
//! loss recovery ("we do not consider stream parallelism or packet loss
//! recovery"); it runs over reliable transports.

use std::collections::BTreeMap;

use omnireduce_telemetry::{Counter, Telemetry};
use omnireduce_tensor::CooTensor;
use omnireduce_transport::message::INFINITY_KEY;
use omnireduce_transport::{
    codec, KvPacket, Message, NodeId, PacketKind, Transport, TransportError,
};

/// Geometry of a sparse key-value group: `num_workers` workers at node
/// ids `0..N` and a single aggregator at node id `N`.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of workers.
    pub num_workers: usize,
    /// Key-value pairs per packet (`bs` of Algorithm 3).
    pub pairs_per_packet: usize,
}

impl KvConfig {
    /// Creates a config; panics on a degenerate geometry.
    pub fn new(num_workers: usize, pairs_per_packet: usize) -> Self {
        assert!(num_workers >= 1, "need at least one worker");
        assert!(pairs_per_packet >= 1, "need at least one pair per packet");
        KvConfig {
            num_workers,
            pairs_per_packet,
        }
    }

    /// The aggregator's node id.
    pub fn aggregator_node(&self) -> u16 {
        self.num_workers as u16
    }

    /// Mesh size (workers + 1 aggregator).
    pub fn mesh_size(&self) -> usize {
        self.num_workers + 1
    }
}

/// Traffic counters for the KV worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Data packets sent.
    pub packets_sent: u64,
    /// Key-value pairs sent.
    pub pairs_sent: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
}

/// Fleet-wide `core.kv.*` registry mirrors of [`KvStats`] (detached
/// no-ops unless built via [`KvWorker::with_telemetry`]).
struct KvCounters {
    packets_sent: Counter,
    pairs_sent: Counter,
    bytes_sent: Counter,
}

impl KvCounters {
    fn detached() -> Self {
        KvCounters {
            packets_sent: Counter::detached(),
            pairs_sent: Counter::detached(),
            bytes_sent: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        KvCounters {
            packets_sent: telemetry.counter("core.kv.packets_sent"),
            pairs_sent: telemetry.counter("core.kv.pairs_sent"),
            bytes_sent: telemetry.counter("core.kv.bytes_sent"),
        }
    }
}

/// Worker side of Algorithm 3.
pub struct KvWorker<T: Transport> {
    transport: T,
    cfg: KvConfig,
    wid: u16,
    stats: KvStats,
    counters: KvCounters,
}

impl<T: Transport> KvWorker<T> {
    /// Creates the engine; the transport's node id is the worker id.
    pub fn new(transport: T, cfg: KvConfig) -> Self {
        let wid = transport.local_id().0;
        assert!(
            (wid as usize) < cfg.num_workers,
            "node {wid} is not a worker"
        );
        KvWorker {
            transport,
            cfg,
            wid,
            stats: KvStats::default(),
            counters: KvCounters::detached(),
        }
    }

    /// Like [`KvWorker::new`], but mirrors traffic counters into
    /// `telemetry`'s `core.kv.*` counters.
    pub fn with_telemetry(transport: T, cfg: KvConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(transport, cfg);
        w.counters = KvCounters::registered(telemetry);
        w
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Runs one sparse AllReduce: returns the merged (summed) COO tensor
    /// across all workers.
    pub fn allreduce(&mut self, input: &CooTensor) -> Result<CooTensor, TransportError> {
        let bs = self.cfg.pairs_per_packet;
        let keys = input.keys();
        let values = input.values();

        // Send the first block unconditionally (bootstraps the
        // aggregator's per-worker nextkey state).
        let mut cursor = keys.len().min(bs);
        let first_next = keys.get(cursor).map_or(INFINITY_KEY, |k| *k as u64);
        self.send_block(&keys[..cursor], &values[..cursor], first_next)?;

        let mut out_keys: Vec<u32> = Vec::new();
        let mut out_values: Vec<f32> = Vec::new();
        loop {
            let (_, msg) = self.transport.recv()?;
            let p = match msg {
                Message::Kv(p) if p.kind == PacketKind::Result => p,
                other => panic!("kv worker: unexpected {:?}", other.tag()),
            };
            // Results arrive in key order; append to the output.
            out_keys.extend_from_slice(&p.keys);
            out_values.extend_from_slice(&p.values);
            if p.nextkey == INFINITY_KEY {
                break;
            }
            // Send the next block iff the watermark reached our next key
            // (Algorithm 3 line 10).
            if cursor < keys.len() && p.nextkey >= keys[cursor] as u64 {
                let end = (cursor + bs).min(keys.len());
                let next = keys.get(end).map_or(INFINITY_KEY, |k| *k as u64);
                self.send_block(&keys[cursor..end], &values[cursor..end], next)?;
                cursor = end;
            }
        }
        Ok(CooTensor::from_pairs(input.len(), out_keys, out_values))
    }

    fn send_block(
        &mut self,
        keys: &[u32],
        values: &[f32],
        nextkey: u64,
    ) -> Result<(), TransportError> {
        let msg = Message::Kv(KvPacket {
            kind: PacketKind::Data,
            wid: self.wid,
            keys: keys.to_vec(),
            values: values.to_vec(),
            nextkey,
        });
        let wire_bytes = codec::encoded_len(&msg) as u64;
        self.stats.packets_sent += 1;
        self.stats.pairs_sent += keys.len() as u64;
        self.stats.bytes_sent += wire_bytes;
        self.counters.packets_sent.inc();
        self.counters.pairs_sent.add(keys.len() as u64);
        self.counters.bytes_sent.add(wire_bytes);
        self.transport
            .send(NodeId(self.cfg.aggregator_node()), &msg)
    }

    /// Announces departure to the aggregator.
    pub fn shutdown(self) -> Result<(), TransportError> {
        self.transport
            .send(NodeId(self.cfg.aggregator_node()), &Message::Shutdown)
    }
}

/// Aggregator side of Algorithm 3.
pub struct KvAggregator<T: Transport> {
    transport: T,
    cfg: KvConfig,
    /// Keyed accumulator ("a hashtable or similar keyed-memory
    /// abstraction", §3.3) — a BTreeMap so watermark extraction is a
    /// range scan.
    acc: BTreeMap<u32, f32>,
    /// Per-worker announced nextkey; `None` = −∞ (not yet reported).
    nextkey: Vec<Option<u64>>,
    /// Watermark: all aggregated keys below this have been multicast.
    sent: u64,
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
}

impl<T: Transport> KvAggregator<T> {
    /// Creates the engine; the transport's node id must be the
    /// aggregator's.
    pub fn new(transport: T, cfg: KvConfig) -> Self {
        assert_eq!(
            transport.local_id().0,
            cfg.aggregator_node(),
            "not the aggregator node"
        );
        let n = cfg.num_workers;
        KvAggregator {
            transport,
            cfg,
            acc: BTreeMap::new(),
            nextkey: vec![None; n],
            sent: 0,
            departed: vec![false; n],
            goodbyes: 0,
        }
    }

    /// Serves rounds until every worker says `Shutdown`.
    pub fn run(&mut self) -> Result<(), TransportError> {
        loop {
            let (from, msg) = self.transport.recv()?;
            match msg {
                Message::Kv(p) if p.kind == PacketKind::Data => self.handle(p)?,
                Message::Shutdown => {
                    if !self.departed[from.index()] {
                        self.departed[from.index()] = true;
                        self.goodbyes += 1;
                    }
                    if self.goodbyes == self.cfg.num_workers {
                        return Ok(());
                    }
                }
                other => panic!("kv aggregator: unexpected {:?}", other.tag()),
            }
        }
    }

    fn handle(&mut self, p: KvPacket) -> Result<(), TransportError> {
        for (k, v) in p.keys.iter().zip(&p.values) {
            *self.acc.entry(*k).or_insert(0.0) += *v;
        }
        self.nextkey[p.wid as usize] = Some(p.nextkey);
        let Some(send_up_to) = self
            .nextkey
            .iter()
            .copied()
            .reduce(|a, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                _ => None,
            })
            .flatten()
        else {
            return Ok(()); // someone still at −∞
        };
        if send_up_to > self.sent {
            // Extract aggregated pairs in [sent, send_up_to).
            let mut keys = Vec::new();
            let mut values = Vec::new();
            let hi = send_up_to.min(u32::MAX as u64 + 1);
            let lo = self.sent.min(u32::MAX as u64) as u32;
            for (k, v) in self.acc.range(lo..) {
                if (*k as u64) >= hi {
                    break;
                }
                keys.push(*k);
                values.push(*v);
            }
            let done = send_up_to == INFINITY_KEY;
            let msg = Message::Kv(KvPacket {
                kind: PacketKind::Result,
                wid: u16::MAX,
                keys,
                values,
                nextkey: send_up_to,
            });
            let workers: Vec<NodeId> = (0..self.cfg.num_workers)
                .filter(|w| !self.departed[*w])
                .map(|w| NodeId(w as u16))
                .collect();
            for w in &workers {
                crate::wire::send_best_effort(&self.transport, *w, &msg)?;
            }
            self.sent = send_up_to;
            if done {
                // Round complete: reset for the next tensor.
                self.acc.clear();
                self.nextkey.iter_mut().for_each(|n| *n = None);
                self.sent = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnireduce_transport::ChannelNetwork;
    use std::thread;

    /// Runs a KV group over channels, one thread per node.
    fn run_kv(cfg: &KvConfig, inputs: Vec<CooTensor>) -> Vec<CooTensor> {
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let agg_t = net.endpoint(NodeId(cfg.aggregator_node()));
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            KvAggregator::new(agg_t, agg_cfg).run().unwrap();
        });
        let mut handles = Vec::new();
        for (w, input) in inputs.into_iter().enumerate() {
            let t = net.endpoint(NodeId(w as u16));
            let cfg = cfg.clone();
            handles.push(thread::spawn(move || {
                let mut worker = KvWorker::new(t, cfg);
                let out = worker.allreduce(&input).unwrap();
                worker.shutdown().unwrap();
                out
            }));
        }
        let outs: Vec<CooTensor> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        agg.join().unwrap();
        outs
    }

    fn coo(len: usize, pairs: &[(u32, f32)]) -> CooTensor {
        let (k, v): (Vec<u32>, Vec<f32>) = pairs.iter().copied().unzip();
        CooTensor::from_pairs(len, k, v)
    }

    #[test]
    fn two_workers_disjoint_keys() {
        let cfg = KvConfig::new(2, 2);
        let a = coo(100, &[(1, 1.0), (5, 2.0), (9, 3.0)]);
        let b = coo(100, &[(2, 10.0), (7, 20.0)]);
        let expect = a.merge_sum(&b);
        let outs = run_kv(&cfg, vec![a, b]);
        for o in outs {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn overlapping_keys_sum() {
        let cfg = KvConfig::new(3, 2);
        let a = coo(50, &[(0, 1.0), (10, 1.0), (20, 1.0)]);
        let b = coo(50, &[(10, 2.0), (30, 2.0)]);
        let c = coo(50, &[(0, 4.0), (10, 4.0), (30, 4.0), (40, 4.0)]);
        let expect = a.merge_sum(&b).merge_sum(&c);
        let outs = run_kv(&cfg, vec![a, b, c]);
        for o in outs {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn empty_worker_participates() {
        let cfg = KvConfig::new(2, 4);
        let a = coo(30, &[(3, 5.0), (4, 6.0)]);
        let b = CooTensor::empty(30);
        let outs = run_kv(&cfg, vec![a.clone(), b]);
        for o in outs {
            assert_eq!(o, a);
        }
    }

    #[test]
    fn all_empty_workers() {
        let cfg = KvConfig::new(2, 4);
        let outs = run_kv(&cfg, vec![CooTensor::empty(10), CooTensor::empty(10)]);
        for o in outs {
            assert_eq!(o.nnz(), 0);
        }
    }

    #[test]
    fn multi_packet_streams() {
        // Large enough inputs to require many blocks per worker.
        let cfg = KvConfig::new(2, 3);
        let a_pairs: Vec<(u32, f32)> = (0..40).map(|i| (i * 3, i as f32)).collect();
        let b_pairs: Vec<(u32, f32)> = (0..40).map(|i| (i * 2 + 1, 1.0)).collect();
        let a = coo(200, &a_pairs);
        let b = coo(200, &b_pairs);
        let expect = a.merge_sum(&b);
        let outs = run_kv(&cfg, vec![a, b]);
        for o in outs {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn back_to_back_rounds_reset_state() {
        let cfg = KvConfig::new(2, 2);
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let agg_t = net.endpoint(NodeId(cfg.aggregator_node()));
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            KvAggregator::new(agg_t, agg_cfg).run().unwrap();
        });
        let inputs = [
            vec![coo(20, &[(1, 1.0)]), coo(20, &[(2, 2.0)])],
            vec![coo(20, &[(5, 5.0)]), coo(20, &[(5, 7.0)])],
        ];
        let mut handles = Vec::new();
        for w in 0..2 {
            let t = net.endpoint(NodeId(w as u16));
            let cfg = cfg.clone();
            let my_inputs: Vec<CooTensor> = inputs.iter().map(|round| round[w].clone()).collect();
            handles.push(thread::spawn(move || {
                let mut worker = KvWorker::new(t, cfg);
                let outs: Vec<CooTensor> = my_inputs
                    .iter()
                    .map(|i| worker.allreduce(i).unwrap())
                    .collect();
                worker.shutdown().unwrap();
                outs
            }));
        }
        let results: Vec<Vec<CooTensor>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        agg.join().unwrap();
        let expect0 = inputs[0][0].merge_sum(&inputs[0][1]);
        let expect1 = inputs[1][0].merge_sum(&inputs[1][1]);
        for r in &results {
            assert_eq!(r[0], expect0);
            assert_eq!(r[1], expect1);
        }
    }

    #[test]
    fn stats_count_pairs() {
        let cfg = KvConfig::new(1, 2);
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let agg_t = net.endpoint(NodeId(cfg.aggregator_node()));
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            KvAggregator::new(agg_t, agg_cfg).run().unwrap();
        });
        let t = net.endpoint(NodeId(0));
        let mut worker = KvWorker::new(t, cfg);
        let input = coo(20, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let out = worker.allreduce(&input).unwrap();
        assert_eq!(out, input);
        let stats = worker.stats();
        assert_eq!(stats.pairs_sent, 3);
        assert_eq!(stats.packets_sent, 2); // 2 + 1 pairs
        worker.shutdown().unwrap();
        agg.join().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use omnireduce_transport::ChannelNetwork;
    use proptest::prelude::*;
    use std::thread;

    fn run_kv_group(cfg: &KvConfig, inputs: Vec<CooTensor>) -> Vec<CooTensor> {
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let agg_t = net.endpoint(NodeId(cfg.aggregator_node()));
        let agg_cfg = cfg.clone();
        let agg = thread::spawn(move || {
            KvAggregator::new(agg_t, agg_cfg).run().unwrap();
        });
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(w, input)| {
                let t = net.endpoint(NodeId(w as u16));
                let cfg = cfg.clone();
                thread::spawn(move || {
                    let mut worker = KvWorker::new(t, cfg);
                    let out = worker.allreduce(&input).unwrap();
                    worker.shutdown().unwrap();
                    out
                })
            })
            .collect();
        let outs = handles.into_iter().map(|h| h.join().unwrap()).collect();
        agg.join().unwrap();
        outs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Algorithm 3 computes the key-union merge-sum for arbitrary
        /// worker key sets and packet sizes.
        #[test]
        fn prop_kv_allreduce_merges(
            n in 1usize..4,
            bs in 1usize..6,
            len in 10usize..120,
            keysets in prop::collection::vec(
                prop::collection::btree_set(0u32..120, 0..30),
                1..4,
            ),
        ) {
            let n = n.min(keysets.len()).max(1);
            let cfg = KvConfig::new(n, bs);
            let inputs: Vec<CooTensor> = (0..n)
                .map(|w| {
                    let keys: Vec<u32> = keysets[w % keysets.len()]
                        .iter()
                        .copied()
                        .filter(|k| (*k as usize) < len)
                        .collect();
                    let values: Vec<f32> =
                        keys.iter().map(|k| *k as f32 + w as f32).collect();
                    CooTensor::from_pairs(len, keys, values)
                })
                .collect();
            let mut expect = CooTensor::empty(len);
            for i in &inputs {
                expect = expect.merge_sum(i);
            }
            for out in run_kv_group(&cfg, inputs) {
                prop_assert_eq!(out.keys(), expect.keys());
                for (a, b) in out.values().iter().zip(expect.values()) {
                    prop_assert!((a - b).abs() < 1e-4);
                }
            }
        }
    }
}
