//! Generalized collectives on the OmniReduce machinery (§7).
//!
//! The paper observes that the block-aggregation algorithm directly
//! yields AllGather and Broadcast:
//!
//! * *AllGather* is a sparse AllReduce with no block overlap — worker `w`
//!   contributes its data at offset `w · len` of a `N · len` tensor that
//!   is zero everywhere else, so no two workers ever transmit the same
//!   block and the "sum" is pure concatenation.
//! * *Broadcast* is the degenerate case where `N − 1` workers contribute
//!   all-zero tensors: only the root's blocks travel, and the aggregator's
//!   multicast delivers them to everyone.
//!
//! Both wrappers run on an unmodified [`OmniWorker`] group; zero blocks
//! are skipped, so Broadcast of a sparse tensor moves only its non-zero
//! blocks — the efficiency win the paper points out.

use omnireduce_tensor::Tensor;
use omnireduce_transport::{Transport, TransportError};

use crate::worker::OmniWorker;

/// Broadcast: after the call every worker's `tensor` equals the root's
/// input. Non-root workers' inputs are ignored (overwritten).
///
/// The group's `tensor_len` must equal `tensor.len()`.
pub fn broadcast<T: Transport>(
    worker: &mut OmniWorker<T>,
    tensor: &mut Tensor,
    root: u16,
) -> Result<(), TransportError> {
    if worker.wid() != root {
        tensor.clear();
    }
    worker.allreduce(tensor)
}

/// AllGather: every worker contributes `local` (length `L`) and receives
/// the concatenation of all workers' contributions (length `N · L`).
///
/// The group's `tensor_len` must equal `N · local.len()`.
pub fn allgather<T: Transport>(
    worker: &mut OmniWorker<T>,
    local: &Tensor,
    num_workers: usize,
) -> Result<Tensor, TransportError> {
    let len = local.len();
    let mut big = Tensor::zeros(len * num_workers);
    big.copy_slice_at(worker.wid() as usize * len, local.as_slice());
    worker.allreduce(&mut big)?;
    Ok(big)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OmniConfig;
    use omnireduce_transport::{ChannelNetwork, NodeId};
    use std::thread;

    fn spawn_group<F, R>(cfg: &OmniConfig, f: F) -> Vec<R>
    where
        F: Fn(OmniWorker<omnireduce_transport::channel::ChannelTransport>) -> R
            + Send
            + Sync
            + Clone
            + 'static,
        R: Send + 'static,
    {
        let mut net = ChannelNetwork::new(cfg.mesh_size());
        let mut aggs = Vec::new();
        for a in 0..cfg.num_aggregators {
            let t = net.endpoint(NodeId(cfg.aggregator_node(a)));
            let cfg = cfg.clone();
            aggs.push(thread::spawn(move || {
                crate::aggregator::OmniAggregator::new(t, cfg)
                    .run()
                    .unwrap();
            }));
        }
        let mut workers = Vec::new();
        for w in 0..cfg.num_workers {
            let t = net.endpoint(NodeId(cfg.worker_node(w)));
            let cfg = cfg.clone();
            let f = f.clone();
            workers.push(thread::spawn(move || f(OmniWorker::new(t, cfg))));
        }
        let out: Vec<R> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        for a in aggs {
            a.join().unwrap();
        }
        out
    }

    #[test]
    fn broadcast_delivers_root_tensor() {
        let cfg = OmniConfig::new(3, 64)
            .with_block_size(4)
            .with_fusion(2)
            .with_streams(2);
        let root_data: Vec<f32> = (0..64)
            .map(|i| if i % 3 == 0 { i as f32 } else { 0.0 })
            .collect();
        let expect = Tensor::from_vec(root_data.clone());
        let outs = spawn_group(&cfg, move |mut worker| {
            let mut t = if worker.wid() == 1 {
                Tensor::from_vec(root_data.clone())
            } else {
                // Garbage that must be overwritten.
                Tensor::from_vec(vec![9.0; 64])
            };
            let r = broadcast(&mut worker, &mut t, 1);
            worker.shutdown().unwrap();
            r.unwrap();
            t
        });
        for o in outs {
            assert!(o.approx_eq(&expect, 1e-6));
        }
    }

    #[test]
    fn broadcast_of_sparse_tensor_skips_zero_blocks() {
        let cfg = OmniConfig::new(2, 64)
            .with_block_size(4)
            .with_fusion(1)
            .with_streams(1);
        let mut root_data = vec![0.0f32; 64];
        root_data[17] = 5.0; // a single non-zero block
        let outs = spawn_group(&cfg, move |mut worker| {
            let mut t = if worker.wid() == 0 {
                Tensor::from_vec(root_data.clone())
            } else {
                Tensor::zeros(64)
            };
            broadcast(&mut worker, &mut t, 0).unwrap();
            let stats = worker.stats();
            worker.shutdown().unwrap();
            (t, stats)
        });
        for (t, _) in &outs {
            assert_eq!(t[17], 5.0);
        }
        // Root sends first row (1 block) + the 1 non-zero block at most;
        // non-root sends only the unconditional first row.
        assert!(
            outs[0].1.blocks_sent <= 2,
            "root sent {}",
            outs[0].1.blocks_sent
        );
        assert!(
            outs[1].1.blocks_sent <= 1,
            "peer sent {}",
            outs[1].1.blocks_sent
        );
    }

    #[test]
    fn allgather_concatenates() {
        let n = 3;
        let local_len = 16;
        let cfg = OmniConfig::new(n, n * local_len)
            .with_block_size(4)
            .with_fusion(2)
            .with_streams(2);
        let outs = spawn_group(&cfg, move |mut worker| {
            let local = Tensor::from_vec(
                (0..local_len)
                    .map(|i| (worker.wid() as f32) * 100.0 + i as f32)
                    .collect(),
            );
            let r = allgather(&mut worker, &local, n).unwrap();
            worker.shutdown().unwrap();
            r
        });
        let expect: Vec<f32> = (0..n)
            .flat_map(|w| (0..local_len).map(move |i| (w as f32) * 100.0 + i as f32))
            .collect();
        let expect = Tensor::from_vec(expect);
        for o in outs {
            assert!(o.approx_eq(&expect, 1e-6));
        }
    }
}

#[cfg(test)]
mod sharded_tests {

    use crate::config::OmniConfig;
    use crate::testing::run_group;
    use omnireduce_tensor::Tensor;

    /// Broadcast and AllGather semantics survive aggregator sharding
    /// (blocks of one logical operation split across shards).
    #[test]
    fn broadcast_semantics_with_multiple_shards() {
        let n = 3;
        let len = 256;
        let cfg = OmniConfig::new(n, len)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_aggregators(2);
        // Emulate broadcast through run_group: non-roots contribute zeros.
        let root_data: Vec<f32> = (0..len)
            .map(|i| if i % 5 == 0 { i as f32 } else { 0.0 })
            .collect();
        let mut inputs = vec![Tensor::zeros(len); n];
        inputs[2] = Tensor::from_vec(root_data.clone());
        let result = run_group(&cfg, inputs.into_iter().map(|t| vec![t]).collect());
        let expect = Tensor::from_vec(root_data);
        for outs in &result.outputs {
            assert!(outs[0].approx_eq(&expect, 1e-6));
        }
    }

    #[test]
    fn allgather_semantics_with_multiple_shards() {
        let n = 4;
        let local_len = 32;
        let cfg = OmniConfig::new(n, n * local_len)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_aggregators(3);
        let mut inputs = Vec::new();
        for w in 0..n {
            let mut t = Tensor::zeros(n * local_len);
            for i in 0..local_len {
                t[w * local_len + i] = (w * 100 + i) as f32 + 1.0;
            }
            inputs.push(t);
        }
        let expect: Vec<f32> = (0..n)
            .flat_map(|w| (0..local_len).map(move |i| (w * 100 + i) as f32 + 1.0))
            .collect();
        let expect = Tensor::from_vec(expect);
        let result = run_group(&cfg, inputs.into_iter().map(|t| vec![t]).collect());
        for outs in &result.outputs {
            assert!(outs[0].approx_eq(&expect, 1e-6));
        }
    }
}
