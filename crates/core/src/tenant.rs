//! Multi-tenant aggregation service (DESIGN §15).
//!
//! Every engine in this crate was born one-shot: one job, one tensor
//! stream, fixed membership. The north star is an aggregator fleet
//! serving many users at once, so this module turns the sharded
//! deployment into a *daemon-shaped service*:
//!
//! * [`TenantService`] — a long-running fleet of `S` aggregator shards.
//!   Each shard owns one shared ingress port and a demux thread that
//!   routes frames to per-job protocol engines by the **tenant stream
//!   id** carried in every tagged Block frame
//!   ([`omnireduce_transport::codec`]: disc 7, stream at offset 8).
//!   Stream `0` is reserved for the legacy single-job deployment and is
//!   never assigned to a tenant, so pre-tenancy byte layouts survive
//!   unchanged.
//! * [`JobRegistry`] — capacity-based admission control: a job is
//!   admitted only while the live-tenant cap
//!   (`OMNIREDUCE_MAX_TENANTS`), the slot pool, and the node-id space
//!   all have room. Admission assigns the stream id, carves per-worker
//!   ingress node ids, registers demux routes, and spawns one protocol
//!   engine per shard — [`OmniAggregator`] or [`RecoveryAggregator`]
//!   per [`TenantSpec::engine`], each running over a virtual port with
//!   the tenant's own geometry.
//! * [`SlotScheduler`] / [`WfqState`] — the shared slot pool (the
//!   paper's bounded switch slot table, DESIGN §1) under weighted fair
//!   queueing. A tenant acquires its round's slot need before starting
//!   a round and releases it after; under contention grants follow
//!   virtual finish tags (weights from [`TenantSpec::weight`] or
//!   `OMNIREDUCE_TENANT_WEIGHTS`), with strict head-of-line blocking so
//!   no tenant starves. Byte quotas ([`TenantSpec::quota`]) convert
//!   overuse into *virtual-time debt* — future grants are delayed
//!   (backpressure), payloads are never touched (no corruption).
//! * [`TenantHandle`] — one admitted job. `run_lossless` /
//!   `run_recovery` drive the tenant's workers over virtual lanes,
//!   round-locked with the scheduler, and join the per-shard engines on
//!   completion. Per-tenant chaos ([`TenantSpec::plan`]) wraps the
//!   tenant's *virtual* endpoints, whose node ids match a solo
//!   deployment of the same geometry — so a tenant's keyed fates are
//!   identical whether it runs alone or next to a thousand neighbours
//!   (the isolation invariant the `tenant_interleave` battery checks
//!   bit-for-bit).
//!
//! Isolation model: tenants never share protocol state. The shared
//! surfaces are (a) the per-shard ingress queue + demux thread, which
//! only routes, (b) the slot pool, which only delays, and (c) the
//! node-id space, handed out disjointly at admission. Telemetry is
//! namespaced per tenant: every handle owns a private
//! [`Telemetry`] registry, while the service keeps its own
//! `core.tenant.*` counters for admission, demux and scheduling events.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use omnireduce_telemetry::{Counter, Telemetry, TelemetrySnapshot};
use omnireduce_tensor::Tensor;
use omnireduce_transport::fault::{ChaosNetwork, FaultPlan};
use omnireduce_transport::{Message, NodeId, ShardBond, Transport, TransportError};

use crate::aggregator::{AggregatorStats, OmniAggregator};
use crate::config::OmniConfig;
use crate::error::ProtocolError;
use crate::recovery::{RecoveryAggregator, RecoveryAggregatorStats, RecoveryStats, RecoveryWorker};
use crate::shard::{ShardMap, ShardedWorker};
use crate::worker::WorkerStats;

/// Fixed-point scale of the virtual clock (per-slot cost is
/// `SCALE / weight`, so weights up to `SCALE` stay meaningful).
const WFQ_SCALE: u64 = 1 << 20;

/// Demux poll slice: how often a shard's router rechecks the stop flag.
const DEMUX_POLL: Duration = Duration::from_millis(10);

/// Default live-tenant cap when `OMNIREDUCE_MAX_TENANTS` is unset.
pub const DEFAULT_MAX_TENANTS: usize = 256;

// ---------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------

/// Parses `OMNIREDUCE_MAX_TENANTS`: a positive integer, else the
/// default. Zero and garbage fall back rather than bricking the
/// service at construction.
pub fn parse_max_tenants(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_TENANTS)
}

/// Parses `OMNIREDUCE_TENANT_WEIGHTS`: a comma-separated cycle of
/// positive integers applied (in admission order) to tenants that did
/// not pin a weight. Empty/invalid entries are skipped; an empty result
/// means "everyone weighs 1".
pub fn parse_tenant_weights(raw: Option<&str>) -> Vec<u64> {
    raw.map(|s| {
        s.split(',')
            .filter_map(|tok| tok.trim().parse::<u64>().ok())
            .filter(|&w| w > 0)
            .collect()
    })
    .unwrap_or_default()
}

// ---------------------------------------------------------------------
// Weighted-fair slot scheduler
// ---------------------------------------------------------------------

/// The deterministic WFQ core: a pure state machine over the shared
/// slot pool, driven by `enqueue` / `pump` / `complete`. The fairness
/// property battery exercises this type directly (no threads, no
/// clocks), while [`SlotScheduler`] wraps it for the live service.
///
/// Invariants:
/// * **Strict head-of-line** — `pump` grants pending requests in
///   virtual-finish-tag order and stops at the first one that does not
///   fit the free pool. No bypass means no starvation: once a request
///   holds the minimum tag it is granted as soon as capacity frees.
/// * **Weighted shares** — a request for `n` slots advances its
///   tenant's finish tag by `n · SCALE / weight`, so backlogged
///   tenants are granted slots proportionally to their weights.
/// * **Quota debt** — `complete` converts bytes beyond the tenant's
///   per-round quota into extra virtual time charged to the *next*
///   enqueue. Overusers drift later in the grant order; their frames
///   are never dropped or altered.
pub struct WfqState {
    capacity: u64,
    free: u64,
    vclock: u64,
    next_ticket: u64,
    tenants: HashMap<u16, TenantSched>,
    pending: Vec<PendingReq>,
    /// Tickets granted but not yet observed by their owner — the
    /// blocking facade's waiters claim theirs via [`take_granted`]
    /// (`pump` may run in *any* thread holding the lock, so the grant
    /// record must live in the shared state, not a caller's stack).
    ///
    /// [`take_granted`]: WfqState::take_granted
    granted_tickets: std::collections::HashSet<u64>,
    /// Total grants issued (mirrors `core.tenant.sched.grants`).
    grants: u64,
}

struct TenantSched {
    weight: u64,
    /// Virtual finish tag of this tenant's last enqueued request.
    finish: u64,
    /// Bytes-per-round cap; `None` = unmetered.
    quota: Option<u64>,
    /// Virtual time owed for past quota overuse, folded into the next
    /// request's tag.
    debt: u64,
    /// Times `complete` found the tenant over quota.
    throttles: u64,
}

struct PendingReq {
    ticket: u64,
    stream: u16,
    slots: u64,
    /// Virtual start time (the grant advances the clock to this, per
    /// start-time fair queueing — advancing to the *finish* tag would
    /// let one large-cost grant catapult the clock past every
    /// backlogged tenant's finish and collapse shares to round-robin).
    start: u64,
    tag: u64,
}

/// One granted request, in grant order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Ticket returned by [`WfqState::enqueue`].
    pub ticket: u64,
    /// The granted tenant's stream id.
    pub stream: u16,
    /// Slots handed out (returned via [`WfqState::complete`]).
    pub slots: u64,
}

impl WfqState {
    /// A pool of `capacity` slots, no tenants.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "slot pool must not be empty");
        WfqState {
            capacity,
            free: capacity,
            vclock: 0,
            next_ticket: 0,
            tenants: HashMap::new(),
            pending: Vec::new(),
            granted_tickets: std::collections::HashSet::new(),
            grants: 0,
        }
    }

    /// Registers a tenant before its first request.
    ///
    /// # Panics
    /// Panics on a zero weight or a duplicate stream.
    pub fn register(&mut self, stream: u16, weight: u64, quota: Option<u64>) {
        assert!(weight > 0, "tenant weight must be positive");
        let prev = self.tenants.insert(
            stream,
            TenantSched {
                weight,
                finish: 0,
                quota,
                debt: 0,
                throttles: 0,
            },
        );
        assert!(prev.is_none(), "stream {stream} registered twice");
    }

    /// Removes a tenant; its pending requests (if any) are dropped.
    pub fn deregister(&mut self, stream: u16) {
        self.tenants.remove(&stream);
        self.pending.retain(|p| p.stream != stream);
    }

    /// Queues a request for `slots` slots and returns its ticket. The
    /// finish tag is fixed here (WFQ start = max of the virtual clock
    /// and the tenant's previous finish), so arrival order inside one
    /// tenant is FIFO and quota debt lands on exactly one request.
    pub fn enqueue(&mut self, stream: u16, slots: u64) -> u64 {
        assert!(slots > 0, "a round needs at least one slot");
        assert!(
            slots <= self.capacity,
            "request for {slots} slots exceeds the pool ({})",
            self.capacity
        );
        let t = self
            .tenants
            .get_mut(&stream)
            .unwrap_or_else(|| panic!("stream {stream} not registered"));
        let start = self.vclock.max(t.finish);
        let cost = slots * WFQ_SCALE / t.weight + t.debt;
        t.debt = 0;
        let tag = start + cost;
        t.finish = tag;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push(PendingReq {
            ticket,
            stream,
            slots,
            start,
            tag,
        });
        ticket
    }

    /// Grants every head-of-line request that fits the free pool, in
    /// finish-tag order (ties broken by arrival), and returns them in
    /// grant order. Stops at the first request that does not fit —
    /// later, smaller requests never jump the queue.
    pub fn pump(&mut self) -> Vec<Grant> {
        let mut granted = Vec::new();
        loop {
            let head = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| (p.tag, p.ticket))
                .map(|(i, _)| i);
            let Some(i) = head else { break };
            if self.pending[i].slots > self.free {
                break;
            }
            let p = self.pending.remove(i);
            self.free -= p.slots;
            self.vclock = self.vclock.max(p.start);
            self.grants += 1;
            self.granted_tickets.insert(p.ticket);
            granted.push(Grant {
                ticket: p.ticket,
                stream: p.stream,
                slots: p.slots,
            });
        }
        granted
    }

    /// Returns `slots` to the pool and meters `bytes` against the
    /// tenant's quota; overuse becomes virtual-time debt on its next
    /// request. Returns `true` when the round was throttled.
    pub fn complete(&mut self, stream: u16, slots: u64, bytes: u64) -> bool {
        self.free += slots;
        assert!(self.free <= self.capacity, "double release");
        let Some(t) = self.tenants.get_mut(&stream) else {
            return false;
        };
        match t.quota {
            Some(q) if bytes > q => {
                // Charge the overshoot at the tenant's own rate: a round
                // that used 2× its quota costs one extra round of
                // virtual time, scaling linearly.
                let over = bytes - q;
                let base = u128::from(slots) * u128::from(WFQ_SCALE) / u128::from(t.weight);
                let penalty = (base * u128::from(over) / u128::from(q.max(1))) as u64;
                t.debt = t.debt.saturating_add(penalty.max(1));
                t.throttles += 1;
                true
            }
            _ => false,
        }
    }

    /// Claims `ticket`'s grant if one was issued (by any pumper) and
    /// not yet observed. The blocking facade's wait loop turns on this.
    pub fn take_granted(&mut self, ticket: u64) -> bool {
        self.granted_tickets.remove(&ticket)
    }

    /// Free slots right now.
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Queued (not yet granted) requests.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Outstanding quota debt of `stream`, in virtual time.
    pub fn debt(&self, stream: u16) -> u64 {
        self.tenants.get(&stream).map_or(0, |t| t.debt)
    }

    /// Times `stream` was found over quota.
    pub fn throttles(&self, stream: u16) -> u64 {
        self.tenants.get(&stream).map_or(0, |t| t.throttles)
    }
}

/// Thread-safe blocking facade over [`WfqState`] for the live service:
/// `acquire` parks the calling tenant until its request is granted,
/// `release` returns the slots and wakes the queue.
pub struct SlotScheduler {
    state: Mutex<WfqState>,
    cv: Condvar,
    grants: Counter,
    throttles: Counter,
}

impl SlotScheduler {
    /// A scheduler over `capacity` slots with detached counters.
    pub fn new(capacity: u64) -> Self {
        Self::with_counters(capacity, Counter::detached(), Counter::detached())
    }

    fn with_counters(capacity: u64, grants: Counter, throttles: Counter) -> Self {
        SlotScheduler {
            state: Mutex::new(WfqState::new(capacity)),
            cv: Condvar::new(),
            grants,
            throttles,
        }
    }

    /// Registers a tenant (see [`WfqState::register`]).
    pub fn register(&self, stream: u16, weight: u64, quota: Option<u64>) {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .register(stream, weight, quota);
    }

    /// Deregisters a tenant and wakes waiters (capacity bookkeeping may
    /// have changed shape).
    pub fn deregister(&self, stream: u16) {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .deregister(stream);
        self.cv.notify_all();
    }

    /// Blocks until the scheduler grants `slots` to `stream`.
    pub fn acquire(&self, stream: u16, slots: u64) {
        let mut st = self.state.lock().expect("scheduler poisoned");
        let ticket = st.enqueue(stream, slots);
        loop {
            // Any thread holding the lock may pump grants for *other*
            // tickets; those land in the shared granted set, and their
            // owners claim them after the wake-up below.
            let pumped = st.pump().len();
            self.grants.add(pumped as u64);
            if pumped > 0 {
                self.cv.notify_all();
            }
            if st.take_granted(ticket) {
                return;
            }
            st = self.cv.wait(st).expect("scheduler poisoned");
        }
    }

    /// Returns `slots` and meters `bytes` against the quota.
    pub fn release(&self, stream: u16, slots: u64, bytes: u64) {
        let throttled = self
            .state
            .lock()
            .expect("scheduler poisoned")
            .complete(stream, slots, bytes);
        if throttled {
            self.throttles.inc();
        }
        self.cv.notify_all();
    }

    /// Times `stream` was found over quota (test/diagnostic hook).
    pub fn throttles_of(&self, stream: u16) -> u64 {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .throttles(stream)
    }
}

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------

/// Which protocol engine serves a tenant's shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEngine {
    /// Algorithm 1 over reliable lanes ([`OmniAggregator`]).
    Lossless,
    /// Algorithm 2 with retransmission ([`RecoveryAggregator`]).
    Recovery,
}

/// Everything a job brings to admission.
pub struct TenantSpec {
    /// The tenant's own geometry: `num_workers`, tensor length, block
    /// size, fusion width, streams per shard. `num_aggregators` must
    /// equal the service's shard count, and `hot_standby` must be off
    /// (the service owns availability, not the tenant).
    pub cfg: OmniConfig,
    /// Engine flavour for this job's per-shard aggregators.
    pub engine: TenantEngine,
    /// WFQ weight. `0` = take the next entry of
    /// `OMNIREDUCE_TENANT_WEIGHTS` (cycled), or 1 when unset.
    pub weight: u64,
    /// Bytes-per-round cap; overuse delays future grants
    /// (backpressure), never corrupts frames.
    pub quota: Option<u64>,
    /// Per-tenant chaos plan, applied to the tenant's *virtual*
    /// endpoints on both sides — node ids match a solo run of the same
    /// geometry, so keyed fates replay identically.
    pub plan: Option<FaultPlan>,
}

impl TenantSpec {
    /// A lossless tenant with default weight, no quota, no chaos.
    pub fn lossless(cfg: OmniConfig) -> Self {
        TenantSpec {
            cfg,
            engine: TenantEngine::Lossless,
            weight: 0,
            quota: None,
            plan: None,
        }
    }

    /// A recovery tenant with default weight, no quota, no chaos.
    pub fn recovery(cfg: OmniConfig) -> Self {
        TenantSpec {
            cfg,
            engine: TenantEngine::Recovery,
            weight: 0,
            quota: None,
            plan: None,
        }
    }

    /// Pins the WFQ weight.
    pub fn with_weight(mut self, w: u64) -> Self {
        self.weight = w;
        self
    }

    /// Caps wire bytes per round.
    pub fn with_quota(mut self, bytes_per_round: u64) -> Self {
        self.quota = Some(bytes_per_round);
        self
    }

    /// Attaches a chaos plan to the tenant's virtual endpoints.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }
}

/// Why admission said no.
#[derive(Debug)]
pub enum AdmissionError {
    /// The live-tenant cap (`OMNIREDUCE_MAX_TENANTS`) is reached.
    TooManyTenants {
        /// The configured cap.
        limit: usize,
    },
    /// The tenant's `num_aggregators` does not match the fleet.
    ShardMismatch {
        /// Shards the fleet runs.
        expected: usize,
        /// Shards the spec asked for.
        got: usize,
    },
    /// One round of this job needs more slots than the pool holds — it
    /// could never be scheduled.
    SlotsExceedPool {
        /// Slots the job's round occupies.
        need: u64,
        /// Total pool capacity.
        capacity: u64,
    },
    /// The u16 stream-id / ingress-node space is exhausted.
    AddressSpaceExhausted,
    /// Tenants may not bring their own hot standby.
    StandbyUnsupported,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TooManyTenants { limit } => {
                write!(f, "live-tenant cap reached ({limit})")
            }
            AdmissionError::ShardMismatch { expected, got } => {
                write!(f, "tenant wants {got} shards, fleet has {expected}")
            }
            AdmissionError::SlotsExceedPool { need, capacity } => {
                write!(f, "round needs {need} slots, pool holds {capacity}")
            }
            AdmissionError::AddressSpaceExhausted => {
                write!(f, "stream/node id space exhausted")
            }
            AdmissionError::StandbyUnsupported => {
                write!(f, "per-tenant hot standby is not supported")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

// ---------------------------------------------------------------------
// Virtual transports
// ---------------------------------------------------------------------

/// Worker-side virtual lane: one per (tenant worker, shard). Presents
/// the tenant's solo node ids (`local_id()` = virtual wid, peer =
/// `W + s`) while physically sending onto the shard's shared ingress
/// queue, stamped with the worker's service-unique ingress node id.
pub struct TenantLane {
    virt_local: NodeId,
    real_local: NodeId,
    virt_agg: NodeId,
    ingress: Sender<(NodeId, Message)>,
    rx: Receiver<(NodeId, Message)>,
}

impl Transport for TenantLane {
    fn local_id(&self) -> NodeId {
        self.virt_local
    }

    fn send(&self, peer: NodeId, msg: &Message) -> Result<(), TransportError> {
        if peer != self.virt_agg {
            return Err(TransportError::UnknownPeer(peer));
        }
        self.ingress
            .send((self.real_local, msg.clone()))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<(NodeId, Message), TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Engine-side virtual port: one per (tenant, shard). `local_id()` is
/// the tenant's virtual aggregator node (`W + s`); receives are fed by
/// the shard demux (sender already translated to the virtual wid) and
/// sends go straight to the addressed worker's inbox for this shard.
struct JobPort {
    virt_local: NodeId,
    rx: Receiver<(NodeId, Message)>,
    /// `out[w]` = worker `w`'s inbox on this shard.
    out: Vec<Sender<(NodeId, Message)>>,
}

impl Transport for JobPort {
    fn local_id(&self) -> NodeId {
        self.virt_local
    }

    fn send(&self, peer: NodeId, msg: &Message) -> Result<(), TransportError> {
        let tx = self
            .out
            .get(peer.index())
            .ok_or(TransportError::UnknownPeer(peer))?;
        tx.send((self.virt_local, msg.clone()))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<(NodeId, Message), TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

// ---------------------------------------------------------------------
// Service internals
// ---------------------------------------------------------------------

/// Per-shard routing state shared between admission and the demux
/// threads.
struct RouteTable {
    /// `by_stream[s][stream]` = engine ingress of that tenant's shard-s
    /// aggregator.
    by_stream: Vec<HashMap<u16, Sender<(NodeId, Message)>>>,
    /// Ingress node id → (tenant stream, virtual wid).
    by_node: HashMap<u16, (u16, u16)>,
}

struct DemuxCounters {
    frames: Counter,
    unknown_sender: Counter,
    misrouted: Counter,
    dead_route: Counter,
}

struct ServiceShared {
    routes: Mutex<RouteTable>,
    scheduler: SlotScheduler,
    stop: AtomicBool,
    live: AtomicUsize,
    completed: Counter,
}

/// Registry view of admission state (the tentpole's `JobRegistry`):
/// owns the caps and the id allocators. Kept separate from
/// [`TenantService`]'s runtime plumbing so the admission rules are
/// testable without spawning threads.
pub struct JobRegistry {
    max_tenants: usize,
    default_weights: Vec<u64>,
    admitted_total: usize,
    next_stream: u32,
    next_node: u32,
}

impl JobRegistry {
    /// A registry honouring the env knobs (`OMNIREDUCE_MAX_TENANTS`,
    /// `OMNIREDUCE_TENANT_WEIGHTS`).
    pub fn from_env() -> Self {
        JobRegistry::with_limits(
            parse_max_tenants(std::env::var("OMNIREDUCE_MAX_TENANTS").ok().as_deref()),
            parse_tenant_weights(std::env::var("OMNIREDUCE_TENANT_WEIGHTS").ok().as_deref()),
        )
    }

    /// A registry with explicit caps (tests; env-free).
    pub fn with_limits(max_tenants: usize, default_weights: Vec<u64>) -> Self {
        assert!(max_tenants > 0, "tenant cap must be positive");
        JobRegistry {
            max_tenants,
            default_weights,
            admitted_total: 0,
            // Stream 0 is the legacy single-job stream; the first
            // tenant gets stream 1.
            next_stream: 1,
            next_node: 0,
        }
    }

    /// The live-tenant cap.
    pub fn max_tenants(&self) -> usize {
        self.max_tenants
    }

    /// Resolves the WFQ weight for the next admission: a pinned spec
    /// weight wins; otherwise the env weight cycle, else 1.
    fn resolve_weight(&self, pinned: u64) -> u64 {
        if pinned > 0 {
            return pinned;
        }
        if self.default_weights.is_empty() {
            return 1;
        }
        self.default_weights[self.admitted_total % self.default_weights.len()]
    }

    /// Checks the caps and, on success, allocates (stream id, ingress
    /// node base) for a job with `workers` workers.
    fn allocate(&mut self, live: usize, workers: usize) -> Result<(u16, u16), AdmissionError> {
        if live >= self.max_tenants {
            return Err(AdmissionError::TooManyTenants {
                limit: self.max_tenants,
            });
        }
        if self.next_stream > u16::MAX as u32 || self.next_node + workers as u32 > u16::MAX as u32 {
            return Err(AdmissionError::AddressSpaceExhausted);
        }
        let stream = self.next_stream as u16;
        let base = self.next_node as u16;
        self.next_stream += 1;
        self.next_node += workers as u32;
        self.admitted_total += 1;
        Ok((stream, base))
    }
}

/// What one per-shard engine thread returned.
pub enum EngineOutcome {
    /// Lossless engine result + counters.
    Lossless(Result<(), TransportError>, AggregatorStats),
    /// Recovery engine result + counters.
    Recovery(Result<(), ProtocolError>, RecoveryAggregatorStats),
}

fn spawn_engine<T: Transport + 'static>(
    engine: TenantEngine,
    transport: T,
    cfg: OmniConfig,
    telemetry: Telemetry,
    stream: u16,
    shard: usize,
) -> JoinHandle<EngineOutcome> {
    thread::Builder::new()
        .name(format!("tenant{stream}-shard{shard}"))
        .spawn(move || match engine {
            TenantEngine::Lossless => {
                let mut agg = OmniAggregator::with_telemetry(transport, cfg, &telemetry);
                let res = agg.run();
                EngineOutcome::Lossless(res, agg.stats)
            }
            TenantEngine::Recovery => {
                let mut agg = RecoveryAggregator::with_telemetry(transport, cfg, &telemetry);
                let res = agg.run();
                EngineOutcome::Recovery(res, agg.stats)
            }
        })
        .expect("failed to spawn tenant engine thread")
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// A long-running multi-tenant aggregation fleet: `shards` demux
/// threads sharing one slot pool, multiplexing any number of admitted
/// jobs by tenant stream id.
pub struct TenantService {
    shards: usize,
    ingress: Vec<Sender<(NodeId, Message)>>,
    demux: Vec<JoinHandle<()>>,
    shared: Arc<ServiceShared>,
    registry: JobRegistry,
    telemetry: Telemetry,
    admitted: Counter,
    rejected: Counter,
}

impl TenantService {
    /// Starts a fleet of `shards` aggregator shards over a pool of
    /// `slot_capacity` slots, honouring the env knobs.
    pub fn new(shards: usize, slot_capacity: u64) -> Self {
        Self::with_registry(shards, slot_capacity, JobRegistry::from_env())
    }

    /// Starts the fleet with an explicit [`JobRegistry`] (tests pin the
    /// caps here instead of mutating process env).
    pub fn with_registry(shards: usize, slot_capacity: u64, registry: JobRegistry) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let telemetry = Telemetry::new();
        let scheduler = SlotScheduler::with_counters(
            slot_capacity,
            telemetry.counter("core.tenant.sched.grants"),
            telemetry.counter("core.tenant.sched.throttles"),
        );
        let shared = Arc::new(ServiceShared {
            routes: Mutex::new(RouteTable {
                by_stream: (0..shards).map(|_| HashMap::new()).collect(),
                by_node: HashMap::new(),
            }),
            scheduler,
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            completed: telemetry.counter("core.tenant.completed"),
        });
        let mut ingress = Vec::with_capacity(shards);
        let mut demux = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = unbounded::<(NodeId, Message)>();
            ingress.push(tx);
            let shared = shared.clone();
            let counters = DemuxCounters {
                frames: telemetry.counter("core.tenant.demux.frames"),
                unknown_sender: telemetry.counter("core.tenant.demux.unknown_sender"),
                misrouted: telemetry.counter("core.tenant.demux.misrouted"),
                dead_route: telemetry.counter("core.tenant.demux.dead_route"),
            };
            demux.push(
                thread::Builder::new()
                    .name(format!("tenant-demux{s}"))
                    .spawn(move || Self::demux_loop(s, rx, shared, counters))
                    .expect("failed to spawn demux thread"),
            );
        }
        TenantService {
            shards,
            ingress,
            demux,
            shared,
            registry,
            admitted: telemetry.counter("core.tenant.admitted"),
            rejected: telemetry.counter("core.tenant.rejected"),
            telemetry,
        }
    }

    /// Number of aggregator shards in the fleet.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The service's own telemetry namespace (`core.tenant.*`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Jobs currently admitted and not yet finished.
    pub fn live_tenants(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// One shard's router: pull a frame off the shared ingress, find
    /// its tenant — Block frames by the stream id on the wire, control
    /// frames by the sender's ingress node — translate the sender to
    /// the tenant's virtual wid, and forward. Routing is the *only*
    /// thing that happens here: payloads are never inspected beyond the
    /// header, so one tenant's traffic cannot alter another's.
    fn demux_loop(
        shard: usize,
        rx: Receiver<(NodeId, Message)>,
        shared: Arc<ServiceShared>,
        counters: DemuxCounters,
    ) {
        loop {
            match rx.recv_timeout(DEMUX_POLL) {
                Ok((from, msg)) => {
                    counters.frames.inc();
                    let routes = shared.routes.lock().expect("route table poisoned");
                    let Some(&(stream, virt_wid)) = routes.by_node.get(&from.0) else {
                        counters.unknown_sender.inc();
                        continue;
                    };
                    // The wire's stream id must agree with admission's
                    // sender map — a mismatch is a cross-tenant frame
                    // and is dropped, not delivered.
                    if let Message::Block(p) = &msg {
                        if p.stream != stream {
                            counters.misrouted.inc();
                            continue;
                        }
                    }
                    match routes.by_stream[shard].get(&stream) {
                        Some(tx) => {
                            if tx.send((NodeId(virt_wid), msg)).is_err() {
                                // Engine already wound down (e.g. the
                                // tenant aborted); late frames die here.
                                counters.dead_route.inc();
                            }
                        }
                        None => counters.dead_route.inc(),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Admits a job: checks the caps, assigns its stream id and ingress
    /// nodes, registers demux routes and the scheduler entry, and
    /// spawns one engine per shard. The returned handle runs the job.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<TenantHandle, AdmissionError> {
        let check = || -> Result<(), AdmissionError> {
            if spec.cfg.num_aggregators != self.shards {
                return Err(AdmissionError::ShardMismatch {
                    expected: self.shards,
                    got: spec.cfg.num_aggregators,
                });
            }
            if spec.cfg.hot_standby {
                return Err(AdmissionError::StandbyUnsupported);
            }
            Ok(())
        };
        if let Err(e) = check() {
            self.rejected.inc();
            return Err(e);
        }
        spec.cfg.validate();
        let slots_per_round = ShardMap::new(&spec.cfg).layout().active_streams().count() as u64;
        let capacity = {
            let st = self
                .shared
                .scheduler
                .state
                .lock()
                .expect("scheduler poisoned");
            st.capacity
        };
        if slots_per_round > capacity {
            self.rejected.inc();
            return Err(AdmissionError::SlotsExceedPool {
                need: slots_per_round,
                capacity,
            });
        }

        let live = self.shared.live.load(Ordering::SeqCst);
        let workers = spec.cfg.num_workers;
        let (stream, node_base) = match self.registry.allocate(live, workers) {
            Ok(ids) => ids,
            Err(e) => {
                self.rejected.inc();
                return Err(e);
            }
        };
        let weight = self.registry.resolve_weight(spec.weight);
        let cfg = spec.cfg.clone().with_stream_id(stream);

        // Per-tenant telemetry namespace: engines and workers of this
        // job all record here; the service's registry never mixes in.
        let tenant_telemetry = Telemetry::new();

        // Build the virtual fabric: per-worker inboxes per shard, one
        // engine port per shard, ingress-node routes for the demux.
        let mut lanes: Vec<Vec<TenantLane>> = (0..workers).map(|_| Vec::new()).collect();
        let mut engines = Vec::with_capacity(self.shards);
        let mut inbox_keepalive = Vec::with_capacity(workers * self.shards);
        {
            let mut routes = self.shared.routes.lock().expect("route table poisoned");
            for w in 0..workers {
                routes
                    .by_node
                    .insert(node_base + w as u16, (stream, w as u16));
            }
            for s in 0..self.shards {
                let (engine_tx, engine_rx) = unbounded::<(NodeId, Message)>();
                routes.by_stream[s].insert(stream, engine_tx);
                let mut out = Vec::with_capacity(workers);
                for (w, worker_lanes) in lanes.iter_mut().enumerate() {
                    let (inbox_tx, inbox_rx) = unbounded::<(NodeId, Message)>();
                    // Keepalive: if an engine dies mid-stream (chaos
                    // crash), dropping its port must not disconnect the
                    // workers' lanes — they should see silence and burn
                    // their retry budget, exactly like the sharded
                    // chaos harness's black-hole semantics.
                    inbox_keepalive.push(inbox_tx.clone());
                    out.push(inbox_tx);
                    worker_lanes.push(TenantLane {
                        virt_local: NodeId(w as u16),
                        real_local: NodeId(node_base + w as u16),
                        virt_agg: NodeId(cfg.aggregator_node(s)),
                        ingress: self.ingress[s].clone(),
                        rx: inbox_rx,
                    });
                }
                let port = JobPort {
                    virt_local: NodeId(cfg.aggregator_node(s)),
                    rx: engine_rx,
                    out,
                };
                engines.push(match &spec.plan {
                    Some(plan) => {
                        let wrapped =
                            ChaosNetwork::wrap_with_telemetry(vec![port], plan, &tenant_telemetry)
                                .pop()
                                .expect("wrap returns one endpoint per input");
                        spawn_engine(
                            spec.engine,
                            wrapped,
                            cfg.clone(),
                            tenant_telemetry.clone(),
                            stream,
                            s,
                        )
                    }
                    None => spawn_engine(
                        spec.engine,
                        port,
                        cfg.clone(),
                        tenant_telemetry.clone(),
                        stream,
                        s,
                    ),
                });
            }
        }

        self.shared.scheduler.register(stream, weight, spec.quota);
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        self.admitted.inc();

        Ok(TenantHandle {
            stream,
            node_base,
            cfg,
            engine: spec.engine,
            plan: spec.plan,
            slots_per_round: slots_per_round.max(1),
            lanes,
            engines,
            inbox_keepalive,
            shared: self.shared.clone(),
            telemetry: tenant_telemetry,
        })
    }

    /// Winds the fleet down: stops the demux threads and returns the
    /// service telemetry. Call after every handle has finished.
    pub fn shutdown(self) -> TelemetrySnapshot {
        self.shared.stop.store(true, Ordering::SeqCst);
        drop(self.ingress);
        for h in self.demux {
            h.join().expect("demux thread panicked");
        }
        self.telemetry.snapshot()
    }
}

// ---------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------

/// One admitted job. Consumed by `run_lossless` / `run_recovery`.
pub struct TenantHandle {
    stream: u16,
    node_base: u16,
    cfg: OmniConfig,
    engine: TenantEngine,
    plan: Option<FaultPlan>,
    slots_per_round: u64,
    /// `lanes[w][s]` = worker `w`'s virtual lane to shard `s`.
    lanes: Vec<Vec<TenantLane>>,
    engines: Vec<JoinHandle<EngineOutcome>>,
    /// Clones of every worker-inbox sender: keeps a crashed engine's
    /// lanes *silent* (black-hole) rather than *disconnected* until the
    /// run winds down — dropped in [`finish`](Self::finish).
    inbox_keepalive: Vec<Sender<(NodeId, Message)>>,
    shared: Arc<ServiceShared>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("stream", &self.stream)
            .field("workers", &self.cfg.num_workers)
            .field("slots_per_round", &self.slots_per_round)
            .finish_non_exhaustive()
    }
}

/// Outcome of a lossless tenant run.
pub struct TenantRunResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker traffic counters.
    pub stats: Vec<WorkerStats>,
    /// Per-shard aggregator counters.
    pub agg_stats: Vec<AggregatorStats>,
    /// Wall time of each round, grant to completion.
    pub round_nanos: Vec<u64>,
    /// The tenant's private telemetry, snapshotted at wind-down.
    pub telemetry: TelemetrySnapshot,
    /// The stream id admission assigned.
    pub stream: u16,
}

/// One worker's outcome under a recovery tenant run (failures are
/// data — a chaos-planned tenant may abort mid-stream).
pub struct TenantChaosWorker {
    /// `Ok` when every round completed.
    pub result: Result<(), ProtocolError>,
    /// Recovery counters up to completion or failure.
    pub stats: RecoveryStats,
    /// Tensors for completed rounds (shorter than the round count when
    /// the worker aborted).
    pub outputs: Vec<Tensor>,
    /// Outcome of the wind-down goodbye fan-out.
    pub shutdown: Result<(), TransportError>,
}

/// Outcome of a recovery tenant run.
pub struct TenantRecoveryOutcome {
    /// Per-worker outcomes.
    pub workers: Vec<TenantChaosWorker>,
    /// Per-shard engine results and counters.
    pub aggs: Vec<(Result<(), ProtocolError>, RecoveryAggregatorStats)>,
    /// Wall time of each round, grant to completion.
    pub round_nanos: Vec<u64>,
    /// The tenant's private telemetry, snapshotted at wind-down.
    pub telemetry: TelemetrySnapshot,
    /// The stream id admission assigned.
    pub stream: u16,
}

impl TenantHandle {
    /// The stream id admission assigned (nonzero; `0` is the legacy
    /// single-job stream).
    pub fn stream(&self) -> u16 {
        self.stream
    }

    /// The tenant's effective config (stream id stamped).
    pub fn cfg(&self) -> &OmniConfig {
        &self.cfg
    }

    /// Slots one round of this job occupies in the shared pool.
    pub fn slots_per_round(&self) -> u64 {
        self.slots_per_round
    }

    /// The tenant's private telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs `inputs[w]` rounds of the **lossless** engine through the
    /// service, round-locked with the slot scheduler.
    ///
    /// # Panics
    /// Panics when the spec's engine is not [`TenantEngine::Lossless`],
    /// shapes don't match, or a worker hits a transport error (goodbyes
    /// still go out first — co-tenants never hang on our abort).
    pub fn run_lossless(mut self, inputs: Vec<Vec<Tensor>>) -> TenantRunResult {
        assert_eq!(
            self.engine,
            TenantEngine::Lossless,
            "tenant was admitted with the recovery engine"
        );
        let lanes = std::mem::take(&mut self.lanes);
        match self.plan.clone() {
            Some(plan) => {
                let telemetry = self.telemetry.clone();
                let wrapped = lanes
                    .into_iter()
                    .map(|ls| ChaosNetwork::wrap_with_telemetry(ls, &plan, &telemetry))
                    .collect();
                self.run_lossless_over(wrapped, inputs)
            }
            None => self.run_lossless_over(lanes, inputs),
        }
    }

    fn run_lossless_over<T: Transport + 'static>(
        self,
        lanes: Vec<Vec<T>>,
        inputs: Vec<Vec<Tensor>>,
    ) -> TenantRunResult {
        let workers = self.cfg.num_workers;
        assert_eq!(inputs.len(), workers, "one input set per worker");
        let rounds = inputs[0].len();
        for i in &inputs {
            assert_eq!(i.len(), rounds, "same round count per worker");
        }

        let start = Barrier::new(workers + 1);
        let end = Barrier::new(workers + 1);
        let round_bytes = AtomicU64::new(0);
        let mut round_nanos = Vec::with_capacity(rounds);

        let per_worker: Vec<(Vec<Tensor>, WorkerStats)> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, (ls, tensors)) in lanes.into_iter().zip(inputs).enumerate() {
                let cfg = self.cfg.clone();
                let telemetry = &self.telemetry;
                let (start, end, round_bytes) = (&start, &end, &round_bytes);
                handles.push(
                    thread::Builder::new()
                        .name(format!("tenant{}-worker{w}", self.stream))
                        .spawn_scoped(scope, move || {
                            let mut worker = ShardedWorker::with_telemetry(ls, cfg, telemetry);
                            let mut outs = Vec::with_capacity(tensors.len());
                            let mut prev_bytes = 0u64;
                            let mut failure = None;
                            for mut tensor in tensors {
                                start.wait();
                                if failure.is_none() {
                                    match worker.allreduce(&mut tensor) {
                                        Ok(()) => {
                                            let b = worker.stats().bytes_sent;
                                            round_bytes
                                                .fetch_add(b - prev_bytes, Ordering::Relaxed);
                                            prev_bytes = b;
                                            outs.push(tensor);
                                        }
                                        Err(e) => failure = Some(e),
                                    }
                                }
                                end.wait();
                            }
                            let stats = worker.stats();
                            // Goodbyes before any panic: an aborting
                            // tenant must still wind down its own
                            // engines so nothing else waits on it.
                            let shutdown = worker.shutdown();
                            if let Some(e) = failure {
                                panic!("tenant worker {w}: allreduce failed: {e:?}");
                            }
                            shutdown.expect("tenant worker shutdown failed");
                            (outs, stats)
                        })
                        .expect("failed to spawn tenant worker thread"),
                );
            }

            for _ in 0..rounds {
                self.shared
                    .scheduler
                    .acquire(self.stream, self.slots_per_round);
                let t0 = Instant::now();
                start.wait();
                end.wait();
                round_nanos.push(t0.elapsed().as_nanos() as u64);
                let bytes = round_bytes.swap(0, Ordering::Relaxed);
                self.shared
                    .scheduler
                    .release(self.stream, self.slots_per_round, bytes);
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("tenant worker panicked"))
                .collect()
        });

        let mut outputs = Vec::with_capacity(workers);
        let mut stats = Vec::with_capacity(workers);
        for (o, s) in per_worker {
            outputs.push(o);
            stats.push(s);
        }
        let (engine_outcomes, telemetry, stream) = self.finish();
        let agg_stats = engine_outcomes
            .into_iter()
            .map(|o| match o {
                EngineOutcome::Lossless(res, stats) => {
                    res.expect("tenant aggregator failed");
                    stats
                }
                EngineOutcome::Recovery(..) => unreachable!("lossless tenant"),
            })
            .collect();
        TenantRunResult {
            outputs,
            stats,
            agg_stats,
            round_nanos,
            telemetry,
            stream,
        }
    }

    /// Runs `inputs[w]` rounds of the **Algorithm 2 recovery** engine
    /// through the service. Worker and engine failures are returned as
    /// data (a chaos-planned tenant may abort mid-stream); goodbyes
    /// always go out, so an aborting tenant never wedges its engines —
    /// or anyone else's.
    pub fn run_recovery(mut self, inputs: Vec<Vec<Tensor>>) -> TenantRecoveryOutcome {
        assert_eq!(
            self.engine,
            TenantEngine::Recovery,
            "tenant was admitted with the lossless engine"
        );
        let lanes = std::mem::take(&mut self.lanes);
        match self.plan.clone() {
            Some(plan) => {
                let telemetry = self.telemetry.clone();
                let wrapped = lanes
                    .into_iter()
                    .map(|ls| ChaosNetwork::wrap_with_telemetry(ls, &plan, &telemetry))
                    .collect();
                self.run_recovery_over(wrapped, inputs)
            }
            None => self.run_recovery_over(lanes, inputs),
        }
    }

    fn run_recovery_over<T: Transport + 'static>(
        self,
        lanes: Vec<Vec<T>>,
        inputs: Vec<Vec<Tensor>>,
    ) -> TenantRecoveryOutcome {
        let workers = self.cfg.num_workers;
        assert_eq!(inputs.len(), workers, "one input set per worker");
        let rounds = inputs[0].len();
        for i in &inputs {
            assert_eq!(i.len(), rounds, "same round count per worker");
        }

        let start = Barrier::new(workers + 1);
        let end = Barrier::new(workers + 1);
        let round_bytes = AtomicU64::new(0);
        let mut round_nanos = Vec::with_capacity(rounds);
        let first_agg = self.cfg.aggregator_node(0);

        let per_worker: Vec<TenantChaosWorker> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, (ls, tensors)) in lanes.into_iter().zip(inputs).enumerate() {
                let cfg = self.cfg.clone();
                let telemetry = &self.telemetry;
                let (start, end, round_bytes) = (&start, &end, &round_bytes);
                handles.push(
                    thread::Builder::new()
                        .name(format!("tenant{}-worker{w}", self.stream))
                        .spawn_scoped(scope, move || {
                            let bond = ShardBond::new(ls, first_agg);
                            let mut worker = RecoveryWorker::with_telemetry(bond, cfg, telemetry);
                            let mut outs = Vec::with_capacity(tensors.len());
                            let mut prev_bytes = 0u64;
                            let mut result = Ok(());
                            for mut tensor in tensors {
                                start.wait();
                                if result.is_ok() {
                                    match worker.allreduce(&mut tensor) {
                                        Ok(()) => {
                                            let b = worker.stats().bytes_sent;
                                            round_bytes
                                                .fetch_add(b - prev_bytes, Ordering::Relaxed);
                                            prev_bytes = b;
                                            outs.push(tensor);
                                        }
                                        Err(e) => result = Err(e),
                                    }
                                }
                                // Keep the round lockstep alive even
                                // after a failure: the coordinator and
                                // healthy peers still cross every
                                // barrier.
                                end.wait();
                            }
                            let stats = worker.stats();
                            let shutdown = worker.shutdown();
                            TenantChaosWorker {
                                result,
                                stats,
                                outputs: outs,
                                shutdown,
                            }
                        })
                        .expect("failed to spawn tenant worker thread"),
                );
            }

            for _ in 0..rounds {
                self.shared
                    .scheduler
                    .acquire(self.stream, self.slots_per_round);
                let t0 = Instant::now();
                start.wait();
                end.wait();
                round_nanos.push(t0.elapsed().as_nanos() as u64);
                let bytes = round_bytes.swap(0, Ordering::Relaxed);
                self.shared
                    .scheduler
                    .release(self.stream, self.slots_per_round, bytes);
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("tenant worker panicked"))
                .collect()
        });

        let (engine_outcomes, telemetry, stream) = self.finish();
        let aggs = engine_outcomes
            .into_iter()
            .map(|o| match o {
                EngineOutcome::Recovery(res, stats) => (res, stats),
                EngineOutcome::Lossless(..) => unreachable!("recovery tenant"),
            })
            .collect();
        TenantRecoveryOutcome {
            workers: per_worker,
            aggs,
            round_nanos,
            telemetry,
            stream,
        }
    }

    /// Common wind-down: join the per-shard engines, tear out this
    /// tenant's routes and scheduler entry, decrement the live count.
    /// Only *this* tenant's state is touched — co-tenant routes, lanes
    /// and engines are invisible from here by construction.
    fn finish(self) -> (Vec<EngineOutcome>, TelemetrySnapshot, u16) {
        let outcomes: Vec<EngineOutcome> = self
            .engines
            .into_iter()
            .map(|h| h.join().expect("tenant engine panicked"))
            .collect();
        // Only now may the worker inboxes disconnect: a crashed engine
        // must read as *silence* (retry-budget exhaustion) while workers
        // are still running, never as a hard disconnect.
        drop(self.inbox_keepalive);
        {
            let mut routes = self.shared.routes.lock().expect("route table poisoned");
            for shard_routes in routes.by_stream.iter_mut() {
                shard_routes.remove(&self.stream);
            }
            for w in 0..self.cfg.num_workers {
                routes.by_node.remove(&(self.node_base + w as u16));
            }
        }
        self.shared.scheduler.deregister(self.stream);
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        self.shared.completed.inc();
        (outcomes, self.telemetry.snapshot(), self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -----------------------------------------------------------------
    // Env knob parsing (pure; no process-env mutation)
    // -----------------------------------------------------------------

    #[test]
    fn max_tenants_parses_and_falls_back() {
        assert_eq!(parse_max_tenants(None), DEFAULT_MAX_TENANTS);
        assert_eq!(parse_max_tenants(Some("8")), 8);
        assert_eq!(parse_max_tenants(Some(" 12 ")), 12);
        assert_eq!(parse_max_tenants(Some("0")), DEFAULT_MAX_TENANTS);
        assert_eq!(parse_max_tenants(Some("lots")), DEFAULT_MAX_TENANTS);
    }

    #[test]
    fn tenant_weights_parse_skips_garbage() {
        assert_eq!(parse_tenant_weights(None), Vec::<u64>::new());
        assert_eq!(parse_tenant_weights(Some("4,2,1")), vec![4, 2, 1]);
        assert_eq!(parse_tenant_weights(Some(" 3 , x, 0, 5 ")), vec![3, 5]);
        assert_eq!(parse_tenant_weights(Some("")), Vec::<u64>::new());
    }

    #[test]
    fn registry_cycles_default_weights() {
        let mut reg = JobRegistry::with_limits(4, vec![4, 2]);
        assert_eq!(reg.resolve_weight(7), 7, "pinned weight wins");
        assert_eq!(reg.resolve_weight(0), 4);
        reg.allocate(0, 1).unwrap();
        assert_eq!(reg.resolve_weight(0), 2);
        reg.allocate(1, 1).unwrap();
        assert_eq!(reg.resolve_weight(0), 4, "cycle wraps");
    }

    #[test]
    fn registry_enforces_caps_and_allocates_disjoint_ids() {
        let mut reg = JobRegistry::with_limits(2, vec![]);
        let (s0, n0) = reg.allocate(0, 3).unwrap();
        let (s1, n1) = reg.allocate(1, 2).unwrap();
        assert_eq!(s0, 1, "stream 0 stays reserved for the legacy job");
        assert_eq!(s1, 2);
        assert_eq!(n0, 0);
        assert_eq!(n1, 3, "node ranges must not overlap");
        assert!(matches!(
            reg.allocate(2, 1),
            Err(AdmissionError::TooManyTenants { limit: 2 })
        ));
    }

    // -----------------------------------------------------------------
    // WFQ core
    // -----------------------------------------------------------------

    #[test]
    fn wfq_grants_in_tag_order_with_strict_head_of_line() {
        let mut q = WfqState::new(4);
        q.register(1, 1, None);
        q.register(2, 1, None);
        // Tenant 2 churns unit requests while tenant 1 asks for the
        // whole pool. Small requests with *earlier finish tags* go
        // first (that is WFQ, not starvation) …
        let t2a = q.enqueue(2, 1);
        assert_eq!(q.pump()[0].ticket, t2a);
        let t1 = q.enqueue(1, 4); // tag 4·SCALE
        assert!(q.pump().is_empty(), "4 slots cannot fit in 3 free");
        for _ in 0..2 {
            let t = q.enqueue(2, 1); // tags 2·SCALE, 3·SCALE
            let g = q.pump();
            assert_eq!(g.len(), 1);
            assert_eq!(g[0].ticket, t, "earlier-finish unit requests pass");
        }
        // … but once tenant 2's finish tag catches up to tenant 1's
        // (tie at 4·SCALE, broken by tenant 1's earlier ticket), strict
        // head-of-line kicks in: a free slot exists for the unit
        // request, yet it must NOT bypass the blocked head.
        let t2d = q.enqueue(2, 1);
        assert!(
            q.pump().is_empty(),
            "a fitting late request must not bypass the blocked head"
        );
        assert_eq!(q.pending_len(), 2);
        q.complete(2, 1, 0);
        q.complete(2, 1, 0);
        q.complete(2, 1, 0);
        let g = q.pump();
        assert_eq!(g.len(), 1, "the head takes the whole pool");
        assert_eq!(g[0].ticket, t1);
        q.complete(1, 4, 0);
        let g = q.pump();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].ticket, t2d, "the queued unit follows the head");
    }

    #[test]
    fn wfq_weighted_shares_on_backlog() {
        // Two backlogged tenants, weights 3:1, unit requests: over many
        // grants tenant 1 receives ~3x tenant 2's slots.
        let mut q = WfqState::new(1);
        q.register(1, 3, None);
        q.register(2, 1, None);
        let mut counts = [0u64; 2];
        let mut outstanding: HashMap<u16, u64> = HashMap::new();
        q.enqueue(1, 1);
        q.enqueue(2, 1);
        for _ in 0..400 {
            let g = q.pump();
            assert_eq!(g.len(), 1, "unit pool grants exactly one");
            let g = g[0];
            counts[(g.stream - 1) as usize] += g.slots;
            *outstanding.entry(g.stream).or_default() += 1;
            q.complete(g.stream, g.slots, 0);
            q.enqueue(g.stream, 1);
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.7..=3.3).contains(&ratio), "share ratio {ratio}");
    }

    #[test]
    fn wfq_quota_overuse_becomes_debt_and_delays() {
        let mut q = WfqState::new(2);
        q.register(1, 1, Some(100));
        q.register(2, 1, None);
        q.enqueue(1, 1);
        q.enqueue(2, 1);
        let g = q.pump();
        assert_eq!(g.len(), 2, "both fit the pool");
        // Tenant 1 blows 3x its quota; tenant 2 stays clean.
        assert!(q.complete(1, 1, 300));
        assert!(!q.complete(2, 1, 50));
        assert!(q.debt(1) > 0, "overuse must leave debt");
        assert_eq!(q.throttles(1), 1);
        // Next cycle on a unit pool: tenant 2 now outranks tenant 1.
        let mut q2 = WfqState::new(1);
        q2.register(1, 1, Some(100));
        q2.register(2, 1, None);
        q2.enqueue(1, 1);
        let g = q2.pump();
        q2.complete(1, 1, 300);
        assert_eq!(g[0].stream, 1);
        q2.enqueue(1, 1);
        q2.enqueue(2, 1);
        let g = q2.pump();
        assert_eq!(
            g[0].stream, 2,
            "the indebted tenant must fall behind the clean one"
        );
    }

    // -----------------------------------------------------------------
    // Service smoke tests (heavier batteries live in core/tests/)
    // -----------------------------------------------------------------

    fn tiny_cfg(workers: usize, shards: usize) -> OmniConfig {
        OmniConfig::new(workers, 64)
            .with_block_size(8)
            .with_fusion(2)
            .with_streams(2)
            .with_aggregators(shards)
    }

    #[test]
    fn single_tenant_lossless_round_trip() {
        let mut svc = TenantService::with_registry(2, 64, JobRegistry::with_limits(4, vec![]));
        let handle = svc.admit(TenantSpec::lossless(tiny_cfg(2, 2))).unwrap();
        assert_eq!(handle.stream(), 1);
        let inputs: Vec<Vec<Tensor>> = (0..2)
            .map(|w| vec![Tensor::from_vec(vec![w as f32 + 1.0; 64])])
            .collect();
        let res = handle.run_lossless(inputs);
        for outs in &res.outputs {
            for v in outs[0].as_slice() {
                assert_eq!(*v, 3.0);
            }
        }
        assert_eq!(res.round_nanos.len(), 1);
        assert_eq!(svc.live_tenants(), 0, "handle wind-down must deregister");
        let snap = svc.shutdown();
        assert_eq!(snap.counter("core.tenant.admitted"), 1);
        assert_eq!(snap.counter("core.tenant.completed"), 1);
        assert!(snap.counter("core.tenant.demux.frames") > 0);
        assert_eq!(snap.counter("core.tenant.demux.misrouted"), 0);
    }

    #[test]
    fn admission_rejects_shard_mismatch_and_standby() {
        let mut svc = TenantService::with_registry(2, 64, JobRegistry::with_limits(4, vec![]));
        let err = svc.admit(TenantSpec::lossless(tiny_cfg(1, 1))).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::ShardMismatch {
                expected: 2,
                got: 1
            }
        ));
        let err = svc
            .admit(TenantSpec::recovery(tiny_cfg(1, 2).with_hot_standby()))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::StandbyUnsupported));
        let snap = svc.shutdown();
        assert_eq!(snap.counter("core.tenant.rejected"), 2);
    }

    #[test]
    fn admission_rejects_oversized_rounds_and_full_house() {
        // Slot pool of 1 cannot host a job whose round needs 4 slots.
        let mut svc = TenantService::with_registry(2, 1, JobRegistry::with_limits(1, vec![]));
        let err = svc.admit(TenantSpec::lossless(tiny_cfg(1, 2))).unwrap_err();
        assert!(matches!(err, AdmissionError::SlotsExceedPool { .. }));
        svc.shutdown();

        let mut svc = TenantService::with_registry(2, 64, JobRegistry::with_limits(1, vec![]));
        let _held = svc.admit(TenantSpec::lossless(tiny_cfg(1, 2))).unwrap();
        let err = svc.admit(TenantSpec::lossless(tiny_cfg(1, 2))).unwrap_err();
        assert!(matches!(err, AdmissionError::TooManyTenants { limit: 1 }));
        // Wind the held tenant down so the service can exit cleanly.
        let inputs = vec![vec![Tensor::from_vec(vec![1.0; 64])]];
        _held.run_lossless(inputs);
        svc.shutdown();
    }
}
