//! Loss-recovery engines (Algorithm 2, Appendix A): OmniReduce over a
//! network that may drop or duplicate packets.
//!
//! Differences from the lossless engines:
//!
//! * **Everyone always answers.** Each worker responds to every result
//!   packet for every active column — with block data when it owns the
//!   requested block, with a data-less acknowledgment otherwise — so the
//!   aggregator can use a per-phase *count of distinct workers* as the
//!   completion condition instead of the min-next comparison.
//! * **Timers.** A worker arms a retransmission timer for every packet it
//!   sends and resends on expiry; receiving the matching result cancels
//!   the timer.
//! * **Two-phase versioned slots.** The aggregator keeps two versions of
//!   every slot's state, used in alternating phases. Version `v` is only
//!   reused once every worker has sent a packet for version `v̂` — which a
//!   worker does only after receiving version `v`'s result — so a
//!   completed result stays available for retransmission exactly as long
//!   as any worker might still need it.
//! * **Dedup.** A per-version `seen` bit per worker keeps duplicated or
//!   retransmitted packets from being aggregated twice; a duplicate for a
//!   *completed* phase triggers a unicast retransmission of that phase's
//!   result to the sender (the aggregator-side loss repair).
//!
//! Delivery assumption: like the paper's DPDK deployment, the network may
//! drop or duplicate packets but does not reorder packets between a given
//! pair of nodes ([`omnireduce_transport::LossyNetwork`] guarantees this).

use std::time::{Duration, Instant};

use omnireduce_telemetry::{
    Counter, FlightEventKind, FlightLane, Gauge, Histogram, LaneRole, Telemetry, NO_BLOCK,
};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, Tensor, INFINITY_BLOCK};
use omnireduce_transport::timer::{RttEstimator, TimerQueue};
use omnireduce_transport::{
    codec, BufferPool, CheckpointDelta, Entry, Message, NodeId, Packet, PacketKind, Transport,
    TransportError, MEMBERSHIP_ONLY,
};

use crate::config::{DegradedMode, OmniConfig};
use crate::error::ProtocolError;

/// True if membership epoch `a` precedes `b` in wrapping (mod 256)
/// order. Epochs only ever move forward, one bump per membership
/// change, so any two live epochs are within half the ring of each
/// other and the comparison is unambiguous.
pub(crate) fn epoch_before(a: u8, b: u8) -> bool {
    a != b && b.wrapping_sub(a) < 128
}
use crate::layout::StreamLayout;
use crate::slot::ColAccumulator;
use crate::wire::{decode_next, encode_next};

/// Traffic counters for the recovery worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct data/ack packets sent (excluding retransmissions).
    pub packets_sent: u64,
    /// Retransmissions triggered by timer expiry.
    pub retransmissions: u64,
    /// Wire bytes sent, including retransmissions.
    pub bytes_sent: u64,
    /// Blocks transmitted as data entries (excluding retransmissions).
    pub blocks_sent: u64,
    /// Retransmission-timer expirations handled.
    pub timer_fires: u64,
    /// Results ignored because they were stale (finished stream) or
    /// carried an already-processed phase version.
    pub stale_results_ignored: u64,
    /// Exponential-backoff events: timer expirations that doubled the
    /// RTO before retransmitting (adaptive mode only).
    pub backoffs: u64,
    /// Retransmissions solicited by an aggregator NACK (the shard told
    /// us our contribution to a stalled phase is missing). Also counted
    /// in [`RecoveryStats::retransmissions`].
    pub solicited_retransmissions: u64,
    /// Shards re-targeted from the primary aggregator to its hot
    /// standby after the retry budget ran out (at most one per shard
    /// per run).
    pub failovers: u64,
}

/// Fleet-wide `core.recovery.*` registry mirrors of [`RecoveryStats`]
/// (detached no-ops unless built via [`RecoveryWorker::with_telemetry`]).
struct RecoveryCounters {
    packets_sent: Counter,
    retransmissions: Counter,
    bytes_sent: Counter,
    blocks_sent: Counter,
    timer_fires: Counter,
    stale_results_ignored: Counter,
    backoffs: Counter,
    peer_unresponsive: Counter,
    solicited_retransmissions: Counter,
    failovers: Counter,
    /// `core.recovery.shutdown_errors`: departure announcements that
    /// failed to send (the wind-down path keeps going instead of
    /// aborting on the first dead lane).
    shutdown_errors: Counter,
    /// `core.recovery.rto`: the RTO armed for each sent packet, in µs.
    rto: Histogram,
    /// `core.recovery.rto_ns`: the last armed RTO, in ns — the live
    /// level the time-series RTO-inflation detector watches.
    rto_ns: Gauge,
    /// `core.recovery.srtt_ns`: the estimator's smoothed RTT, in ns
    /// (0 until the first un-retransmitted sample), published beside
    /// `rto_ns` so inflation can be told apart from genuine RTT growth.
    srtt_ns: Gauge,
}

impl RecoveryCounters {
    fn detached() -> Self {
        RecoveryCounters {
            packets_sent: Counter::detached(),
            retransmissions: Counter::detached(),
            bytes_sent: Counter::detached(),
            blocks_sent: Counter::detached(),
            timer_fires: Counter::detached(),
            stale_results_ignored: Counter::detached(),
            backoffs: Counter::detached(),
            peer_unresponsive: Counter::detached(),
            solicited_retransmissions: Counter::detached(),
            failovers: Counter::detached(),
            shutdown_errors: Counter::detached(),
            rto: Histogram::detached(),
            rto_ns: Gauge::default(),
            srtt_ns: Gauge::default(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        RecoveryCounters {
            packets_sent: telemetry.counter("core.recovery.packets_sent"),
            retransmissions: telemetry.counter("core.recovery.retransmissions"),
            bytes_sent: telemetry.counter("core.recovery.bytes_sent"),
            blocks_sent: telemetry.counter("core.recovery.blocks_sent"),
            timer_fires: telemetry.counter("core.recovery.timer_fires"),
            stale_results_ignored: telemetry.counter("core.recovery.stale_results_ignored"),
            backoffs: telemetry.counter("core.recovery.backoffs"),
            peer_unresponsive: telemetry.counter("core.recovery.peer_unresponsive"),
            solicited_retransmissions: telemetry.counter("core.recovery.solicited_retransmissions"),
            failovers: telemetry.counter("core.recovery.failovers"),
            shutdown_errors: telemetry.counter("core.recovery.shutdown_errors"),
            rto: telemetry.histogram("core.recovery.rto"),
            rto_ns: telemetry.gauge("core.recovery.rto_ns"),
            srtt_ns: telemetry.gauge("core.recovery.srtt_ns"),
        }
    }
}

/// Flight-recorder pairing key for a fused message: its first entry's
/// block ([`NO_BLOCK`] for empty/control messages). Sender and receiver
/// derive the key from the same packet, so tx and rx events match.
fn first_block(msg: &Message) -> u64 {
    match msg {
        Message::Block(p) => p
            .entries
            .first()
            .map(|e| e.block as u64)
            .unwrap_or(NO_BLOCK),
        _ => NO_BLOCK,
    }
}

struct WorkerCol {
    my_next: BlockIdx,
    done: bool,
}

/// The packet a worker is waiting to see answered on one stream.
struct Outstanding {
    msg: Message,
    /// When the packet was first sent (for RTT sampling and for the
    /// `elapsed` field of [`ProtocolError::PeerUnresponsive`]).
    sent_at: Instant,
    /// Karn's rule: once a packet has been retransmitted, its eventual
    /// answer is ambiguous and must not feed the RTT estimator.
    retransmitted: bool,
    /// Consecutive unanswered retransmissions of this packet.
    retx: u32,
}

struct WorkerStream {
    cols: Vec<Option<WorkerCol>>,
    remaining: usize,
    /// Last packet sent; retransmitted on timeout.
    outstanding: Option<Outstanding>,
}

/// Worker engine with Algorithm 2 loss recovery.
pub struct RecoveryWorker<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: u16,
    /// Current membership epoch, adopted from results and `Welcome`
    /// replies (DESIGN §12). Stamped into every outgoing packet.
    epoch: u8,
    /// Per-shard aggregator target node. Starts at the primary and is
    /// re-pointed at the hot standby on failover.
    agg: Vec<u16>,
    /// Per-shard: already failed over to the standby (one failover per
    /// shard per run — a dead standby is fatal).
    failed_over: Vec<bool>,
    /// Per-shard failover start, pending the first post-failover
    /// result (`FailoverBegin`..`FailoverEnd` downtime window).
    failover_at: Vec<Option<Instant>>,
    /// Per-stream protocol phase, persists across AllReduce rounds.
    ver: Vec<u8>,
    /// Per-shard RTT estimator (adaptive mode); persists across rounds
    /// so later rounds start from a converged RTO.
    rtt: Vec<RttEstimator>,
    stats: RecoveryStats,
    /// Wire bytes sent per destination shard (index = shard), so
    /// multi-aggregator deployments can account each shard's traffic
    /// independently (DESIGN §10).
    shard_bytes: Vec<u64>,
    counters: RecoveryCounters,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// AllReduce rounds completed — the flight recorder's round key.
    /// Private (not part of [`RecoveryStats`]) so chaos-replay equality
    /// on stats stays byte-exact.
    rounds: u64,
    /// Freelists for outgoing packet buffers (payloads and entry lists
    /// are checked out per packet and recycled when the packet's phase
    /// is answered — DESIGN §9).
    pool: BufferPool,
}

impl<T: Transport> RecoveryWorker<T> {
    /// Creates the engine; the transport's node id is the worker id.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let wid = transport.local_id().0;
        assert!(
            (wid as usize) < cfg.num_workers,
            "node {wid} is not a worker"
        );
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let ver = vec![0u8; layout.total_streams()];
        let rtt = (0..cfg.num_aggregators)
            .map(|a| {
                RttEstimator::new(
                    cfg.retransmit_timeout,
                    cfg.rto_min,
                    cfg.rto_max,
                    // Deterministic per-(worker, shard) jitter stream.
                    0x9E37_79B9_7F4A_7C15 ^ ((wid as u64) << 16) ^ a as u64,
                )
            })
            .collect();
        let pool = BufferPool::for_block_size(cfg.block_size);
        let shard_bytes = vec![0; cfg.num_aggregators];
        let agg = (0..cfg.num_aggregators)
            .map(|a| cfg.aggregator_node(a))
            .collect();
        let failed_over = vec![false; cfg.num_aggregators];
        let failover_at = vec![None; cfg.num_aggregators];
        RecoveryWorker {
            transport,
            cfg,
            layout,
            wid,
            epoch: 0,
            agg,
            failed_over,
            failover_at,
            ver,
            rtt,
            stats: RecoveryStats::default(),
            shard_bytes,
            counters: RecoveryCounters::detached(),
            flight: FlightLane::disabled(),
            rounds: 0,
            pool,
        }
    }

    /// Like [`RecoveryWorker::new`], but mirrors loss-path counters into
    /// `telemetry`'s `core.recovery.*` counters and records protocol
    /// flight events on a `worker{wid}` lane when the registry's flight
    /// recorder is enabled.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(transport, cfg);
        w.counters = RecoveryCounters::registered(telemetry);
        w.flight = telemetry
            .flight()
            .lane(&format!("worker{}", w.wid), LaneRole::Worker, w.wid);
        w
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Wire bytes sent to each aggregator shard (index = shard). Sums
    /// to [`RecoveryStats::bytes_sent`].
    pub fn shard_bytes(&self) -> &[u64] {
        &self.shard_bytes
    }

    /// The RTO to arm for the next packet to `shard`: adaptive
    /// (SRTT/RTTVAR with backoff and jitter) or the fixed configured
    /// timeout. Recorded into the `core.recovery.rto` histogram (µs).
    fn next_rto(&mut self, shard: usize) -> Duration {
        let rto = if self.cfg.adaptive_rto {
            self.rtt[shard].next_rto()
        } else {
            self.cfg.retransmit_timeout
        };
        self.counters.rto.record(rto.as_micros() as u64);
        self.counters.rto_ns.set(rto.as_nanos() as u64);
        self.counters.srtt_ns.set(
            self.rtt[shard]
                .srtt()
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
        );
        rto
    }

    /// Runs one AllReduce with loss recovery.
    ///
    /// Fails fast instead of hanging: if `max_retransmits` consecutive
    /// retransmissions of any slot go unanswered, returns
    /// [`ProtocolError::PeerUnresponsive`] (the aggregator for that
    /// shard is presumed dead).
    pub fn allreduce(&mut self, tensor: &mut Tensor) -> Result<(), ProtocolError> {
        assert_eq!(tensor.len(), self.cfg.tensor_len, "tensor length mismatch");
        let round = self.rounds as u32;
        self.flight
            .record(FlightEventKind::RoundStart, round, NO_BLOCK, 0, self.wid, 0);
        let encode_t0 = self.flight.now_ns();
        let bitmap = NonZeroBitmap::build(tensor, self.cfg.block_spec());
        let skip = self.cfg.skip_zero_blocks;
        let layout = self.layout;
        let width = layout.width();

        let mut streams: Vec<Option<WorkerStream>> =
            (0..layout.total_streams()).map(|_| None).collect();
        let mut timers: TimerQueue<usize> = TimerQueue::new();
        let mut pending = 0usize;

        for g in layout.active_streams() {
            let mut cols: Vec<Option<WorkerCol>> = Vec::with_capacity(width);
            let mut entries = self.pool.checkout_entries();
            let mut remaining = 0usize;
            for c in 0..width {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&bitmap, g, c, Some(b0), skip);
                        let mut data = self.pool.checkout_f32();
                        data.extend_from_slice(&tensor[layout.block_range(b0)]);
                        entries.push(Entry::data(b0, encode_next(my_next, c, width), data));
                        cols.push(Some(WorkerCol {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            let msg = self.make_packet(g, entries);
            self.send_tracked(g, &msg)?;
            let rto = self.next_rto(self.cfg.shard_of_stream(g));
            timers.arm(g, Instant::now(), rto);
            streams[g] = Some(WorkerStream {
                cols,
                remaining,
                outstanding: Some(Outstanding {
                    msg,
                    sent_at: Instant::now(),
                    retransmitted: false,
                    retx: 0,
                }),
            });
            pending += 1;
        }
        self.flight.record(
            FlightEventKind::Encode,
            round,
            NO_BLOCK,
            0,
            self.wid,
            self.flight.now_ns().saturating_sub(encode_t0),
        );

        while pending > 0 {
            let now = Instant::now();
            let timeout = timers.until_next(now).unwrap_or(Duration::from_secs(3600));
            match self.transport.recv_timeout(timeout)? {
                Some((_, Message::Block(p))) if p.kind == PacketKind::Result => {
                    let g = p.slot as usize;
                    let shard = self.cfg.shard_of_stream(g);
                    // Any result reveals the group's current epoch;
                    // adopt it before the staleness checks so even a
                    // duplicate result keeps us current.
                    if epoch_before(self.epoch, p.epoch) {
                        self.epoch = p.epoch;
                        self.flight.record(
                            FlightEventKind::EpochChange,
                            round,
                            NO_BLOCK,
                            shard as u16,
                            self.wid,
                            p.epoch as u64,
                        );
                    }
                    self.flight.record(
                        FlightEventKind::ResultRx,
                        round,
                        NO_BLOCK,
                        shard as u16,
                        self.wid,
                        p.entries.len() as u64,
                    );
                    let Some(state) = streams[g].as_mut() else {
                        // Stale result for a finished stream.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    };
                    if p.ver != self.ver[g] {
                        // Duplicate of an already-processed phase.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    }
                    timers.cancel(&g);
                    // First valid result after a failover: the standby
                    // answered, the shard has recovered. aux = downtime.
                    if let Some(t0) = self.failover_at[shard].take() {
                        self.flight.record(
                            FlightEventKind::FailoverEnd,
                            round,
                            NO_BLOCK,
                            shard as u16,
                            self.wid,
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                    if self.cfg.adaptive_rto {
                        match &state.outstanding {
                            Some(o) if !o.retransmitted => {
                                self.rtt[shard].sample(o.sent_at.elapsed());
                            }
                            // Karn's rule: an answer to a retransmitted
                            // packet is ambiguous — reset the backoff
                            // but contribute no RTT sample.
                            _ => self.rtt[shard].ack(),
                        }
                    }
                    // Phase advances: the answered packet's buffers come
                    // back to the pool before the reply is built.
                    if let Some(o) = state.outstanding.take() {
                        self.pool.recycle_message(o.msg);
                    }
                    self.ver[g] ^= 1;
                    let mut reply = self.pool.checkout_entries();
                    for entry in &p.entries {
                        let (col, requested) = decode_next(entry.next, width);
                        if !entry.data.is_empty() {
                            tensor
                                .copy_slice_at(layout.block_range(entry.block).start, &entry.data);
                        }
                        let cs = state.cols[col].as_mut().expect("invalid column");
                        if cs.done {
                            continue;
                        }
                        if requested == INFINITY_BLOCK {
                            cs.done = true;
                            state.remaining -= 1;
                            continue;
                        }
                        if cs.my_next == requested {
                            let new_next =
                                layout.next_block(&bitmap, g, col, Some(requested), skip);
                            let mut data = self.pool.checkout_f32();
                            data.extend_from_slice(&tensor[layout.block_range(requested)]);
                            reply.push(Entry::data(
                                requested,
                                encode_next(new_next, col, width),
                                data,
                            ));
                            cs.my_next = new_next;
                        } else {
                            // Data-less acknowledgment (Algorithm 2 l.19–21).
                            reply.push(Entry::ack(requested, encode_next(cs.my_next, col, width)));
                        }
                    }
                    if state.remaining == 0 {
                        debug_assert!(reply.is_empty(), "reply for a finished stream");
                        self.pool.checkin_entries(reply);
                        streams[g] = None;
                        pending -= 1;
                    } else {
                        let msg = self.make_packet(g, reply);
                        self.send_tracked(g, &msg)?;
                        let rto = self.next_rto(self.cfg.shard_of_stream(g));
                        timers.arm(g, Instant::now(), rto);
                        streams[g].as_mut().unwrap().outstanding = Some(Outstanding {
                            msg,
                            sent_at: Instant::now(),
                            retransmitted: false,
                            retx: 0,
                        });
                    }
                }
                Some((_, Message::Block(p))) if p.kind == PacketKind::Nack => {
                    // Solicited retransmission: the shard is alive but
                    // missing our contribution to this phase — resend
                    // immediately instead of waiting for our timer.
                    let g = p.slot as usize;
                    let Some(state) = streams[g].as_mut() else {
                        continue; // finished stream: stale NACK
                    };
                    if p.ver != self.ver[g] {
                        continue; // previous phase: stale NACK
                    }
                    let Some(o) = state.outstanding.as_mut() else {
                        continue;
                    };
                    // Hearing from the shard proves it is alive: the
                    // "consecutive unanswered" budget restarts. Karn's
                    // rule still applies (the eventual answer must not
                    // feed the estimator).
                    o.retx = 0;
                    o.retransmitted = true;
                    let wire_bytes = codec::encoded_len(&o.msg) as u64;
                    self.stats.retransmissions += 1;
                    self.stats.solicited_retransmissions += 1;
                    self.stats.bytes_sent += wire_bytes;
                    self.counters.retransmissions.inc();
                    self.counters.solicited_retransmissions.inc();
                    self.counters.bytes_sent.add(wire_bytes);
                    let shard = self.cfg.shard_of_stream(g);
                    self.shard_bytes[shard] += wire_bytes;
                    let block = first_block(&o.msg);
                    self.flight.record(
                        FlightEventKind::NackRx,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        0,
                    );
                    self.flight.record(
                        FlightEventKind::SolicitedResend,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        wire_bytes,
                    );
                    // Re-keyed PacketTx so the aggregator's eventual rx
                    // pairs with this resend, not the lost original.
                    self.flight.record(
                        FlightEventKind::PacketTx,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        wire_bytes,
                    );
                    self.transport.send(NodeId(self.agg[shard]), &o.msg)?;
                    let rto = self.next_rto(shard);
                    timers.arm(g, Instant::now(), rto);
                }
                Some((_, Message::Welcome { epoch, .. })) => {
                    // An unsolicited `Welcome` mid-collective carrying a
                    // newer epoch is the aggregator's zombie answer
                    // ([`DegradedMode::Rejoin`]): we were evicted and the
                    // group has moved on. Fail fast so the caller can
                    // `join()` and retry. A `Welcome` at our own epoch is
                    // a duplicate of a join reply — ignore it.
                    if epoch_before(self.epoch, epoch) {
                        return Err(ProtocolError::Evicted {
                            worker: self.wid as usize,
                            epoch,
                        });
                    }
                }
                Some(_) => {} // ignore anything else
                None => {
                    // Timer expiry: retransmit outstanding packets,
                    // within the retry budget.
                    let now = Instant::now();
                    while let Some(g) = timers.pop_expired(now) {
                        self.stats.timer_fires += 1;
                        self.counters.timer_fires.inc();
                        let shard = self.cfg.shard_of_stream(g);
                        let Some(state) = streams[g].as_mut() else {
                            continue;
                        };
                        let Some(o) = state.outstanding.as_mut() else {
                            continue;
                        };
                        if o.retx >= self.cfg.max_retransmits {
                            if self.cfg.hot_standby && !self.failed_over[shard] {
                                // Retry budget exhausted but the shard
                                // has a hot standby: re-target it,
                                // reset every outstanding packet's
                                // budget on this shard, and resend them
                                // all to the standby (DESIGN §12). The
                                // standby answers from its replicated
                                // state: completed phases with the
                                // retained result, in-flight phases by
                                // re-aggregating the retransmissions.
                                let old = self.agg[shard];
                                self.agg[shard] = self.cfg.standby_node(shard);
                                self.failed_over[shard] = true;
                                self.failover_at[shard] = Some(Instant::now());
                                self.stats.failovers += 1;
                                self.counters.failovers.inc();
                                self.flight.record(
                                    FlightEventKind::FailoverBegin,
                                    round,
                                    NO_BLOCK,
                                    shard as u16,
                                    old,
                                    0,
                                );
                                for (g2, slot2) in streams.iter_mut().enumerate() {
                                    if self.cfg.shard_of_stream(g2) != shard {
                                        continue;
                                    }
                                    let Some(st2) = slot2.as_mut() else {
                                        continue;
                                    };
                                    let Some(o2) = st2.outstanding.as_mut() else {
                                        continue;
                                    };
                                    o2.retx = 0;
                                    o2.retransmitted = true;
                                    let wire_bytes = codec::encoded_len(&o2.msg) as u64;
                                    self.stats.retransmissions += 1;
                                    self.stats.bytes_sent += wire_bytes;
                                    self.counters.retransmissions.inc();
                                    self.counters.bytes_sent.add(wire_bytes);
                                    self.shard_bytes[shard] += wire_bytes;
                                    let block = first_block(&o2.msg);
                                    self.flight.record(
                                        FlightEventKind::Retransmit,
                                        round,
                                        block,
                                        shard as u16,
                                        self.wid,
                                        wire_bytes,
                                    );
                                    self.flight.record(
                                        FlightEventKind::PacketTx,
                                        round,
                                        block,
                                        shard as u16,
                                        self.wid,
                                        wire_bytes,
                                    );
                                    self.transport.send(NodeId(self.agg[shard]), &o2.msg)?;
                                    let rto = if self.cfg.adaptive_rto {
                                        self.rtt[shard].next_rto()
                                    } else {
                                        self.cfg.retransmit_timeout
                                    };
                                    self.counters.rto.record(rto.as_micros() as u64);
                                    timers.arm(g2, now, rto);
                                }
                                continue;
                            }
                            // Retry budget exhausted: the shard's
                            // aggregator (and standby, if any) is
                            // unresponsive. Fail fast instead of
                            // retransmitting forever.
                            self.counters.peer_unresponsive.inc();
                            return Err(ProtocolError::PeerUnresponsive {
                                peer: self.agg[shard],
                                stream: g,
                                retransmits: o.retx,
                                elapsed: o.sent_at.elapsed(),
                            });
                        }
                        if self.cfg.adaptive_rto {
                            self.rtt[shard].on_timeout();
                            self.stats.backoffs += 1;
                            self.counters.backoffs.inc();
                        }
                        o.retx += 1;
                        o.retransmitted = true;
                        let wire_bytes = codec::encoded_len(&o.msg) as u64;
                        self.stats.retransmissions += 1;
                        self.stats.bytes_sent += wire_bytes;
                        self.counters.retransmissions.inc();
                        self.counters.bytes_sent.add(wire_bytes);
                        self.shard_bytes[shard] += wire_bytes;
                        let block = first_block(&o.msg);
                        // aux = time burnt waiting on this packet so
                        // far — the recovery-overhead component.
                        self.flight.record(
                            FlightEventKind::RtoFire,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            o.sent_at.elapsed().as_nanos() as u64,
                        );
                        self.flight.record(
                            FlightEventKind::Retransmit,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            wire_bytes,
                        );
                        self.flight.record(
                            FlightEventKind::PacketTx,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            wire_bytes,
                        );
                        self.transport
                            .send(NodeId(self.cfg.aggregator_node(shard)), &o.msg)?;
                        let rto = self.next_rto(shard);
                        timers.arm(g, now, rto);
                    }
                }
            }
        }
        self.rounds += 1;
        self.flight
            .record(FlightEventKind::RoundEnd, round, NO_BLOCK, 0, self.wid, 0);
        Ok(())
    }

    fn make_packet(&self, stream: usize, entries: Vec<Entry>) -> Message {
        Message::Block(Packet {
            kind: PacketKind::Data,
            ver: self.ver[stream],
            slot: stream as u16,
            stream: self.cfg.stream_id,
            wid: self.wid,
            epoch: self.epoch,
            entries,
        })
    }

    fn send_tracked(&mut self, stream: usize, msg: &Message) -> Result<(), TransportError> {
        if let Message::Block(p) = msg {
            let blocks = p.entries.iter().filter(|e| !e.is_ack()).count() as u64;
            self.stats.blocks_sent += blocks;
            self.counters.blocks_sent.add(blocks);
        }
        let wire_bytes = codec::encoded_len(msg) as u64;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_bytes;
        self.counters.packets_sent.inc();
        self.counters.bytes_sent.add(wire_bytes);
        let shard = self.cfg.shard_of_stream(stream);
        self.shard_bytes[shard] += wire_bytes;
        // One flight event per fused message, keyed by the first
        // entry's block (the aggregator mirrors the key on PacketRx).
        self.flight.record(
            FlightEventKind::PacketTx,
            self.rounds as u32,
            first_block(msg),
            shard as u16,
            self.wid,
            wire_bytes,
        );
        self.transport.send(NodeId(self.agg[shard]), msg)
    }

    /// Negotiates (re)admission with every shard: sends `Join` and
    /// blocks until the matching `Welcome` installs the group's current
    /// membership epoch and this shard's per-stream phase cursors.
    ///
    /// Implicit initial membership makes this optional at startup (a
    /// fresh group is at epoch 0 with all cursors 0, which is exactly
    /// how the engine initializes); it is required after this worker
    /// has been evicted ([`ProtocolError::Evicted`]) or restarted,
    /// because by then the cursors have moved on.
    ///
    /// The aggregator defers admission to the next full-idle round
    /// boundary, so this can block for up to a round. Retries follow
    /// the same budget/failover rules as the data path.
    pub fn join(&mut self) -> Result<(), ProtocolError> {
        // Drain queued traffic first: everything received before the
        // (re)join — results from phases we were evicted out of, and
        // zombie-data `Welcome` replies — belongs to a membership state
        // we are about to supersede. Leaving an old `Welcome` queued
        // would let `join_shard` adopt its epoch and return while the
        // real admission reply (a strictly newer epoch) stays buffered,
        // aborting the next round with a spurious `Evicted`.
        while self.transport.recv_timeout(Duration::ZERO)?.is_some() {}
        for a in 0..self.cfg.num_aggregators {
            self.join_shard(a)?;
        }
        Ok(())
    }

    fn join_shard(&mut self, shard: usize) -> Result<(), ProtocolError> {
        let msg = Message::Join { wid: self.wid };
        let mut retx: u32 = 0;
        loop {
            self.transport.send(NodeId(self.agg[shard]), &msg)?;
            let rto = self.next_rto(shard);
            let deadline = Instant::now() + rto;
            loop {
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                match self.transport.recv_timeout(left)? {
                    Some((_, Message::Welcome { epoch, vers })) => {
                        if epoch_before(self.epoch, epoch) {
                            self.epoch = epoch;
                            self.flight.record(
                                FlightEventKind::EpochChange,
                                self.rounds as u32,
                                NO_BLOCK,
                                shard as u16,
                                self.wid,
                                epoch as u64,
                            );
                        }
                        // Install the shard's phase cursors so our next
                        // data packet lands in the phase the group will
                        // actually run next.
                        let mut k = 0usize;
                        for g in 0..self.layout.total_streams() {
                            if self.cfg.shard_of_stream(g) != shard {
                                continue;
                            }
                            if let Some(&v) = vers.get(k) {
                                self.ver[g] = v & 1;
                            }
                            k += 1;
                        }
                        return Ok(());
                    }
                    // Stale traffic from phases we are no longer part
                    // of; the cursor install supersedes all of it.
                    Some(_) => {}
                    None => break,
                }
            }
            retx += 1;
            if retx > self.cfg.max_retransmits {
                if self.cfg.hot_standby && !self.failed_over[shard] {
                    let old = self.agg[shard];
                    self.agg[shard] = self.cfg.standby_node(shard);
                    self.failed_over[shard] = true;
                    self.failover_at[shard] = Some(Instant::now());
                    self.stats.failovers += 1;
                    self.counters.failovers.inc();
                    self.flight.record(
                        FlightEventKind::FailoverBegin,
                        self.rounds as u32,
                        NO_BLOCK,
                        shard as u16,
                        old,
                        0,
                    );
                    retx = 0;
                    continue;
                }
                self.counters.peer_unresponsive.inc();
                return Err(ProtocolError::PeerUnresponsive {
                    peer: self.agg[shard],
                    stream: shard,
                    retransmits: retx - 1,
                    elapsed: rto,
                });
            }
        }
    }

    /// Announces departure to every shard — and, when a hot standby is
    /// configured, to the standbys too (they track goodbyes so they can
    /// wind down without ever being promoted).
    ///
    /// Wind-down is symmetric: every lane is attempted even if an
    /// earlier one fails, failed announcements are counted in
    /// `core.recovery.shutdown_errors`, and the first error is returned
    /// after all attempts.
    pub fn shutdown(self) -> Result<(), TransportError> {
        let mut first_err = None;
        for a in 0..self.cfg.num_aggregators {
            let mut targets = vec![self.agg[a]];
            if self.cfg.hot_standby && !self.failed_over[a] {
                targets.push(self.cfg.standby_node(a));
            }
            for t in targets {
                if let Err(e) = self.transport.send(NodeId(t), &Message::Shutdown) {
                    self.counters.shutdown_errors.inc();
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Per-column, per-version aggregation state.
#[derive(Clone)]
struct ColPhase {
    /// Block accumulator (arrival-order, or deterministic §7 worker-id
    /// order). Buffers are allocated once and reused in place across
    /// phases — DESIGN §9.
    acc: ColAccumulator,
    block: Option<BlockIdx>,
    min_next: i64,
}

impl ColPhase {
    fn new(num_workers: usize, deterministic: bool) -> Self {
        ColPhase {
            acc: ColAccumulator::new(num_workers, deterministic),
            block: None,
            min_next: i64::MAX,
        }
    }

    /// Rearms the column for a new phase, keeping every buffer.
    fn reset(&mut self) {
        self.acc.reset();
        self.block = None;
        self.min_next = i64::MAX;
    }
}

/// Per-stream versioned slot (Algorithm 2 lines 26–29).
struct VersionedSlot {
    /// Per-version, per-column phase state.
    cols: [Vec<ColPhase>; 2],
    /// seen[v][wid]: worker's packet for version v already aggregated.
    seen: [Vec<bool>; 2],
    /// Distinct workers aggregated in version v's current phase.
    count: [usize; 2],
    /// Completed result packet per version, kept for retransmission.
    result: [Option<Message>; 2],
    /// When version v's current phase opened (its first accepted
    /// contribution). Later contributions' lateness relative to this
    /// feeds the per-worker `contrib_delay_ns` histograms the straggler
    /// detector watches. Only maintained when those histograms are
    /// registered.
    first_arrival: [Option<Instant>; 2],
}

/// Loss-path counters of the recovery aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryAggregatorStats {
    /// Result multicasts performed.
    pub results_sent: u64,
    /// Duplicate packets that triggered a result retransmission.
    pub result_retransmissions: u64,
    /// Duplicate or retransmitted packets discarded by the seen-bit
    /// check without being aggregated (includes the ones that triggered
    /// a result retransmission).
    pub duplicates_ignored: u64,
    /// Workers evicted for unresponsiveness.
    pub evictions: u64,
    /// Phases completed without one or more evicted workers'
    /// contributions ([`DegradedMode::DropWorker`]).
    pub degraded_completions: u64,
    /// Data packets from already-evicted workers, dropped on arrival.
    pub evicted_packets_dropped: u64,
    /// Solicited-retransmission requests sent to workers whose
    /// contribution a stalled phase was missing (receiver-driven
    /// recovery).
    pub nacks_sent: u64,
    /// Data packets rejected because they carried a membership epoch
    /// older than the sender's admission epoch (a rejoined worker's
    /// pre-eviction stragglers, dropped deterministically — DESIGN §12).
    pub stale_epoch_dropped: u64,
    /// Workers admitted (or re-admitted) at a round boundary via
    /// `Join`/`Welcome`; each admission bumps the membership epoch.
    pub joins_admitted: u64,
    /// Checkpoint deltas replicated to the hot standby (primaries only).
    pub checkpoints_sent: u64,
    /// Checkpoint deltas applied from the primary (standbys only).
    pub checkpoints_applied: u64,
}

/// Fleet-wide `core.recovery.agg.*` registry mirrors of
/// [`RecoveryAggregatorStats`].
struct RecoveryAggCounters {
    results_sent: Counter,
    result_retransmissions: Counter,
    duplicates_ignored: Counter,
    evictions: Counter,
    degraded_completions: Counter,
    nacks_sent: Counter,
    stale_epoch_dropped: Counter,
    joins_admitted: Counter,
    checkpoints_sent: Counter,
    checkpoints_applied: Counter,
    /// `core.recovery.agg.worker.<w>.contrib_delay_ns`: per worker, how
    /// long after a phase opened this worker's contribution arrived
    /// (0 for the phase opener). The time-series sampler derives the
    /// windowed p99 the straggler-drift detector compares across peers.
    /// Empty when detached — lateness then costs no clock reads.
    contrib_delay: Vec<Histogram>,
}

impl RecoveryAggCounters {
    fn detached() -> Self {
        RecoveryAggCounters {
            results_sent: Counter::detached(),
            result_retransmissions: Counter::detached(),
            duplicates_ignored: Counter::detached(),
            evictions: Counter::detached(),
            degraded_completions: Counter::detached(),
            nacks_sent: Counter::detached(),
            stale_epoch_dropped: Counter::detached(),
            joins_admitted: Counter::detached(),
            checkpoints_sent: Counter::detached(),
            checkpoints_applied: Counter::detached(),
            contrib_delay: Vec::new(),
        }
    }

    fn registered(telemetry: &Telemetry, num_workers: usize) -> Self {
        RecoveryAggCounters {
            results_sent: telemetry.counter("core.recovery.agg.results_sent"),
            result_retransmissions: telemetry.counter("core.recovery.agg.result_retransmissions"),
            duplicates_ignored: telemetry.counter("core.recovery.agg.duplicates_ignored"),
            evictions: telemetry.counter("core.recovery.agg.evictions"),
            degraded_completions: telemetry.counter("core.recovery.agg.degraded_completions"),
            nacks_sent: telemetry.counter("core.recovery.agg.nacks_sent"),
            stale_epoch_dropped: telemetry.counter("core.recovery.agg.stale_epoch_dropped"),
            joins_admitted: telemetry.counter("core.recovery.agg.joins_admitted"),
            checkpoints_sent: telemetry.counter("core.recovery.agg.checkpoints_sent"),
            checkpoints_applied: telemetry.counter("core.recovery.agg.checkpoints_applied"),
            contrib_delay: (0..num_workers)
                .map(|w| {
                    telemetry.histogram(&format!("core.recovery.agg.worker.{w}.contrib_delay_ns"))
                })
                .collect(),
        }
    }
}

/// Aggregator engine with Algorithm 2 loss recovery.
pub struct RecoveryAggregator<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    shard: usize,
    /// True for a hot-standby replica (node `W + A + shard`): it applies
    /// checkpoint deltas instead of producing them and stays passive —
    /// no eviction sweeps — until the first data packet arrives, which
    /// means the workers have failed over to it.
    standby: bool,
    /// Primaries are active from the start; a standby activates on its
    /// first data packet.
    active: bool,
    /// Current membership epoch; bumped on every eviction and admission.
    epoch: u8,
    /// Per-worker admission epoch: the epoch at which the worker (last)
    /// became a member. Data packets stamped with an older epoch are a
    /// rejoined worker's pre-eviction stragglers and are dropped.
    member_epoch: Vec<u8>,
    /// Per-stream phase cursor: the version the *next* fresh phase of
    /// the stream will run (handed to joiners in `Welcome`).
    next_ver: Vec<u8>,
    /// Join requests deferred to the next full-idle round boundary.
    pending_joins: Vec<u16>,
    /// Whether any phase is currently in flight. The idle→busy edge
    /// (first accepted packet of a round) refreshes every worker's
    /// liveness clock: eviction measures silence *while the group is
    /// waiting*, so idle time between rounds must not count against a
    /// worker that simply had nothing to send yet.
    busy: bool,
    slots: Vec<Option<VersionedSlot>>,
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
    /// Workers evicted for unresponsiveness (packets dropped, excluded
    /// from multicasts and from phase-completion counts).
    evicted: Vec<bool>,
    evicted_count: usize,
    /// Last time each worker was heard from (data or shutdown).
    last_heard: Vec<Instant>,
    /// Loss-path counters.
    pub stats: RecoveryAggregatorStats,
    counters: RecoveryAggCounters,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// Freelists for result-packet buffers (DESIGN §9): retired results
    /// are recycled when their version's state is reused.
    pool: BufferPool,
}

impl<T: Transport> RecoveryAggregator<T> {
    /// Creates the engine for the shard whose node id matches the
    /// transport's. Nodes `W..W+A` are primaries; with
    /// [`OmniConfig::hot_standby`], nodes `W+A..W+2A` are the matching
    /// standbys (standby `s` shares primary `s`'s shard).
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let node = transport.local_id().0 as usize;
        assert!(
            node >= cfg.num_workers && node < cfg.mesh_size(),
            "node {node} is not an aggregator"
        );
        let rel = node - cfg.num_workers;
        let standby = rel >= cfg.num_aggregators;
        let shard = rel % cfg.num_aggregators;
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let n = cfg.num_workers;
        let width = layout.width();
        let slots = (0..layout.total_streams())
            .map(|g| {
                (cfg.shard_of_stream(g) == shard).then(|| VersionedSlot {
                    cols: [
                        vec![ColPhase::new(n, cfg.deterministic); width],
                        vec![ColPhase::new(n, cfg.deterministic); width],
                    ],
                    seen: [vec![false; n], vec![false; n]],
                    count: [0, 0],
                    result: [None, None],
                    first_arrival: [None, None],
                })
            })
            .collect();
        let departed = vec![false; cfg.num_workers];
        let evicted = vec![false; cfg.num_workers];
        let last_heard = vec![Instant::now(); cfg.num_workers];
        let pool = BufferPool::for_block_size(cfg.block_size);
        let num_streams = layout.total_streams();
        RecoveryAggregator {
            transport,
            cfg,
            layout,
            shard,
            standby,
            active: !standby,
            epoch: 0,
            member_epoch: vec![0; n],
            next_ver: vec![0; num_streams],
            pending_joins: Vec::new(),
            busy: false,
            slots,
            departed,
            goodbyes: 0,
            evicted,
            evicted_count: 0,
            last_heard,
            stats: RecoveryAggregatorStats::default(),
            counters: RecoveryAggCounters::detached(),
            flight: FlightLane::disabled(),
            pool,
        }
    }

    /// Like [`RecoveryAggregator::new`], but mirrors loss-path counters
    /// into `telemetry`'s `core.recovery.agg.*` counters and records
    /// protocol flight events on an `agg{shard}` lane when the
    /// registry's flight recorder is enabled.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut a = Self::new(transport, cfg);
        a.counters = RecoveryAggCounters::registered(telemetry, a.cfg.num_workers);
        let lane_name = if a.standby {
            format!("standby{}", a.shard)
        } else {
            format!("agg{}", a.shard)
        };
        a.flight = telemetry
            .flight()
            .lane(&lane_name, LaneRole::Aggregator, a.shard as u16);
        a.pool =
            BufferPool::for_block_size(a.cfg.block_size).with_telemetry("recovery_agg", telemetry);
        a
    }

    /// Serves until every worker says `Shutdown` or has been evicted.
    ///
    /// A worker the shard is still waiting on that stays silent for
    /// [`OmniConfig::worker_eviction_timeout`] is evicted: in
    /// [`DegradedMode::DropWorker`] the collective completes without it
    /// (the phase-completion count is renormalized to the survivors);
    /// in [`DegradedMode::Abort`] this returns
    /// [`ProtocolError::WorkerEvicted`].
    pub fn run(&mut self) -> Result<(), ProtocolError> {
        // Poll granularity for the eviction sweep: fine enough to
        // detect eviction promptly, coarse enough to stay off the hot
        // path.
        let tick = (self.cfg.worker_eviction_timeout / 4)
            .clamp(Duration::from_millis(1), Duration::from_millis(100));
        let now = Instant::now();
        for t in self.last_heard.iter_mut() {
            *t = now;
        }
        loop {
            if let Some((from, msg)) = self.transport.recv_timeout(tick)? {
                match msg {
                    Message::Block(p) if p.kind == PacketKind::Data => {
                        // A standby's first data packet means the
                        // workers have failed over to it: wake up and
                        // start the eviction clocks fresh.
                        if self.standby && !self.active {
                            self.active = true;
                            let now = Instant::now();
                            for t in self.last_heard.iter_mut() {
                                *t = now;
                            }
                        }
                        let wid = p.wid as usize;
                        if wid < self.last_heard.len() {
                            self.last_heard[wid] = Instant::now();
                        }
                        self.handle_data(p)?;
                    }
                    Message::Join { wid } => self.handle_join(wid)?,
                    Message::Checkpoint(delta) if self.standby => {
                        self.apply_checkpoint(delta);
                    }
                    Message::Checkpoint(_) => {}
                    Message::Shutdown => {
                        // Finished worker: stop multicasting to it (its
                        // endpoint may already be gone).
                        let w = from.index();
                        if w < self.departed.len() && !self.departed[w] && !self.evicted[w] {
                            self.departed[w] = true;
                            self.goodbyes += 1;
                            self.last_heard[w] = Instant::now();
                        }
                    }
                    _ => {} // tolerate anything else on a lossy fabric
                }
            }
            if !self.pending_joins.is_empty() {
                self.try_admissions()?;
            }
            self.sweep_evictions()?;
            if self.goodbyes + self.evicted_count == self.cfg.num_workers {
                return Ok(());
            }
        }
    }

    /// True when no phase of any owned slot is in flight — the
    /// round-boundary condition under which membership may change.
    fn fully_idle(&self) -> bool {
        self.slots
            .iter()
            .flatten()
            .all(|slot| slot.count[0] == 0 && slot.count[1] == 0)
    }

    /// The per-stream phase cursors handed to joiners: for each owned
    /// stream in ascending order, the version its next fresh phase will
    /// run.
    fn ver_cursors(&self) -> Vec<u8> {
        (0..self.layout.total_streams())
            .filter(|&g| self.cfg.shard_of_stream(g) == self.shard)
            .map(|g| self.next_ver[g])
            .collect()
    }

    fn evicted_wids(&self) -> Vec<u16> {
        (0..self.cfg.num_workers)
            .filter(|&w| self.evicted[w])
            .map(|w| w as u16)
            .collect()
    }

    /// Replicates a checkpoint delta to this shard's hot standby
    /// (no-op on standbys and on meshes without one).
    fn replicate(&mut self, delta: CheckpointDelta) -> Result<(), TransportError> {
        if !self.cfg.hot_standby || self.standby {
            return Ok(());
        }
        let msg = Message::Checkpoint(delta);
        let bytes = codec::encoded_len(&msg) as u64;
        self.stats.checkpoints_sent += 1;
        self.counters.checkpoints_sent.inc();
        self.flight.record(
            FlightEventKind::CheckpointTx,
            0,
            NO_BLOCK,
            self.shard as u16,
            u16::MAX,
            bytes,
        );
        crate::wire::send_best_effort(
            &self.transport,
            NodeId(self.cfg.standby_node(self.shard)),
            &msg,
        )
    }

    /// Handles a worker's `Join`. A current member gets an immediate
    /// idempotent `Welcome`; an evicted (or departed) worker is queued
    /// and admitted at the next full-idle round boundary.
    fn handle_join(&mut self, wid: u16) -> Result<(), TransportError> {
        let w = wid as usize;
        if w >= self.cfg.num_workers {
            return Ok(());
        }
        self.last_heard[w] = Instant::now();
        if !self.evicted[w] && !self.departed[w] && !self.pending_joins.contains(&wid) {
            // Already a member: a startup join, or a retry racing its
            // own admission. Answer with the current state.
            let welcome = Message::Welcome {
                epoch: self.epoch,
                vers: self.ver_cursors(),
            };
            return crate::wire::send_best_effort(
                &self.transport,
                NodeId(self.cfg.worker_node(w)),
                &welcome,
            );
        }
        if !self.pending_joins.contains(&wid) {
            self.pending_joins.push(wid);
        }
        self.try_admissions()
    }

    /// Admits every queued joiner if the shard is at a full-idle round
    /// boundary (no phase of any slot in flight).
    fn try_admissions(&mut self) -> Result<(), TransportError> {
        if self.pending_joins.is_empty() || !self.fully_idle() {
            return Ok(());
        }
        let joins = std::mem::take(&mut self.pending_joins);
        for wid in joins {
            self.admit(wid)?;
        }
        Ok(())
    }

    /// Admits one worker: clears its stale protocol state, bumps the
    /// membership epoch, replicates the membership change, and sends
    /// the `Welcome` that tells the worker which epoch and phase
    /// cursors to resume from.
    fn admit(&mut self, wid: u16) -> Result<(), TransportError> {
        let w = wid as usize;
        if self.evicted[w] {
            self.evicted[w] = false;
            self.evicted_count -= 1;
        }
        if self.departed[w] {
            self.departed[w] = false;
            self.goodbyes -= 1;
        }
        // Forget anything the previous incarnation contributed: the
        // joiner starts from the handed-out cursors with clean seen
        // bits (counts are all zero at an idle boundary).
        for slot in self.slots.iter_mut().flatten() {
            slot.seen[0][w] = false;
            slot.seen[1][w] = false;
        }
        self.epoch = self.epoch.wrapping_add(1);
        self.member_epoch[w] = self.epoch;
        self.last_heard[w] = Instant::now();
        self.stats.joins_admitted += 1;
        self.counters.joins_admitted.inc();
        self.flight.record(
            FlightEventKind::EpochChange,
            0,
            NO_BLOCK,
            self.shard as u16,
            wid,
            self.epoch as u64,
        );
        self.replicate(CheckpointDelta {
            epoch: self.epoch,
            slot: MEMBERSHIP_ONLY,
            ver: 0,
            members: vec![wid],
            evicted: self.evicted_wids(),
            entries: Vec::new(),
        })?;
        let welcome = Message::Welcome {
            epoch: self.epoch,
            vers: self.ver_cursors(),
        };
        crate::wire::send_best_effort(&self.transport, NodeId(self.cfg.worker_node(w)), &welcome)
    }

    /// Applies a checkpoint delta from the primary (standbys only):
    /// either a membership change, or a completed phase's full slot
    /// outcome — result packet, contributor seen bits, and the stream's
    /// next-phase cursor (DESIGN §12).
    fn apply_checkpoint(&mut self, delta: CheckpointDelta) {
        let n = self.cfg.num_workers;
        let msg = Message::Checkpoint(delta);
        let bytes = codec::encoded_len(&msg) as u64;
        let Message::Checkpoint(delta) = msg else {
            unreachable!()
        };
        self.stats.checkpoints_applied += 1;
        self.counters.checkpoints_applied.inc();
        self.flight.record(
            FlightEventKind::CheckpointRx,
            0,
            NO_BLOCK,
            self.shard as u16,
            u16::MAX,
            bytes,
        );
        if epoch_before(self.epoch, delta.epoch) {
            self.epoch = delta.epoch;
            self.flight.record(
                FlightEventKind::EpochChange,
                0,
                NO_BLOCK,
                self.shard as u16,
                u16::MAX,
                delta.epoch as u64,
            );
        }
        // The eviction set is replicated wholesale with every delta.
        for w in 0..n {
            let is = delta.evicted.contains(&(w as u16));
            if self.evicted[w] != is {
                self.evicted[w] = is;
                if is {
                    self.evicted_count += 1;
                } else {
                    self.evicted_count -= 1;
                }
            }
        }
        if delta.slot == MEMBERSHIP_ONLY {
            let now = Instant::now();
            for &wid in &delta.members {
                let w = wid as usize;
                if w >= n {
                    continue;
                }
                self.member_epoch[w] = delta.epoch;
                if self.departed[w] {
                    self.departed[w] = false;
                    self.goodbyes -= 1;
                }
                self.last_heard[w] = now;
                for slot in self.slots.iter_mut().flatten() {
                    slot.seen[0][w] = false;
                    slot.seen[1][w] = false;
                }
            }
            return;
        }
        // Completed-phase delta: install the retained result and the
        // contributors' seen bits exactly as the primary left them, so
        // a failed-over worker that missed the multicast gets the
        // *same* bytes retransmitted, and one that didn't miss it is
        // deduplicated. In-flight phases are deliberately not
        // replicated: every surviving worker retransmits its
        // outstanding packet on failover, and the phase re-aggregates
        // from scratch — bit-identical under §7 worker-id-order
        // reduction.
        let g = delta.slot as usize;
        let v = (delta.ver & 1) as usize;
        let epoch = self.epoch;
        if g >= self.slots.len() {
            return;
        }
        let Some(slot) = self.slots[g].as_mut() else {
            return;
        };
        slot.count[v] = 0;
        for b in slot.seen[v].iter_mut() {
            *b = false;
        }
        for &wid in &delta.members {
            let c = wid as usize;
            if c < n {
                slot.seen[v][c] = true;
                slot.seen[v ^ 1][c] = false;
            }
        }
        let old = slot.result[v].take();
        slot.result[v] = Some(Message::Block(Packet {
            kind: PacketKind::Result,
            ver: v as u8,
            slot: delta.slot,
            stream: self.cfg.stream_id,
            wid: u16::MAX,
            epoch,
            entries: delta.entries,
        }));
        self.next_ver[g] = (v ^ 1) as u8;
        if let Some(old) = old {
            self.pool.recycle_message(old);
        }
    }

    /// True if version `v` of slot `g` has an aggregation phase in
    /// flight that worker `w` has not yet contributed to.
    fn waiting_on(&self, w: usize) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|slot| (0..2).any(|v| slot.count[v] > 0 && !slot.seen[v][w]))
    }

    /// Evicts workers the shard is waiting on that have been silent for
    /// longer than the eviction timeout.
    fn sweep_evictions(&mut self) -> Result<(), ProtocolError> {
        // A passive standby must not evict anyone: its workers are
        // (rightly) talking to the primary, so everyone looks silent.
        if !self.active {
            return Ok(());
        }
        let now = Instant::now();
        for w in 0..self.cfg.num_workers {
            if self.departed[w] || self.evicted[w] {
                continue;
            }
            let idle = now.duration_since(self.last_heard[w]);
            if idle <= self.cfg.worker_eviction_timeout || !self.waiting_on(w) {
                continue;
            }
            self.stats.evictions += 1;
            self.counters.evictions.inc();
            self.flight.record(
                FlightEventKind::Eviction,
                0,
                NO_BLOCK,
                self.shard as u16,
                w as u16,
                idle.as_nanos() as u64,
            );
            if self.cfg.degraded_mode == DegradedMode::Abort {
                return Err(ProtocolError::WorkerEvicted { worker: w, idle });
            }
            self.evicted[w] = true;
            self.evicted_count += 1;
            // Eviction is a membership change: bump the epoch so a
            // later incarnation of `w` (rejoined at a newer epoch) can
            // be told apart from this one's in-flight stragglers, and
            // replicate the new membership to the standby.
            self.epoch = self.epoch.wrapping_add(1);
            self.flight.record(
                FlightEventKind::EpochChange,
                0,
                NO_BLOCK,
                self.shard as u16,
                w as u16,
                self.epoch as u64,
            );
            self.replicate(CheckpointDelta {
                epoch: self.epoch,
                slot: MEMBERSHIP_ONLY,
                ver: 0,
                members: Vec::new(),
                evicted: self.evicted_wids(),
                entries: Vec::new(),
            })?;
            // Renormalize: phases already in flight may now be
            // complete without `w`'s contribution; idle versions must
            // forget `w`'s stale seen bit so the *next* phase does not
            // wait for it either.
            for g in 0..self.layout.total_streams() {
                if self.slots[g].is_none() {
                    continue;
                }
                for v in 0..2 {
                    let slot = self.slots[g].as_mut().unwrap();
                    if slot.count[v] == 0 {
                        slot.seen[v][w] = false;
                    } else {
                        self.complete_if_ready(g, v)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn handle_data(&mut self, p: Packet) -> Result<(), TransportError> {
        let g = p.slot as usize;
        let v = (p.ver & 1) as usize;
        let wid = p.wid as usize;
        let width = self.layout.width();

        if wid < self.evicted.len() && self.evicted[wid] {
            // A zombie: evicted, but packets still in flight (or the
            // worker is alive behind a healed partition). Its phase
            // accounting has been renormalized without it, so its
            // contributions must not be aggregated. In `Rejoin` mode
            // the zombie is answered with the current `Welcome` so it
            // fails fast ([`ProtocolError::Evicted`]) and can re-join;
            // otherwise it fails via its own retry budget.
            self.stats.evicted_packets_dropped += 1;
            if self.cfg.degraded_mode == DegradedMode::Rejoin {
                let welcome = Message::Welcome {
                    epoch: self.epoch,
                    vers: self.ver_cursors(),
                };
                crate::wire::send_best_effort(
                    &self.transport,
                    NodeId(self.cfg.worker_node(wid)),
                    &welcome,
                )?;
            }
            return Ok(());
        }

        if wid < self.member_epoch.len() && epoch_before(p.epoch, self.member_epoch[wid]) {
            // A straggler from before this worker's (re)admission:
            // its phase state was wiped at admission, so aggregating
            // pre-admission packets would corrupt the fresh cursors.
            // The admission epoch makes the rejection deterministic.
            self.stats.stale_epoch_dropped += 1;
            self.counters.stale_epoch_dropped.inc();
            return Ok(());
        }

        // First accepted packet after a fully-idle period starts a new
        // round: restart every member's liveness clock so silence
        // accumulated while nobody owed anything (a gap between rounds,
        // a worker blocked on its caller) cannot trigger an instant
        // eviction the moment the group starts waiting again.
        if !self.busy {
            self.busy = true;
            let now = Instant::now();
            for t in self.last_heard.iter_mut() {
                *t = now;
            }
        }

        // Keyed by the first entry's block, mirroring the sender's
        // PacketTx key so the reconstructor can pair tx with rx.
        if let Some(first) = p.entries.first() {
            self.flight.record(
                FlightEventKind::PacketRx,
                0,
                first.block as u64,
                self.shard as u16,
                p.wid,
                p.entries.len() as u64,
            );
        }

        let slot = self.slots[g].as_mut().expect("stream not owned by shard");

        if slot.seen[v][wid] {
            // Duplicate (network dup or worker retransmission). If the
            // phase is complete, the worker evidently missed the result:
            // unicast it back (Algorithm 2 lines 47–49).
            self.stats.duplicates_ignored += 1;
            self.counters.duplicates_ignored.inc();
            if slot.count[v] == 0 {
                if let Some(result) = slot.result[v].as_ref() {
                    self.stats.result_retransmissions += 1;
                    self.counters.result_retransmissions.inc();
                    crate::wire::send_best_effort(
                        &self.transport,
                        NodeId(self.cfg.worker_node(wid)),
                        result,
                    )?;
                }
            } else {
                // Phase in progress and a worker is already
                // retransmitting: the stall is real, and this shard
                // knows *exactly* whose contribution it lacks.
                // Receiver-driven recovery: solicit the missing workers
                // directly instead of letting every worker's timer race
                // (the retransmission-storm path — see DESIGN.md "Fault
                // model & degradation").
                let nack = Message::Block(Packet {
                    kind: PacketKind::Nack,
                    ver: v as u8,
                    slot: g as u16,
                    stream: self.cfg.stream_id,
                    wid: u16::MAX,
                    epoch: self.epoch,
                    entries: Vec::new(),
                });
                for w in 0..self.cfg.num_workers {
                    if slot.seen[v][w] || self.departed[w] || self.evicted[w] {
                        continue;
                    }
                    self.stats.nacks_sent += 1;
                    self.counters.nacks_sent.inc();
                    self.flight.record(
                        FlightEventKind::NackTx,
                        0,
                        NO_BLOCK,
                        self.shard as u16,
                        w as u16,
                        0,
                    );
                    crate::wire::send_best_effort(
                        &self.transport,
                        NodeId(self.cfg.worker_node(w)),
                        &nack,
                    )?;
                }
            }
            // A trailing duplicate of a *completed* phase must not leave
            // the shard marked busy: the idle→busy edge above fired for
            // a packet that opened no work, and with nothing in flight
            // no completion will ever clear the flag again — the armed
            // eviction sweep would then count the inter-round gap as
            // member silence (and, in the simulator, re-arm forever and
            // keep the event queue from draining).
            if self.busy && self.fully_idle() {
                self.busy = false;
            }
            return Ok(());
        }

        // First packet of a fresh phase resets that version's state
        // (Algorithm 2 lines 36–38 generalize per column).
        slot.seen[v][wid] = true;
        slot.seen[v ^ 1][wid] = false;
        slot.count[v] += 1;
        // Contribution lateness vs the phase opener, for the straggler
        // detector. Clock reads only when the histograms are registered.
        if let Some(h) = self.counters.contrib_delay.get(wid) {
            if slot.count[v] == 1 {
                slot.first_arrival[v] = Some(Instant::now());
                h.record(0);
            } else if let Some(opened) = slot.first_arrival[v] {
                h.record(opened.elapsed().as_nanos() as u64);
            }
        }
        if slot.count[v] == 1 {
            // First packet of a fresh phase: reset the columns in place
            // (keeping their buffers) and recycle the retired result's
            // buffers — its retransmission window is over (DESIGN §9).
            for col in slot.cols[v].iter_mut() {
                col.reset();
            }
            if let Some(old) = slot.result[v].take() {
                self.pool.recycle_message(old);
            }
            // First contribution claims the phase's slot; released in
            // `complete_if_ready` under the same (block, shard) key.
            if let Some(first) = p.entries.first() {
                self.flight.record(
                    FlightEventKind::SlotOccupy,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    p.wid,
                    v as u64,
                );
            }
        }

        let slot = self.slots[g].as_mut().expect("stream not owned by shard");
        for entry in &p.entries {
            let (col, next) = decode_next(entry.next, width);
            let cp = &mut slot.cols[v][col];
            // Acks carry the requested block too: record it even without
            // data, so an all-ack phase (possible when the only worker
            // whose chain pointed at this block was evicted mid-phase)
            // still advances the column instead of dropping it from the
            // result and stalling the chain forever.
            match cp.block {
                None => cp.block = Some(entry.block),
                Some(b) => debug_assert_eq!(b, entry.block, "phase mixes blocks"),
            }
            if !entry.data.is_empty() {
                // Arrival-order mode reduces immediately (vectorized
                // kernel); deterministic §7 mode copies into the
                // worker's persistent buffer, reduced in worker-id
                // order at completion. No per-block allocation.
                cp.acc.store(wid, &entry.data);
            }
            cp.min_next = cp.min_next.min(if next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                next as i64
            });
        }

        self.complete_if_ready(g, v)?;
        Ok(())
    }

    /// Number of contributions version `v` of slot `g` needs before its
    /// phase completes: all workers, minus the evicted ones that have
    /// not already contributed to this phase.
    fn needed(&self, g: usize, v: usize) -> usize {
        let slot = self.slots[g].as_ref().expect("stream not owned by shard");
        let missing_evicted = (0..self.cfg.num_workers)
            .filter(|&w| self.evicted[w] && !slot.seen[v][w])
            .count();
        self.cfg.num_workers - missing_evicted
    }

    /// Completes version `v` of slot `g` if its in-flight phase has all
    /// the contributions it needs (Algorithm 2 l.42, with the count
    /// renormalized past evicted workers), multicasting the result to
    /// the surviving workers.
    fn complete_if_ready(&mut self, g: usize, v: usize) -> Result<(), TransportError> {
        let n = self.cfg.num_workers;
        let width = self.layout.width();
        let needed = self.needed(g, v);
        let slot = self.slots[g].as_mut().expect("stream not owned by shard");
        if slot.count[v] == 0 || slot.count[v] < needed {
            return Ok(());
        }
        // Phase complete (the count wraps to 0, Algorithm 2 l.42).
        slot.count[v] = 0;
        if needed < n {
            self.stats.degraded_completions += 1;
            self.counters.degraded_completions.inc();
        }
        let mut entries = self.pool.checkout_entries();
        for (c, cp) in slot.cols[v].iter_mut().enumerate() {
            let Some(block) = cp.block else { continue };
            let min_next = if cp.min_next == i64::MAX || cp.min_next == INFINITY_BLOCK as i64 {
                INFINITY_BLOCK
            } else {
                cp.min_next as BlockIdx
            };
            if cp.acc.touched() {
                let mut data = self.pool.checkout_f32();
                cp.acc.take_into(&mut data);
                entries.push(Entry::data(block, encode_next(min_next, c, width), data));
            } else {
                // All-ack phase: every surviving contributor skipped this
                // block (the evicted worker that requested it never sent
                // its data). The aggregate is zero — an ack result entry
                // advances the chain without carrying a payload.
                entries.push(Entry::ack(block, encode_next(min_next, c, width)));
            }
        }
        // Forget evicted workers' seen bits so the *next* phase of this
        // version does not count them as pending contributors.
        for w in 0..n {
            if self.evicted[w] {
                slot.seen[v][w] = false;
            }
        }
        // The stream's next fresh phase runs the other version — the
        // cursor handed to joiners admitted at the round boundary.
        let members: Vec<u16> = (0..n)
            .filter(|&w| slot.seen[v][w])
            .map(|w| w as u16)
            .collect();
        self.next_ver[g] = (v ^ 1) as u8;
        // Failover bit-identity invariant (DESIGN §12): the completed
        // phase is checkpointed to the standby *before* any worker can
        // see its result, so no worker can advance past a phase the
        // standby does not hold.
        if self.cfg.hot_standby && !self.standby {
            self.replicate(CheckpointDelta {
                epoch: self.epoch,
                slot: g as u16,
                ver: v as u8,
                members,
                evicted: self.evicted_wids(),
                entries: entries.clone(),
            })?;
        }
        let result = Message::Block(Packet {
            kind: PacketKind::Result,
            ver: v as u8,
            slot: g as u16,
            stream: self.cfg.stream_id,
            wid: u16::MAX,
            epoch: self.epoch,
            entries,
        });
        let workers: Vec<NodeId> = (0..n)
            .filter(|w| !self.departed[*w] && !self.evicted[*w])
            .map(|w| NodeId(self.cfg.worker_node(w)))
            .collect();
        self.stats.results_sent += 1;
        self.counters.results_sent.inc();
        if let Message::Block(ref pkt) = result {
            if let Some(first) = pkt.entries.first() {
                self.flight.record(
                    FlightEventKind::SlotRelease,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    u16::MAX,
                    v as u64,
                );
                self.flight.record(
                    FlightEventKind::ResultTx,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    u16::MAX,
                    pkt.entries.len() as u64,
                );
            }
        }
        for w in &workers {
            crate::wire::send_best_effort(&self.transport, *w, &result)?;
        }
        self.slots[g].as_mut().unwrap().result[v] = Some(result);
        if self.fully_idle() {
            // Round boundary: the next accepted packet re-arms the
            // liveness clocks (see `busy`).
            self.busy = false;
        }
        Ok(())
    }
}
