//! Loss-recovery engines (Algorithm 2, Appendix A): OmniReduce over a
//! network that may drop or duplicate packets.
//!
//! Differences from the lossless engines:
//!
//! * **Everyone always answers.** Each worker responds to every result
//!   packet for every active column — with block data when it owns the
//!   requested block, with a data-less acknowledgment otherwise — so the
//!   aggregator can use a per-phase *count of distinct workers* as the
//!   completion condition instead of the min-next comparison.
//! * **Timers.** A worker arms a retransmission timer for every packet it
//!   sends and resends on expiry; receiving the matching result cancels
//!   the timer.
//! * **Two-phase versioned slots.** The aggregator keeps two versions of
//!   every slot's state, used in alternating phases. Version `v` is only
//!   reused once every worker has sent a packet for version `v̂` — which a
//!   worker does only after receiving version `v`'s result — so a
//!   completed result stays available for retransmission exactly as long
//!   as any worker might still need it.
//! * **Dedup.** A per-version `seen` bit per worker keeps duplicated or
//!   retransmitted packets from being aggregated twice; a duplicate for a
//!   *completed* phase triggers a unicast retransmission of that phase's
//!   result to the sender (the aggregator-side loss repair).
//!
//! Delivery assumption: like the paper's DPDK deployment, the network may
//! drop or duplicate packets but does not reorder packets between a given
//! pair of nodes ([`omnireduce_transport::LossyNetwork`] guarantees this).

use std::time::{Duration, Instant};

use omnireduce_telemetry::{
    Counter, FlightEventKind, FlightLane, Histogram, LaneRole, Telemetry, NO_BLOCK,
};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, Tensor, INFINITY_BLOCK};
use omnireduce_transport::timer::{RttEstimator, TimerQueue};
use omnireduce_transport::{
    codec, BufferPool, Entry, Message, NodeId, Packet, PacketKind, Transport, TransportError,
};

use crate::config::{DegradedMode, OmniConfig};
use crate::error::ProtocolError;
use crate::layout::StreamLayout;
use crate::slot::ColAccumulator;
use crate::wire::{decode_next, encode_next};

/// Traffic counters for the recovery worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct data/ack packets sent (excluding retransmissions).
    pub packets_sent: u64,
    /// Retransmissions triggered by timer expiry.
    pub retransmissions: u64,
    /// Wire bytes sent, including retransmissions.
    pub bytes_sent: u64,
    /// Blocks transmitted as data entries (excluding retransmissions).
    pub blocks_sent: u64,
    /// Retransmission-timer expirations handled.
    pub timer_fires: u64,
    /// Results ignored because they were stale (finished stream) or
    /// carried an already-processed phase version.
    pub stale_results_ignored: u64,
    /// Exponential-backoff events: timer expirations that doubled the
    /// RTO before retransmitting (adaptive mode only).
    pub backoffs: u64,
    /// Retransmissions solicited by an aggregator NACK (the shard told
    /// us our contribution to a stalled phase is missing). Also counted
    /// in [`RecoveryStats::retransmissions`].
    pub solicited_retransmissions: u64,
}

/// Fleet-wide `core.recovery.*` registry mirrors of [`RecoveryStats`]
/// (detached no-ops unless built via [`RecoveryWorker::with_telemetry`]).
struct RecoveryCounters {
    packets_sent: Counter,
    retransmissions: Counter,
    bytes_sent: Counter,
    blocks_sent: Counter,
    timer_fires: Counter,
    stale_results_ignored: Counter,
    backoffs: Counter,
    peer_unresponsive: Counter,
    solicited_retransmissions: Counter,
    /// `core.recovery.rto`: the RTO armed for each sent packet, in µs.
    rto: Histogram,
}

impl RecoveryCounters {
    fn detached() -> Self {
        RecoveryCounters {
            packets_sent: Counter::detached(),
            retransmissions: Counter::detached(),
            bytes_sent: Counter::detached(),
            blocks_sent: Counter::detached(),
            timer_fires: Counter::detached(),
            stale_results_ignored: Counter::detached(),
            backoffs: Counter::detached(),
            peer_unresponsive: Counter::detached(),
            solicited_retransmissions: Counter::detached(),
            rto: Histogram::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        RecoveryCounters {
            packets_sent: telemetry.counter("core.recovery.packets_sent"),
            retransmissions: telemetry.counter("core.recovery.retransmissions"),
            bytes_sent: telemetry.counter("core.recovery.bytes_sent"),
            blocks_sent: telemetry.counter("core.recovery.blocks_sent"),
            timer_fires: telemetry.counter("core.recovery.timer_fires"),
            stale_results_ignored: telemetry.counter("core.recovery.stale_results_ignored"),
            backoffs: telemetry.counter("core.recovery.backoffs"),
            peer_unresponsive: telemetry.counter("core.recovery.peer_unresponsive"),
            solicited_retransmissions: telemetry.counter("core.recovery.solicited_retransmissions"),
            rto: telemetry.histogram("core.recovery.rto"),
        }
    }
}

/// Flight-recorder pairing key for a fused message: its first entry's
/// block ([`NO_BLOCK`] for empty/control messages). Sender and receiver
/// derive the key from the same packet, so tx and rx events match.
fn first_block(msg: &Message) -> u64 {
    match msg {
        Message::Block(p) => p
            .entries
            .first()
            .map(|e| e.block as u64)
            .unwrap_or(NO_BLOCK),
        _ => NO_BLOCK,
    }
}

struct WorkerCol {
    my_next: BlockIdx,
    done: bool,
}

/// The packet a worker is waiting to see answered on one stream.
struct Outstanding {
    msg: Message,
    /// When the packet was first sent (for RTT sampling and for the
    /// `elapsed` field of [`ProtocolError::PeerUnresponsive`]).
    sent_at: Instant,
    /// Karn's rule: once a packet has been retransmitted, its eventual
    /// answer is ambiguous and must not feed the RTT estimator.
    retransmitted: bool,
    /// Consecutive unanswered retransmissions of this packet.
    retx: u32,
}

struct WorkerStream {
    cols: Vec<Option<WorkerCol>>,
    remaining: usize,
    /// Last packet sent; retransmitted on timeout.
    outstanding: Option<Outstanding>,
}

/// Worker engine with Algorithm 2 loss recovery.
pub struct RecoveryWorker<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: u16,
    /// Per-stream protocol phase, persists across AllReduce rounds.
    ver: Vec<u8>,
    /// Per-shard RTT estimator (adaptive mode); persists across rounds
    /// so later rounds start from a converged RTO.
    rtt: Vec<RttEstimator>,
    stats: RecoveryStats,
    /// Wire bytes sent per destination shard (index = shard), so
    /// multi-aggregator deployments can account each shard's traffic
    /// independently (DESIGN §10).
    shard_bytes: Vec<u64>,
    counters: RecoveryCounters,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// AllReduce rounds completed — the flight recorder's round key.
    /// Private (not part of [`RecoveryStats`]) so chaos-replay equality
    /// on stats stays byte-exact.
    rounds: u64,
    /// Freelists for outgoing packet buffers (payloads and entry lists
    /// are checked out per packet and recycled when the packet's phase
    /// is answered — DESIGN §9).
    pool: BufferPool,
}

impl<T: Transport> RecoveryWorker<T> {
    /// Creates the engine; the transport's node id is the worker id.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let wid = transport.local_id().0;
        assert!(
            (wid as usize) < cfg.num_workers,
            "node {wid} is not a worker"
        );
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let ver = vec![0u8; layout.total_streams()];
        let rtt = (0..cfg.num_aggregators)
            .map(|a| {
                RttEstimator::new(
                    cfg.retransmit_timeout,
                    cfg.rto_min,
                    cfg.rto_max,
                    // Deterministic per-(worker, shard) jitter stream.
                    0x9E37_79B9_7F4A_7C15 ^ ((wid as u64) << 16) ^ a as u64,
                )
            })
            .collect();
        let pool = BufferPool::for_block_size(cfg.block_size);
        let shard_bytes = vec![0; cfg.num_aggregators];
        RecoveryWorker {
            transport,
            cfg,
            layout,
            wid,
            ver,
            rtt,
            stats: RecoveryStats::default(),
            shard_bytes,
            counters: RecoveryCounters::detached(),
            flight: FlightLane::disabled(),
            rounds: 0,
            pool,
        }
    }

    /// Like [`RecoveryWorker::new`], but mirrors loss-path counters into
    /// `telemetry`'s `core.recovery.*` counters and records protocol
    /// flight events on a `worker{wid}` lane when the registry's flight
    /// recorder is enabled.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(transport, cfg);
        w.counters = RecoveryCounters::registered(telemetry);
        w.flight = telemetry
            .flight()
            .lane(&format!("worker{}", w.wid), LaneRole::Worker, w.wid);
        w
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Wire bytes sent to each aggregator shard (index = shard). Sums
    /// to [`RecoveryStats::bytes_sent`].
    pub fn shard_bytes(&self) -> &[u64] {
        &self.shard_bytes
    }

    /// The RTO to arm for the next packet to `shard`: adaptive
    /// (SRTT/RTTVAR with backoff and jitter) or the fixed configured
    /// timeout. Recorded into the `core.recovery.rto` histogram (µs).
    fn next_rto(&mut self, shard: usize) -> Duration {
        let rto = if self.cfg.adaptive_rto {
            self.rtt[shard].next_rto()
        } else {
            self.cfg.retransmit_timeout
        };
        self.counters.rto.record(rto.as_micros() as u64);
        rto
    }

    /// Runs one AllReduce with loss recovery.
    ///
    /// Fails fast instead of hanging: if `max_retransmits` consecutive
    /// retransmissions of any slot go unanswered, returns
    /// [`ProtocolError::PeerUnresponsive`] (the aggregator for that
    /// shard is presumed dead).
    pub fn allreduce(&mut self, tensor: &mut Tensor) -> Result<(), ProtocolError> {
        assert_eq!(tensor.len(), self.cfg.tensor_len, "tensor length mismatch");
        let round = self.rounds as u32;
        self.flight
            .record(FlightEventKind::RoundStart, round, NO_BLOCK, 0, self.wid, 0);
        let encode_t0 = self.flight.now_ns();
        let bitmap = NonZeroBitmap::build(tensor, self.cfg.block_spec());
        let skip = self.cfg.skip_zero_blocks;
        let layout = self.layout;
        let width = layout.width();

        let mut streams: Vec<Option<WorkerStream>> =
            (0..layout.total_streams()).map(|_| None).collect();
        let mut timers: TimerQueue<usize> = TimerQueue::new();
        let mut pending = 0usize;

        for g in layout.active_streams() {
            let mut cols: Vec<Option<WorkerCol>> = Vec::with_capacity(width);
            let mut entries = self.pool.checkout_entries();
            let mut remaining = 0usize;
            for c in 0..width {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&bitmap, g, c, Some(b0), skip);
                        let mut data = self.pool.checkout_f32();
                        data.extend_from_slice(&tensor[layout.block_range(b0)]);
                        entries.push(Entry::data(b0, encode_next(my_next, c, width), data));
                        cols.push(Some(WorkerCol {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            let msg = self.make_packet(g, entries);
            self.send_tracked(g, &msg)?;
            let rto = self.next_rto(self.cfg.shard_of_stream(g));
            timers.arm(g, Instant::now(), rto);
            streams[g] = Some(WorkerStream {
                cols,
                remaining,
                outstanding: Some(Outstanding {
                    msg,
                    sent_at: Instant::now(),
                    retransmitted: false,
                    retx: 0,
                }),
            });
            pending += 1;
        }
        self.flight.record(
            FlightEventKind::Encode,
            round,
            NO_BLOCK,
            0,
            self.wid,
            self.flight.now_ns().saturating_sub(encode_t0),
        );

        while pending > 0 {
            let now = Instant::now();
            let timeout = timers.until_next(now).unwrap_or(Duration::from_secs(3600));
            match self.transport.recv_timeout(timeout)? {
                Some((_, Message::Block(p))) if p.kind == PacketKind::Result => {
                    let g = p.stream as usize;
                    self.flight.record(
                        FlightEventKind::ResultRx,
                        round,
                        NO_BLOCK,
                        self.cfg.shard_of_stream(g) as u16,
                        self.wid,
                        p.entries.len() as u64,
                    );
                    let Some(state) = streams[g].as_mut() else {
                        // Stale result for a finished stream.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    };
                    if p.ver != self.ver[g] {
                        // Duplicate of an already-processed phase.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    }
                    timers.cancel(&g);
                    if self.cfg.adaptive_rto {
                        let shard = self.cfg.shard_of_stream(g);
                        match &state.outstanding {
                            Some(o) if !o.retransmitted => {
                                self.rtt[shard].sample(o.sent_at.elapsed());
                            }
                            // Karn's rule: an answer to a retransmitted
                            // packet is ambiguous — reset the backoff
                            // but contribute no RTT sample.
                            _ => self.rtt[shard].ack(),
                        }
                    }
                    // Phase advances: the answered packet's buffers come
                    // back to the pool before the reply is built.
                    if let Some(o) = state.outstanding.take() {
                        self.pool.recycle_message(o.msg);
                    }
                    self.ver[g] ^= 1;
                    let mut reply = self.pool.checkout_entries();
                    for entry in &p.entries {
                        let (col, requested) = decode_next(entry.next, width);
                        if !entry.data.is_empty() {
                            tensor
                                .copy_slice_at(layout.block_range(entry.block).start, &entry.data);
                        }
                        let cs = state.cols[col].as_mut().expect("invalid column");
                        if cs.done {
                            continue;
                        }
                        if requested == INFINITY_BLOCK {
                            cs.done = true;
                            state.remaining -= 1;
                            continue;
                        }
                        if cs.my_next == requested {
                            let new_next =
                                layout.next_block(&bitmap, g, col, Some(requested), skip);
                            let mut data = self.pool.checkout_f32();
                            data.extend_from_slice(&tensor[layout.block_range(requested)]);
                            reply.push(Entry::data(
                                requested,
                                encode_next(new_next, col, width),
                                data,
                            ));
                            cs.my_next = new_next;
                        } else {
                            // Data-less acknowledgment (Algorithm 2 l.19–21).
                            reply.push(Entry::ack(requested, encode_next(cs.my_next, col, width)));
                        }
                    }
                    if state.remaining == 0 {
                        debug_assert!(reply.is_empty(), "reply for a finished stream");
                        self.pool.checkin_entries(reply);
                        streams[g] = None;
                        pending -= 1;
                    } else {
                        let msg = self.make_packet(g, reply);
                        self.send_tracked(g, &msg)?;
                        let rto = self.next_rto(self.cfg.shard_of_stream(g));
                        timers.arm(g, Instant::now(), rto);
                        streams[g].as_mut().unwrap().outstanding = Some(Outstanding {
                            msg,
                            sent_at: Instant::now(),
                            retransmitted: false,
                            retx: 0,
                        });
                    }
                }
                Some((_, Message::Block(p))) if p.kind == PacketKind::Nack => {
                    // Solicited retransmission: the shard is alive but
                    // missing our contribution to this phase — resend
                    // immediately instead of waiting for our timer.
                    let g = p.stream as usize;
                    let Some(state) = streams[g].as_mut() else {
                        continue; // finished stream: stale NACK
                    };
                    if p.ver != self.ver[g] {
                        continue; // previous phase: stale NACK
                    }
                    let Some(o) = state.outstanding.as_mut() else {
                        continue;
                    };
                    // Hearing from the shard proves it is alive: the
                    // "consecutive unanswered" budget restarts. Karn's
                    // rule still applies (the eventual answer must not
                    // feed the estimator).
                    o.retx = 0;
                    o.retransmitted = true;
                    let wire_bytes = codec::encoded_len(&o.msg) as u64;
                    self.stats.retransmissions += 1;
                    self.stats.solicited_retransmissions += 1;
                    self.stats.bytes_sent += wire_bytes;
                    self.counters.retransmissions.inc();
                    self.counters.solicited_retransmissions.inc();
                    self.counters.bytes_sent.add(wire_bytes);
                    let shard = self.cfg.shard_of_stream(g);
                    self.shard_bytes[shard] += wire_bytes;
                    let block = first_block(&o.msg);
                    self.flight.record(
                        FlightEventKind::NackRx,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        0,
                    );
                    self.flight.record(
                        FlightEventKind::SolicitedResend,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        wire_bytes,
                    );
                    // Re-keyed PacketTx so the aggregator's eventual rx
                    // pairs with this resend, not the lost original.
                    self.flight.record(
                        FlightEventKind::PacketTx,
                        round,
                        block,
                        shard as u16,
                        self.wid,
                        wire_bytes,
                    );
                    self.transport
                        .send(NodeId(self.cfg.aggregator_node(shard)), &o.msg)?;
                    let rto = self.next_rto(shard);
                    timers.arm(g, Instant::now(), rto);
                }
                Some(_) => {} // ignore anything else
                None => {
                    // Timer expiry: retransmit outstanding packets,
                    // within the retry budget.
                    let now = Instant::now();
                    while let Some(g) = timers.pop_expired(now) {
                        self.stats.timer_fires += 1;
                        self.counters.timer_fires.inc();
                        let shard = self.cfg.shard_of_stream(g);
                        let Some(state) = streams[g].as_mut() else {
                            continue;
                        };
                        let Some(o) = state.outstanding.as_mut() else {
                            continue;
                        };
                        if o.retx >= self.cfg.max_retransmits {
                            // Retry budget exhausted: the shard's
                            // aggregator is unresponsive. Fail fast
                            // instead of retransmitting forever.
                            self.counters.peer_unresponsive.inc();
                            return Err(ProtocolError::PeerUnresponsive {
                                peer: self.cfg.aggregator_node(shard),
                                stream: g,
                                retransmits: o.retx,
                                elapsed: o.sent_at.elapsed(),
                            });
                        }
                        if self.cfg.adaptive_rto {
                            self.rtt[shard].on_timeout();
                            self.stats.backoffs += 1;
                            self.counters.backoffs.inc();
                        }
                        o.retx += 1;
                        o.retransmitted = true;
                        let wire_bytes = codec::encoded_len(&o.msg) as u64;
                        self.stats.retransmissions += 1;
                        self.stats.bytes_sent += wire_bytes;
                        self.counters.retransmissions.inc();
                        self.counters.bytes_sent.add(wire_bytes);
                        self.shard_bytes[shard] += wire_bytes;
                        let block = first_block(&o.msg);
                        // aux = time burnt waiting on this packet so
                        // far — the recovery-overhead component.
                        self.flight.record(
                            FlightEventKind::RtoFire,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            o.sent_at.elapsed().as_nanos() as u64,
                        );
                        self.flight.record(
                            FlightEventKind::Retransmit,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            wire_bytes,
                        );
                        self.flight.record(
                            FlightEventKind::PacketTx,
                            round,
                            block,
                            shard as u16,
                            self.wid,
                            wire_bytes,
                        );
                        self.transport
                            .send(NodeId(self.cfg.aggregator_node(shard)), &o.msg)?;
                        let rto = self.next_rto(shard);
                        timers.arm(g, now, rto);
                    }
                }
            }
        }
        self.rounds += 1;
        self.flight
            .record(FlightEventKind::RoundEnd, round, NO_BLOCK, 0, self.wid, 0);
        Ok(())
    }

    fn make_packet(&self, stream: usize, entries: Vec<Entry>) -> Message {
        Message::Block(Packet {
            kind: PacketKind::Data,
            ver: self.ver[stream],
            stream: stream as u16,
            wid: self.wid,
            entries,
        })
    }

    fn send_tracked(&mut self, stream: usize, msg: &Message) -> Result<(), TransportError> {
        if let Message::Block(p) = msg {
            let blocks = p.entries.iter().filter(|e| !e.is_ack()).count() as u64;
            self.stats.blocks_sent += blocks;
            self.counters.blocks_sent.add(blocks);
        }
        let wire_bytes = codec::encoded_len(msg) as u64;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_bytes;
        self.counters.packets_sent.inc();
        self.counters.bytes_sent.add(wire_bytes);
        let shard = self.cfg.shard_of_stream(stream);
        self.shard_bytes[shard] += wire_bytes;
        // One flight event per fused message, keyed by the first
        // entry's block (the aggregator mirrors the key on PacketRx).
        self.flight.record(
            FlightEventKind::PacketTx,
            self.rounds as u32,
            first_block(msg),
            shard as u16,
            self.wid,
            wire_bytes,
        );
        self.transport
            .send(NodeId(self.cfg.aggregator_node(shard)), msg)
    }

    /// Announces departure to every shard.
    pub fn shutdown(self) -> Result<(), TransportError> {
        for a in 0..self.cfg.num_aggregators {
            self.transport
                .send(NodeId(self.cfg.aggregator_node(a)), &Message::Shutdown)?;
        }
        Ok(())
    }
}

/// Per-column, per-version aggregation state.
#[derive(Clone)]
struct ColPhase {
    /// Block accumulator (arrival-order, or deterministic §7 worker-id
    /// order). Buffers are allocated once and reused in place across
    /// phases — DESIGN §9.
    acc: ColAccumulator,
    block: Option<BlockIdx>,
    min_next: i64,
}

impl ColPhase {
    fn new(num_workers: usize, deterministic: bool) -> Self {
        ColPhase {
            acc: ColAccumulator::new(num_workers, deterministic),
            block: None,
            min_next: i64::MAX,
        }
    }

    /// Rearms the column for a new phase, keeping every buffer.
    fn reset(&mut self) {
        self.acc.reset();
        self.block = None;
        self.min_next = i64::MAX;
    }
}

/// Per-stream versioned slot (Algorithm 2 lines 26–29).
struct VersionedSlot {
    /// Per-version, per-column phase state.
    cols: [Vec<ColPhase>; 2],
    /// seen[v][wid]: worker's packet for version v already aggregated.
    seen: [Vec<bool>; 2],
    /// Distinct workers aggregated in version v's current phase.
    count: [usize; 2],
    /// Completed result packet per version, kept for retransmission.
    result: [Option<Message>; 2],
}

/// Loss-path counters of the recovery aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryAggregatorStats {
    /// Result multicasts performed.
    pub results_sent: u64,
    /// Duplicate packets that triggered a result retransmission.
    pub result_retransmissions: u64,
    /// Duplicate or retransmitted packets discarded by the seen-bit
    /// check without being aggregated (includes the ones that triggered
    /// a result retransmission).
    pub duplicates_ignored: u64,
    /// Workers evicted for unresponsiveness.
    pub evictions: u64,
    /// Phases completed without one or more evicted workers'
    /// contributions ([`DegradedMode::DropWorker`]).
    pub degraded_completions: u64,
    /// Data packets from already-evicted workers, dropped on arrival.
    pub evicted_packets_dropped: u64,
    /// Solicited-retransmission requests sent to workers whose
    /// contribution a stalled phase was missing (receiver-driven
    /// recovery).
    pub nacks_sent: u64,
}

/// Fleet-wide `core.recovery.agg.*` registry mirrors of
/// [`RecoveryAggregatorStats`].
struct RecoveryAggCounters {
    results_sent: Counter,
    result_retransmissions: Counter,
    duplicates_ignored: Counter,
    evictions: Counter,
    degraded_completions: Counter,
    nacks_sent: Counter,
}

impl RecoveryAggCounters {
    fn detached() -> Self {
        RecoveryAggCounters {
            results_sent: Counter::detached(),
            result_retransmissions: Counter::detached(),
            duplicates_ignored: Counter::detached(),
            evictions: Counter::detached(),
            degraded_completions: Counter::detached(),
            nacks_sent: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        RecoveryAggCounters {
            results_sent: telemetry.counter("core.recovery.agg.results_sent"),
            result_retransmissions: telemetry.counter("core.recovery.agg.result_retransmissions"),
            duplicates_ignored: telemetry.counter("core.recovery.agg.duplicates_ignored"),
            evictions: telemetry.counter("core.recovery.agg.evictions"),
            degraded_completions: telemetry.counter("core.recovery.agg.degraded_completions"),
            nacks_sent: telemetry.counter("core.recovery.agg.nacks_sent"),
        }
    }
}

/// Aggregator engine with Algorithm 2 loss recovery.
pub struct RecoveryAggregator<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    shard: usize,
    slots: Vec<Option<VersionedSlot>>,
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
    /// Workers evicted for unresponsiveness (packets dropped, excluded
    /// from multicasts and from phase-completion counts).
    evicted: Vec<bool>,
    evicted_count: usize,
    /// Last time each worker was heard from (data or shutdown).
    last_heard: Vec<Instant>,
    /// Loss-path counters.
    pub stats: RecoveryAggregatorStats,
    counters: RecoveryAggCounters,
    /// Protocol flight lane (no-op unless the registry's flight
    /// recorder is enabled).
    flight: FlightLane,
    /// Freelists for result-packet buffers (DESIGN §9): retired results
    /// are recycled when their version's state is reused.
    pool: BufferPool,
}

impl<T: Transport> RecoveryAggregator<T> {
    /// Creates the engine for the shard whose node id matches the
    /// transport's.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let node = transport.local_id().0 as usize;
        assert!(
            node >= cfg.num_workers && node < cfg.mesh_size(),
            "node {node} is not an aggregator"
        );
        let shard = node - cfg.num_workers;
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let n = cfg.num_workers;
        let width = layout.width();
        let slots = (0..layout.total_streams())
            .map(|g| {
                (cfg.shard_of_stream(g) == shard).then(|| VersionedSlot {
                    cols: [
                        vec![ColPhase::new(n, cfg.deterministic); width],
                        vec![ColPhase::new(n, cfg.deterministic); width],
                    ],
                    seen: [vec![false; n], vec![false; n]],
                    count: [0, 0],
                    result: [None, None],
                })
            })
            .collect();
        let departed = vec![false; cfg.num_workers];
        let evicted = vec![false; cfg.num_workers];
        let last_heard = vec![Instant::now(); cfg.num_workers];
        let pool = BufferPool::for_block_size(cfg.block_size);
        RecoveryAggregator {
            transport,
            cfg,
            layout,
            shard,
            slots,
            departed,
            goodbyes: 0,
            evicted,
            evicted_count: 0,
            last_heard,
            stats: RecoveryAggregatorStats::default(),
            counters: RecoveryAggCounters::detached(),
            flight: FlightLane::disabled(),
            pool,
        }
    }

    /// Like [`RecoveryAggregator::new`], but mirrors loss-path counters
    /// into `telemetry`'s `core.recovery.agg.*` counters and records
    /// protocol flight events on an `agg{shard}` lane when the
    /// registry's flight recorder is enabled.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut a = Self::new(transport, cfg);
        a.counters = RecoveryAggCounters::registered(telemetry);
        a.flight = telemetry.flight().lane(
            &format!("agg{}", a.shard),
            LaneRole::Aggregator,
            a.shard as u16,
        );
        a.pool =
            BufferPool::for_block_size(a.cfg.block_size).with_telemetry("recovery_agg", telemetry);
        a
    }

    /// Serves until every worker says `Shutdown` or has been evicted.
    ///
    /// A worker the shard is still waiting on that stays silent for
    /// [`OmniConfig::worker_eviction_timeout`] is evicted: in
    /// [`DegradedMode::DropWorker`] the collective completes without it
    /// (the phase-completion count is renormalized to the survivors);
    /// in [`DegradedMode::Abort`] this returns
    /// [`ProtocolError::WorkerEvicted`].
    pub fn run(&mut self) -> Result<(), ProtocolError> {
        // Poll granularity for the eviction sweep: fine enough to
        // detect eviction promptly, coarse enough to stay off the hot
        // path.
        let tick = (self.cfg.worker_eviction_timeout / 4)
            .clamp(Duration::from_millis(1), Duration::from_millis(100));
        let now = Instant::now();
        for t in self.last_heard.iter_mut() {
            *t = now;
        }
        loop {
            if let Some((from, msg)) = self.transport.recv_timeout(tick)? {
                match msg {
                    Message::Block(p) if p.kind == PacketKind::Data => {
                        let wid = p.wid as usize;
                        if wid < self.last_heard.len() {
                            self.last_heard[wid] = Instant::now();
                        }
                        self.handle_data(p)?;
                    }
                    Message::Shutdown => {
                        // Finished worker: stop multicasting to it (its
                        // endpoint may already be gone).
                        let w = from.index();
                        if !self.departed[w] && !self.evicted[w] {
                            self.departed[w] = true;
                            self.goodbyes += 1;
                            self.last_heard[w] = Instant::now();
                        }
                    }
                    _ => {} // tolerate anything else on a lossy fabric
                }
            }
            self.sweep_evictions()?;
            if self.goodbyes + self.evicted_count == self.cfg.num_workers {
                return Ok(());
            }
        }
    }

    /// True if version `v` of slot `g` has an aggregation phase in
    /// flight that worker `w` has not yet contributed to.
    fn waiting_on(&self, w: usize) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|slot| (0..2).any(|v| slot.count[v] > 0 && !slot.seen[v][w]))
    }

    /// Evicts workers the shard is waiting on that have been silent for
    /// longer than the eviction timeout.
    fn sweep_evictions(&mut self) -> Result<(), ProtocolError> {
        let now = Instant::now();
        for w in 0..self.cfg.num_workers {
            if self.departed[w] || self.evicted[w] {
                continue;
            }
            let idle = now.duration_since(self.last_heard[w]);
            if idle <= self.cfg.worker_eviction_timeout || !self.waiting_on(w) {
                continue;
            }
            self.stats.evictions += 1;
            self.counters.evictions.inc();
            self.flight.record(
                FlightEventKind::Eviction,
                0,
                NO_BLOCK,
                self.shard as u16,
                w as u16,
                idle.as_nanos() as u64,
            );
            if self.cfg.degraded_mode == DegradedMode::Abort {
                return Err(ProtocolError::WorkerEvicted { worker: w, idle });
            }
            self.evicted[w] = true;
            self.evicted_count += 1;
            // Renormalize: phases already in flight may now be
            // complete without `w`'s contribution; idle versions must
            // forget `w`'s stale seen bit so the *next* phase does not
            // wait for it either.
            for g in 0..self.layout.total_streams() {
                if self.slots[g].is_none() {
                    continue;
                }
                for v in 0..2 {
                    let slot = self.slots[g].as_mut().unwrap();
                    if slot.count[v] == 0 {
                        slot.seen[v][w] = false;
                    } else {
                        self.complete_if_ready(g, v)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn handle_data(&mut self, p: Packet) -> Result<(), TransportError> {
        let g = p.stream as usize;
        let v = (p.ver & 1) as usize;
        let wid = p.wid as usize;
        let width = self.layout.width();

        if wid < self.evicted.len() && self.evicted[wid] {
            // A zombie: evicted, but packets still in flight (or the
            // worker is alive behind a healed partition). Its phase
            // accounting has been renormalized without it, so its
            // contributions must not be aggregated; the worker itself
            // fails fast via its own retry budget.
            self.stats.evicted_packets_dropped += 1;
            return Ok(());
        }

        // Keyed by the first entry's block, mirroring the sender's
        // PacketTx key so the reconstructor can pair tx with rx.
        if let Some(first) = p.entries.first() {
            self.flight.record(
                FlightEventKind::PacketRx,
                0,
                first.block as u64,
                self.shard as u16,
                p.wid,
                p.entries.len() as u64,
            );
        }

        let slot = self.slots[g].as_mut().expect("stream not owned by shard");

        if slot.seen[v][wid] {
            // Duplicate (network dup or worker retransmission). If the
            // phase is complete, the worker evidently missed the result:
            // unicast it back (Algorithm 2 lines 47–49).
            self.stats.duplicates_ignored += 1;
            self.counters.duplicates_ignored.inc();
            if slot.count[v] == 0 {
                if let Some(result) = slot.result[v].as_ref() {
                    self.stats.result_retransmissions += 1;
                    self.counters.result_retransmissions.inc();
                    crate::wire::send_best_effort(
                        &self.transport,
                        NodeId(self.cfg.worker_node(wid)),
                        result,
                    )?;
                }
            } else {
                // Phase in progress and a worker is already
                // retransmitting: the stall is real, and this shard
                // knows *exactly* whose contribution it lacks.
                // Receiver-driven recovery: solicit the missing workers
                // directly instead of letting every worker's timer race
                // (the retransmission-storm path — see DESIGN.md "Fault
                // model & degradation").
                let nack = Message::Block(Packet {
                    kind: PacketKind::Nack,
                    ver: v as u8,
                    stream: g as u16,
                    wid: u16::MAX,
                    entries: Vec::new(),
                });
                for w in 0..self.cfg.num_workers {
                    if slot.seen[v][w] || self.departed[w] || self.evicted[w] {
                        continue;
                    }
                    self.stats.nacks_sent += 1;
                    self.counters.nacks_sent.inc();
                    self.flight.record(
                        FlightEventKind::NackTx,
                        0,
                        NO_BLOCK,
                        self.shard as u16,
                        w as u16,
                        0,
                    );
                    crate::wire::send_best_effort(
                        &self.transport,
                        NodeId(self.cfg.worker_node(w)),
                        &nack,
                    )?;
                }
            }
            return Ok(());
        }

        // First packet of a fresh phase resets that version's state
        // (Algorithm 2 lines 36–38 generalize per column).
        slot.seen[v][wid] = true;
        slot.seen[v ^ 1][wid] = false;
        slot.count[v] += 1;
        if slot.count[v] == 1 {
            // First packet of a fresh phase: reset the columns in place
            // (keeping their buffers) and recycle the retired result's
            // buffers — its retransmission window is over (DESIGN §9).
            for col in slot.cols[v].iter_mut() {
                col.reset();
            }
            if let Some(old) = slot.result[v].take() {
                self.pool.recycle_message(old);
            }
            // First contribution claims the phase's slot; released in
            // `complete_if_ready` under the same (block, shard) key.
            if let Some(first) = p.entries.first() {
                self.flight.record(
                    FlightEventKind::SlotOccupy,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    p.wid,
                    v as u64,
                );
            }
        }

        let slot = self.slots[g].as_mut().expect("stream not owned by shard");
        for entry in &p.entries {
            let (col, next) = decode_next(entry.next, width);
            let cp = &mut slot.cols[v][col];
            if !entry.data.is_empty() {
                match cp.block {
                    None => cp.block = Some(entry.block),
                    Some(b) => debug_assert_eq!(b, entry.block, "phase mixes blocks"),
                }
                // Arrival-order mode reduces immediately (vectorized
                // kernel); deterministic §7 mode copies into the
                // worker's persistent buffer, reduced in worker-id
                // order at completion. No per-block allocation.
                cp.acc.store(wid, &entry.data);
            }
            cp.min_next = cp.min_next.min(if next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                next as i64
            });
        }

        self.complete_if_ready(g, v)?;
        Ok(())
    }

    /// Number of contributions version `v` of slot `g` needs before its
    /// phase completes: all workers, minus the evicted ones that have
    /// not already contributed to this phase.
    fn needed(&self, g: usize, v: usize) -> usize {
        let slot = self.slots[g].as_ref().expect("stream not owned by shard");
        let missing_evicted = (0..self.cfg.num_workers)
            .filter(|&w| self.evicted[w] && !slot.seen[v][w])
            .count();
        self.cfg.num_workers - missing_evicted
    }

    /// Completes version `v` of slot `g` if its in-flight phase has all
    /// the contributions it needs (Algorithm 2 l.42, with the count
    /// renormalized past evicted workers), multicasting the result to
    /// the surviving workers.
    fn complete_if_ready(&mut self, g: usize, v: usize) -> Result<(), TransportError> {
        let n = self.cfg.num_workers;
        let width = self.layout.width();
        let needed = self.needed(g, v);
        let slot = self.slots[g].as_mut().expect("stream not owned by shard");
        if slot.count[v] == 0 || slot.count[v] < needed {
            return Ok(());
        }
        // Phase complete (the count wraps to 0, Algorithm 2 l.42).
        slot.count[v] = 0;
        if needed < n {
            self.stats.degraded_completions += 1;
            self.counters.degraded_completions.inc();
        }
        let mut entries = self.pool.checkout_entries();
        for (c, cp) in slot.cols[v].iter_mut().enumerate() {
            let Some(block) = cp.block else { continue };
            let min_next = if cp.min_next == i64::MAX || cp.min_next == INFINITY_BLOCK as i64 {
                INFINITY_BLOCK
            } else {
                cp.min_next as BlockIdx
            };
            let mut data = self.pool.checkout_f32();
            cp.acc.take_into(&mut data);
            entries.push(Entry::data(block, encode_next(min_next, c, width), data));
        }
        // Forget evicted workers' seen bits so the *next* phase of this
        // version does not count them as pending contributors.
        for w in 0..n {
            if self.evicted[w] {
                slot.seen[v][w] = false;
            }
        }
        let result = Message::Block(Packet {
            kind: PacketKind::Result,
            ver: v as u8,
            stream: g as u16,
            wid: u16::MAX,
            entries,
        });
        let workers: Vec<NodeId> = (0..n)
            .filter(|w| !self.departed[*w] && !self.evicted[*w])
            .map(|w| NodeId(self.cfg.worker_node(w)))
            .collect();
        self.stats.results_sent += 1;
        self.counters.results_sent.inc();
        if let Message::Block(ref pkt) = result {
            if let Some(first) = pkt.entries.first() {
                self.flight.record(
                    FlightEventKind::SlotRelease,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    u16::MAX,
                    v as u64,
                );
                self.flight.record(
                    FlightEventKind::ResultTx,
                    0,
                    first.block as u64,
                    self.shard as u16,
                    u16::MAX,
                    pkt.entries.len() as u64,
                );
            }
        }
        for w in &workers {
            crate::wire::send_best_effort(&self.transport, *w, &result)?;
        }
        self.slots[g].as_mut().unwrap().result[v] = Some(result);
        Ok(())
    }
}
