//! Loss-recovery engines (Algorithm 2, Appendix A): OmniReduce over a
//! network that may drop or duplicate packets.
//!
//! Differences from the lossless engines:
//!
//! * **Everyone always answers.** Each worker responds to every result
//!   packet for every active column — with block data when it owns the
//!   requested block, with a data-less acknowledgment otherwise — so the
//!   aggregator can use a per-phase *count of distinct workers* as the
//!   completion condition instead of the min-next comparison.
//! * **Timers.** A worker arms a retransmission timer for every packet it
//!   sends and resends on expiry; receiving the matching result cancels
//!   the timer.
//! * **Two-phase versioned slots.** The aggregator keeps two versions of
//!   every slot's state, used in alternating phases. Version `v` is only
//!   reused once every worker has sent a packet for version `v̂` — which a
//!   worker does only after receiving version `v`'s result — so a
//!   completed result stays available for retransmission exactly as long
//!   as any worker might still need it.
//! * **Dedup.** A per-version `seen` bit per worker keeps duplicated or
//!   retransmitted packets from being aggregated twice; a duplicate for a
//!   *completed* phase triggers a unicast retransmission of that phase's
//!   result to the sender (the aggregator-side loss repair).
//!
//! Delivery assumption: like the paper's DPDK deployment, the network may
//! drop or duplicate packets but does not reorder packets between a given
//! pair of nodes ([`omnireduce_transport::LossyNetwork`] guarantees this).

use std::time::{Duration, Instant};

use omnireduce_telemetry::{Counter, Telemetry};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, Tensor, INFINITY_BLOCK};
use omnireduce_transport::timer::TimerQueue;
use omnireduce_transport::{
    codec, Entry, Message, NodeId, Packet, PacketKind, Transport, TransportError,
};

use crate::config::OmniConfig;
use crate::layout::StreamLayout;
use crate::wire::{decode_next, encode_next};

/// Traffic counters for the recovery worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct data/ack packets sent (excluding retransmissions).
    pub packets_sent: u64,
    /// Retransmissions triggered by timer expiry.
    pub retransmissions: u64,
    /// Wire bytes sent, including retransmissions.
    pub bytes_sent: u64,
    /// Blocks transmitted as data entries (excluding retransmissions).
    pub blocks_sent: u64,
    /// Retransmission-timer expirations handled.
    pub timer_fires: u64,
    /// Results ignored because they were stale (finished stream) or
    /// carried an already-processed phase version.
    pub stale_results_ignored: u64,
}

/// Fleet-wide `core.recovery.*` registry mirrors of [`RecoveryStats`]
/// (detached no-ops unless built via [`RecoveryWorker::with_telemetry`]).
struct RecoveryCounters {
    packets_sent: Counter,
    retransmissions: Counter,
    bytes_sent: Counter,
    blocks_sent: Counter,
    timer_fires: Counter,
    stale_results_ignored: Counter,
}

impl RecoveryCounters {
    fn detached() -> Self {
        RecoveryCounters {
            packets_sent: Counter::detached(),
            retransmissions: Counter::detached(),
            bytes_sent: Counter::detached(),
            blocks_sent: Counter::detached(),
            timer_fires: Counter::detached(),
            stale_results_ignored: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        RecoveryCounters {
            packets_sent: telemetry.counter("core.recovery.packets_sent"),
            retransmissions: telemetry.counter("core.recovery.retransmissions"),
            bytes_sent: telemetry.counter("core.recovery.bytes_sent"),
            blocks_sent: telemetry.counter("core.recovery.blocks_sent"),
            timer_fires: telemetry.counter("core.recovery.timer_fires"),
            stale_results_ignored: telemetry.counter("core.recovery.stale_results_ignored"),
        }
    }
}

struct WorkerCol {
    my_next: BlockIdx,
    done: bool,
}

struct WorkerStream {
    cols: Vec<Option<WorkerCol>>,
    remaining: usize,
    /// Last packet sent; retransmitted on timeout.
    outstanding: Option<Message>,
}

/// Worker engine with Algorithm 2 loss recovery.
pub struct RecoveryWorker<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: u16,
    /// Per-stream protocol phase, persists across AllReduce rounds.
    ver: Vec<u8>,
    stats: RecoveryStats,
    counters: RecoveryCounters,
}

impl<T: Transport> RecoveryWorker<T> {
    /// Creates the engine; the transport's node id is the worker id.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let wid = transport.local_id().0;
        assert!(
            (wid as usize) < cfg.num_workers,
            "node {wid} is not a worker"
        );
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let ver = vec![0u8; layout.total_streams()];
        RecoveryWorker {
            transport,
            cfg,
            layout,
            wid,
            ver,
            stats: RecoveryStats::default(),
            counters: RecoveryCounters::detached(),
        }
    }

    /// Like [`RecoveryWorker::new`], but mirrors loss-path counters into
    /// `telemetry`'s `core.recovery.*` counters.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut w = Self::new(transport, cfg);
        w.counters = RecoveryCounters::registered(telemetry);
        w
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Runs one AllReduce with loss recovery.
    pub fn allreduce(&mut self, tensor: &mut Tensor) -> Result<(), TransportError> {
        assert_eq!(tensor.len(), self.cfg.tensor_len, "tensor length mismatch");
        let bitmap = NonZeroBitmap::build(tensor, self.cfg.block_spec());
        let skip = self.cfg.skip_zero_blocks;
        let layout = self.layout;
        let width = layout.width();

        let mut streams: Vec<Option<WorkerStream>> =
            (0..layout.total_streams()).map(|_| None).collect();
        let mut timers: TimerQueue<usize> = TimerQueue::new();
        let mut pending = 0usize;

        for g in layout.active_streams() {
            let mut cols: Vec<Option<WorkerCol>> = Vec::with_capacity(width);
            let mut entries = Vec::new();
            let mut remaining = 0usize;
            for c in 0..width {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&bitmap, g, c, Some(b0), skip);
                        entries.push(Entry::data(
                            b0,
                            encode_next(my_next, c, width),
                            tensor[layout.block_range(b0)].to_vec(),
                        ));
                        cols.push(Some(WorkerCol {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            let msg = self.make_packet(g, entries);
            self.send_tracked(g, &msg)?;
            timers.arm(g, Instant::now(), self.cfg.retransmit_timeout);
            streams[g] = Some(WorkerStream {
                cols,
                remaining,
                outstanding: Some(msg),
            });
            pending += 1;
        }

        while pending > 0 {
            let now = Instant::now();
            let timeout = timers.until_next(now).unwrap_or(Duration::from_secs(3600));
            match self.transport.recv_timeout(timeout)? {
                Some((_, Message::Block(p))) if p.kind == PacketKind::Result => {
                    let g = p.stream as usize;
                    let Some(state) = streams[g].as_mut() else {
                        // Stale result for a finished stream.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    };
                    if p.ver != self.ver[g] {
                        // Duplicate of an already-processed phase.
                        self.stats.stale_results_ignored += 1;
                        self.counters.stale_results_ignored.inc();
                        continue;
                    }
                    timers.cancel(&g);
                    // Phase advances.
                    self.ver[g] ^= 1;
                    let mut reply = Vec::new();
                    for entry in &p.entries {
                        let (col, requested) = decode_next(entry.next, width);
                        if !entry.data.is_empty() {
                            tensor
                                .copy_slice_at(layout.block_range(entry.block).start, &entry.data);
                        }
                        let cs = state.cols[col].as_mut().expect("invalid column");
                        if cs.done {
                            continue;
                        }
                        if requested == INFINITY_BLOCK {
                            cs.done = true;
                            state.remaining -= 1;
                            continue;
                        }
                        if cs.my_next == requested {
                            let new_next =
                                layout.next_block(&bitmap, g, col, Some(requested), skip);
                            reply.push(Entry::data(
                                requested,
                                encode_next(new_next, col, width),
                                tensor[layout.block_range(requested)].to_vec(),
                            ));
                            cs.my_next = new_next;
                        } else {
                            // Data-less acknowledgment (Algorithm 2 l.19–21).
                            reply.push(Entry::ack(requested, encode_next(cs.my_next, col, width)));
                        }
                    }
                    if state.remaining == 0 {
                        debug_assert!(reply.is_empty(), "reply for a finished stream");
                        streams[g] = None;
                        pending -= 1;
                    } else {
                        let msg = self.make_packet(g, reply);
                        self.send_tracked(g, &msg)?;
                        timers.arm(g, Instant::now(), self.cfg.retransmit_timeout);
                        streams[g].as_mut().unwrap().outstanding = Some(msg);
                    }
                }
                Some(_) => {} // ignore anything else
                None => {
                    // Timer expiry: retransmit outstanding packets.
                    let now = Instant::now();
                    while let Some(g) = timers.pop_expired(now) {
                        self.stats.timer_fires += 1;
                        self.counters.timer_fires.inc();
                        if let Some(state) = streams[g].as_ref() {
                            if let Some(msg) = &state.outstanding {
                                let wire_bytes = codec::encoded_len(msg) as u64;
                                self.stats.retransmissions += 1;
                                self.stats.bytes_sent += wire_bytes;
                                self.counters.retransmissions.inc();
                                self.counters.bytes_sent.add(wire_bytes);
                                let shard = self.cfg.shard_of_stream(g);
                                self.transport
                                    .send(NodeId(self.cfg.aggregator_node(shard)), msg)?;
                                timers.arm(g, now, self.cfg.retransmit_timeout);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn make_packet(&self, stream: usize, entries: Vec<Entry>) -> Message {
        Message::Block(Packet {
            kind: PacketKind::Data,
            ver: self.ver[stream],
            stream: stream as u16,
            wid: self.wid,
            entries,
        })
    }

    fn send_tracked(&mut self, stream: usize, msg: &Message) -> Result<(), TransportError> {
        if let Message::Block(p) = msg {
            let blocks = p.entries.iter().filter(|e| !e.is_ack()).count() as u64;
            self.stats.blocks_sent += blocks;
            self.counters.blocks_sent.add(blocks);
        }
        let wire_bytes = codec::encoded_len(msg) as u64;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_bytes;
        self.counters.packets_sent.inc();
        self.counters.bytes_sent.add(wire_bytes);
        let shard = self.cfg.shard_of_stream(stream);
        self.transport
            .send(NodeId(self.cfg.aggregator_node(shard)), msg)
    }

    /// Announces departure to every shard.
    pub fn shutdown(self) -> Result<(), TransportError> {
        for a in 0..self.cfg.num_aggregators {
            self.transport
                .send(NodeId(self.cfg.aggregator_node(a)), &Message::Shutdown)?;
        }
        Ok(())
    }
}

/// Per-column, per-version aggregation state.
#[derive(Clone)]
struct ColPhase {
    acc: Vec<f32>,
    block: Option<BlockIdx>,
    min_next: i64,
}

impl ColPhase {
    fn fresh() -> Self {
        ColPhase {
            acc: Vec::new(),
            block: None,
            min_next: i64::MAX,
        }
    }
}

/// Per-stream versioned slot (Algorithm 2 lines 26–29).
struct VersionedSlot {
    /// Per-version, per-column phase state.
    cols: [Vec<ColPhase>; 2],
    /// seen[v][wid]: worker's packet for version v already aggregated.
    seen: [Vec<bool>; 2],
    /// Distinct workers aggregated in version v's current phase.
    count: [usize; 2],
    /// Completed result packet per version, kept for retransmission.
    result: [Option<Message>; 2],
}

/// Loss-path counters of the recovery aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryAggregatorStats {
    /// Result multicasts performed.
    pub results_sent: u64,
    /// Duplicate packets that triggered a result retransmission.
    pub result_retransmissions: u64,
    /// Duplicate or retransmitted packets discarded by the seen-bit
    /// check without being aggregated (includes the ones that triggered
    /// a result retransmission).
    pub duplicates_ignored: u64,
}

/// Fleet-wide `core.recovery.agg.*` registry mirrors of
/// [`RecoveryAggregatorStats`].
struct RecoveryAggCounters {
    results_sent: Counter,
    result_retransmissions: Counter,
    duplicates_ignored: Counter,
}

impl RecoveryAggCounters {
    fn detached() -> Self {
        RecoveryAggCounters {
            results_sent: Counter::detached(),
            result_retransmissions: Counter::detached(),
            duplicates_ignored: Counter::detached(),
        }
    }

    fn registered(telemetry: &Telemetry) -> Self {
        RecoveryAggCounters {
            results_sent: telemetry.counter("core.recovery.agg.results_sent"),
            result_retransmissions: telemetry.counter("core.recovery.agg.result_retransmissions"),
            duplicates_ignored: telemetry.counter("core.recovery.agg.duplicates_ignored"),
        }
    }
}

/// Aggregator engine with Algorithm 2 loss recovery.
pub struct RecoveryAggregator<T: Transport> {
    transport: T,
    cfg: OmniConfig,
    layout: StreamLayout,
    slots: Vec<Option<VersionedSlot>>,
    /// Workers that sent `Shutdown` (finished; excluded from multicasts).
    departed: Vec<bool>,
    goodbyes: usize,
    /// Loss-path counters.
    pub stats: RecoveryAggregatorStats,
    counters: RecoveryAggCounters,
}

impl<T: Transport> RecoveryAggregator<T> {
    /// Creates the engine for the shard whose node id matches the
    /// transport's.
    pub fn new(transport: T, cfg: OmniConfig) -> Self {
        cfg.validate();
        let node = transport.local_id().0 as usize;
        assert!(
            node >= cfg.num_workers && node < cfg.mesh_size(),
            "node {node} is not an aggregator"
        );
        let shard = node - cfg.num_workers;
        let layout = StreamLayout::new(
            cfg.block_spec(),
            cfg.fusion,
            cfg.total_streams(),
            cfg.tensor_len,
        );
        let n = cfg.num_workers;
        let width = layout.width();
        let slots = (0..layout.total_streams())
            .map(|g| {
                (cfg.shard_of_stream(g) == shard).then(|| VersionedSlot {
                    cols: [
                        vec![ColPhase::fresh(); width],
                        vec![ColPhase::fresh(); width],
                    ],
                    seen: [vec![false; n], vec![false; n]],
                    count: [0, 0],
                    result: [None, None],
                })
            })
            .collect();
        let departed = vec![false; cfg.num_workers];
        RecoveryAggregator {
            transport,
            cfg,
            layout,
            slots,
            departed,
            goodbyes: 0,
            stats: RecoveryAggregatorStats::default(),
            counters: RecoveryAggCounters::detached(),
        }
    }

    /// Like [`RecoveryAggregator::new`], but mirrors loss-path counters
    /// into `telemetry`'s `core.recovery.agg.*` counters.
    pub fn with_telemetry(transport: T, cfg: OmniConfig, telemetry: &Telemetry) -> Self {
        let mut a = Self::new(transport, cfg);
        a.counters = RecoveryAggCounters::registered(telemetry);
        a
    }

    /// Serves until every worker says `Shutdown`.
    pub fn run(&mut self) -> Result<(), TransportError> {
        loop {
            let (from, msg) = self.transport.recv()?;
            match msg {
                Message::Block(p) if p.kind == PacketKind::Data => self.handle_data(p)?,
                Message::Shutdown => {
                    // Finished worker: stop multicasting to it (its
                    // endpoint may already be gone).
                    if !self.departed[from.index()] {
                        self.departed[from.index()] = true;
                        self.goodbyes += 1;
                    }
                    if self.goodbyes == self.cfg.num_workers {
                        return Ok(());
                    }
                }
                _ => {} // tolerate anything else on a lossy fabric
            }
        }
    }

    fn handle_data(&mut self, p: Packet) -> Result<(), TransportError> {
        let g = p.stream as usize;
        let v = (p.ver & 1) as usize;
        let wid = p.wid as usize;
        let n = self.cfg.num_workers;
        let width = self.layout.width();

        let slot = self.slots[g].as_mut().expect("stream not owned by shard");

        if slot.seen[v][wid] {
            // Duplicate (network dup or worker retransmission). If the
            // phase is complete, the worker evidently missed the result:
            // unicast it back (Algorithm 2 lines 47–49).
            self.stats.duplicates_ignored += 1;
            self.counters.duplicates_ignored.inc();
            if slot.count[v] == 0 {
                if let Some(result) = slot.result[v].clone() {
                    self.stats.result_retransmissions += 1;
                    self.counters.result_retransmissions.inc();
                    crate::wire::send_best_effort(
                        &self.transport,
                        NodeId(self.cfg.worker_node(wid)),
                        &result,
                    )?;
                }
            }
            return Ok(());
        }

        // First packet of a fresh phase resets that version's state
        // (Algorithm 2 lines 36–38 generalize per column).
        slot.seen[v][wid] = true;
        slot.seen[v ^ 1][wid] = false;
        slot.count[v] += 1;
        if slot.count[v] == 1 {
            for col in slot.cols[v].iter_mut() {
                *col = ColPhase::fresh();
            }
            slot.result[v] = None;
        }

        for entry in &p.entries {
            let (col, next) = decode_next(entry.next, width);
            let cp = &mut slot.cols[v][col];
            if !entry.data.is_empty() {
                match cp.block {
                    None => {
                        cp.block = Some(entry.block);
                        cp.acc.clear();
                        cp.acc.extend_from_slice(&entry.data);
                    }
                    Some(b) => {
                        debug_assert_eq!(b, entry.block, "phase mixes blocks");
                        for (a, x) in cp.acc.iter_mut().zip(&entry.data) {
                            *a += *x;
                        }
                    }
                }
            }
            cp.min_next = cp.min_next.min(if next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                next as i64
            });
        }

        if slot.count[v] == n {
            // Phase complete (the count wraps to 0, Algorithm 2 l.42).
            slot.count[v] = 0;
            let mut entries = Vec::new();
            for (c, cp) in slot.cols[v].iter_mut().enumerate() {
                let Some(block) = cp.block else { continue };
                let min_next = if cp.min_next == i64::MAX || cp.min_next == INFINITY_BLOCK as i64 {
                    INFINITY_BLOCK
                } else {
                    cp.min_next as BlockIdx
                };
                entries.push(Entry::data(
                    block,
                    encode_next(min_next, c, width),
                    std::mem::take(&mut cp.acc),
                ));
            }
            let result = Message::Block(Packet {
                kind: PacketKind::Result,
                ver: v as u8,
                stream: g as u16,
                wid: u16::MAX,
                entries,
            });
            let workers: Vec<NodeId> = (0..n)
                .filter(|w| !self.departed[*w])
                .map(|w| NodeId(self.cfg.worker_node(w)))
                .collect();
            self.stats.results_sent += 1;
            self.counters.results_sent.inc();
            for w in &workers {
                crate::wire::send_best_effort(&self.transport, *w, &result)?;
            }
            self.slots[g].as_mut().unwrap().result[v] = Some(result);
        }
        Ok(())
    }
}
