//! Helpers bridging the fusion-layout `next` encoding and wire entries.

use omnireduce_tensor::fusion::FusedNext;
use omnireduce_tensor::{BlockIdx, INFINITY_BLOCK};

/// Encodes a next-block value for `col` into the wire representation
/// (per-column infinities for the ∞ sentinel, paper §3.2 footnote 3).
pub fn encode_next(next: BlockIdx, col: usize, width: usize) -> u32 {
    if next == INFINITY_BLOCK {
        FusedNext::infinity(col, width).raw()
    } else {
        debug_assert_eq!(
            next as usize % width,
            col,
            "next block {next} not in column {col}"
        );
        FusedNext::finite(next, width).raw()
    }
}

/// Decodes a wire `next` value into `(column, next)` where `next` is
/// [`INFINITY_BLOCK`] for the per-column sentinel.
pub fn decode_next(raw: u32, width: usize) -> (usize, BlockIdx) {
    FusedNext(raw).decode(width)
}

use omnireduce_transport::{Message, NodeId, Transport, TransportError};

/// Sends a result toward a worker, treating a disconnected peer as
/// delivered-nowhere: a worker that already finished and left no longer
/// needs results, and on a real network the packet would simply be
/// dropped on the floor. All other errors still surface.
pub(crate) fn send_best_effort<T: Transport>(
    transport: &T,
    peer: NodeId,
    msg: &Message,
) -> Result<(), TransportError> {
    match transport.send(peer, msg) {
        Err(TransportError::Disconnected) => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_finite_and_infinite() {
        let w = 4;
        for (next, col) in [(0u32, 0usize), (5, 1), (14, 2), (7, 3)] {
            let raw = encode_next(next, col, w);
            assert_eq!(decode_next(raw, w), (col, next));
        }
        for col in 0..w {
            let raw = encode_next(INFINITY_BLOCK, col, w);
            assert_eq!(decode_next(raw, w), (col, INFINITY_BLOCK));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not in column")]
    fn wrong_column_is_caught() {
        let _ = encode_next(5, 0, 4);
    }
}
