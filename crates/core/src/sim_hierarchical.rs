//! Two-level (multi-GPU) AllReduce timing model (§5, §6.3).
//!
//! A multi-GPU server runs the §5 hierarchy: an intra-server NCCL
//! reduce+broadcast over NVLink, then the inter-server collective among
//! the server leaders. The two layers are composed as a barrier-separated
//! sum (the intra reduction must finish before the leader has the local
//! sum; the final broadcast happens after the inter-server result
//! arrives), with each layer simulated/modelled on its own fabric:
//!
//! * intra-server: ring among `G` GPUs over NVLink —
//!   `2(G−1)/G · S / B_nvlink` (reduce) plus the same for the final
//!   broadcast, halved because broadcast is a one-phase pipeline; we
//!   charge the standard NCCL ring-allreduce figure once, which bounds
//!   reduce+broadcast on the same links;
//! * inter-server: the packet-level OmniReduce simulation over the
//!   leaders' union bitmaps (8 GPUs' batches union their active rows,
//!   so the per-server gradient is denser than a single GPU's — the
//!   effect Fig. 13/14 measure), or ring AllReduce for the baseline.

use omnireduce_simnet::{Bandwidth, SimTime};
use omnireduce_tensor::NonZeroBitmap;

use crate::config::OmniConfig;
use crate::sim::{simulate_allreduce, SimSpec};

/// Parameters of the multi-GPU testbed.
#[derive(Debug, Clone, Copy)]
pub struct HierarchySpec {
    /// Servers (inter-node workers).
    pub servers: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Effective NVLink all-reduce bandwidth within a server, bytes/s.
    pub nvlink_bytes_per_sec: f64,
    /// Inter-server NIC rate.
    pub nic: Bandwidth,
    /// Inter-server one-way latency.
    pub latency: SimTime,
    /// Simnet engine threads for the inter-server layer (1 =
    /// sequential; >1 = parallel windows, bit-identical).
    pub threads: usize,
}

impl HierarchySpec {
    /// The paper's §6.3 testbed: 6 servers × 8 V100s at 100 Gbps.
    pub fn paper_testbed() -> Self {
        HierarchySpec {
            servers: 6,
            gpus_per_server: 8,
            nvlink_bytes_per_sec: 60e9,
            nic: Bandwidth::gbps(100.0),
            latency: SimTime::from_micros(5),
            threads: 1,
        }
    }

    /// Intra-server layer time for a tensor of `bytes` (ring over
    /// NVLink).
    pub fn intra_time(&self, bytes: u64) -> SimTime {
        let g = self.gpus_per_server as f64;
        if g <= 1.0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(2.0 * (g - 1.0) / g * bytes as f64 / self.nvlink_bytes_per_sec)
    }

    /// Unions per-GPU bitmaps into per-server bitmaps: the leader
    /// aggregates 8 GPUs' gradients, so a block is non-zero server-wide
    /// iff any GPU touched it.
    pub fn union_per_server(&self, per_gpu: &[Vec<NonZeroBitmap>]) -> Vec<NonZeroBitmap> {
        assert_eq!(per_gpu.len(), self.servers, "one GPU set per server");
        per_gpu
            .iter()
            .map(|gpus| {
                assert_eq!(gpus.len(), self.gpus_per_server);
                let mut union = NonZeroBitmap::empty(gpus[0].block_count());
                for bm in gpus {
                    assert_eq!(bm.block_count(), union.block_count());
                    for b in bm.iter_nonzero() {
                        union.set(b);
                    }
                }
                union
            })
            .collect()
    }

    /// Full hierarchical OmniReduce time: intra reduce+broadcast plus the
    /// simulated inter-server AllReduce over the servers' union bitmaps.
    /// `cfg.num_workers` must equal `self.servers`.
    pub fn omnireduce_time(&self, cfg: &OmniConfig, per_server: &[NonZeroBitmap]) -> SimTime {
        assert_eq!(cfg.num_workers, self.servers);
        let spec =
            SimSpec::dedicated(cfg.clone(), self.nic, self.latency).with_threads(self.threads);
        let inter = simulate_allreduce(&spec, per_server).completion;
        self.intra_time(cfg.tensor_len as u64 * 4) + inter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::bitmaps_from_sets;
    use omnireduce_tensor::gen::{worker_block_sets, OverlapMode};

    fn spec() -> HierarchySpec {
        HierarchySpec::paper_testbed()
    }

    #[test]
    fn intra_time_formula() {
        let s = spec();
        // 100 MB over 60 GB/s NVLink, 8 GPUs: 2·7/8·100e6/60e9 ≈ 2.9 ms.
        let t = s.intra_time(100_000_000).as_millis_f64();
        assert!((t - 2.917).abs() < 0.01, "{t}");
        // Single GPU: no intra layer.
        let single = HierarchySpec {
            gpus_per_server: 1,
            ..s
        };
        assert_eq!(single.intra_time(100_000_000), SimTime::ZERO);
    }

    #[test]
    fn union_or_of_gpu_bitmaps() {
        let s = HierarchySpec {
            servers: 2,
            gpus_per_server: 2,
            ..spec()
        };
        let mk = |bits: &[u32]| {
            let mut bm = NonZeroBitmap::empty(8);
            for b in bits {
                bm.set(*b);
            }
            bm
        };
        let per_gpu = vec![vec![mk(&[0, 3]), mk(&[3, 5])], vec![mk(&[7]), mk(&[])]];
        let unions = s.union_per_server(&per_gpu);
        assert_eq!(unions[0].iter_nonzero().collect::<Vec<_>>(), vec![0, 3, 5]);
        assert_eq!(unions[1].iter_nonzero().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn union_makes_servers_denser_and_slower_than_single_gpu() {
        let s = HierarchySpec {
            servers: 4,
            gpus_per_server: 4,
            ..spec()
        };
        let elements = 1 << 20;
        let cfg = OmniConfig::new(4, elements)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(4);
        let nblocks = cfg.block_spec().block_count(elements);
        // Per-GPU sparsity 95%, independent GPUs.
        let per_gpu: Vec<Vec<NonZeroBitmap>> = (0..4)
            .map(|srv| {
                bitmaps_from_sets(&worker_block_sets(
                    4,
                    nblocks,
                    0.95,
                    OverlapMode::Random,
                    100 + srv,
                ))
            })
            .collect();
        let unions = s.union_per_server(&per_gpu);
        // Union density ≈ 1 − 0.95⁴ ≈ 18.5% > single-GPU 5%.
        let union_density = 1.0 - unions[0].block_sparsity();
        assert!(
            union_density > 0.15 && union_density < 0.25,
            "{union_density}"
        );

        let t_hier = s.omnireduce_time(&cfg, &unions);
        // Compare against a hypothetical single-GPU-per-server run.
        let single: Vec<NonZeroBitmap> = per_gpu.iter().map(|g| g[0].clone()).collect();
        let spec1 = SimSpec::dedicated(cfg.clone(), s.nic, s.latency);
        let t_single = simulate_allreduce(&spec1, &single).completion;
        assert!(
            t_hier > t_single,
            "denser unions + intra layer must cost more: {t_hier} vs {t_single}"
        );
    }
}
