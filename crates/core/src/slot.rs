//! Shared per-column accumulation state for the aggregation engines
//! (DESIGN §9: one accumulator, zero steady-state allocations).
//!
//! Both aggregator engines (lossless Algorithm 1 in
//! [`crate::aggregator`], loss-recovery Algorithm 2 in
//! [`crate::recovery`]) keep, per fused column, an accumulator for the
//! block being aggregated. Two reduction modes exist:
//!
//! * **arrival order** (default): contributions are folded into `acc` as
//!   they arrive, via the vectorized kernel
//!   [`omnireduce_tensor::block::reduce_into`];
//! * **deterministic** (§7, [`crate::config::OmniConfig::deterministic`]):
//!   contributions are *buffered per worker* and reduced in ascending
//!   worker-id order at completion, so the float result is
//!   bit-reproducible regardless of packet arrival or retransmission
//!   order.
//!
//! [`ColAccumulator`] owns all of that state with a fixed buffer
//! footprint: the per-worker contribution buffers are allocated once and
//! refilled in place every block (previously each block dropped and
//! re-`clone`d them — the `aggregator.rs:287` allocation fixed by this
//! PR), and [`ColAccumulator::reset`] clears state without releasing any
//! buffer. After one warm-up block, `store`/`take_into`/`reset` perform
//! no heap allocation.

use omnireduce_tensor::block::{copy_into, reduce_into};

/// Per-column block accumulator shared by the aggregation engines.
#[derive(Debug, Clone)]
pub struct ColAccumulator {
    deterministic: bool,
    /// Arrival-order accumulator (unused in deterministic mode).
    acc: Vec<f32>,
    /// Whether any worker contributed data to the current block.
    touched: bool,
    /// Per-worker contribution buffers (deterministic mode only),
    /// allocated once and reused in place across blocks.
    contribs: Vec<Vec<f32>>,
    /// Which workers contributed to the current block.
    contrib_set: Vec<bool>,
}

impl ColAccumulator {
    /// Creates an accumulator for `num_workers` contributors.
    pub fn new(num_workers: usize, deterministic: bool) -> Self {
        ColAccumulator {
            deterministic,
            acc: Vec::new(),
            touched: false,
            contribs: if deterministic {
                vec![Vec::new(); num_workers]
            } else {
                Vec::new()
            },
            contrib_set: if deterministic {
                vec![false; num_workers]
            } else {
                Vec::new()
            },
        }
    }

    /// True when any worker contributed data to the current block.
    #[inline]
    pub fn touched(&self) -> bool {
        self.touched
    }

    /// True when worker `wid` already contributed to the current block
    /// (always `false` in arrival-order mode, which cannot tell).
    #[inline]
    pub fn has_contrib(&self, wid: usize) -> bool {
        self.deterministic && self.contrib_set[wid]
    }

    /// Folds worker `wid`'s block payload into this accumulator.
    ///
    /// Arrival-order mode reduces immediately; deterministic mode copies
    /// into the worker's persistent buffer (reused in place — no
    /// allocation after warm-up). A repeated `store` from the same
    /// worker in deterministic mode overwrites its previous
    /// contribution (idempotent, as retransmissions require).
    #[inline]
    pub fn store(&mut self, wid: usize, data: &[f32]) {
        if self.deterministic {
            copy_into(&mut self.contribs[wid], data);
            self.contrib_set[wid] = true;
        } else if !self.touched {
            copy_into(&mut self.acc, data);
        } else {
            debug_assert_eq!(self.acc.len(), data.len(), "block length changed mid-slot");
            reduce_into(&mut self.acc, data);
        }
        self.touched = true;
    }

    /// Drains the aggregate for the current block into `out` (cleared
    /// first) and resets the accumulator for the next block, keeping
    /// every buffer.
    ///
    /// Deterministic mode reduces the buffered contributions in
    /// ascending worker-id order (§7).
    ///
    /// # Panics
    /// Panics when no worker contributed data (completing an untouched
    /// block is a protocol error).
    pub fn take_into(&mut self, out: &mut Vec<f32>) {
        assert!(self.touched, "completed block with no data");
        if self.deterministic {
            out.clear();
            let mut first = true;
            for wid in 0..self.contribs.len() {
                if !self.contrib_set[wid] {
                    continue;
                }
                if first {
                    out.extend_from_slice(&self.contribs[wid]);
                    first = false;
                } else {
                    reduce_into(out, &self.contribs[wid]);
                }
            }
            self.contrib_set.fill(false);
        } else {
            // Swap rather than copy: `out` (an empty pooled buffer)
            // becomes the result, and its allocation becomes the next
            // block's accumulator.
            out.clear();
            std::mem::swap(&mut self.acc, out);
            self.acc.clear();
        }
        self.touched = false;
    }

    /// Clears the accumulator state in place (start of a new round),
    /// keeping every buffer.
    pub fn reset(&mut self) {
        self.acc.clear();
        self.touched = false;
        self.contrib_set.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_order_accumulates() {
        let mut a = ColAccumulator::new(3, false);
        assert!(!a.touched());
        a.store(2, &[1.0, 2.0]);
        a.store(0, &[0.5, -1.0]);
        let mut out = Vec::new();
        a.take_into(&mut out);
        assert_eq!(out, vec![1.5, 1.0]);
        assert!(!a.touched());
    }

    #[test]
    fn deterministic_reduces_in_worker_order() {
        // Worker-id-order reduction: (w0 + w1) + w2 regardless of the
        // arrival order below.
        let w0 = [1.0e8f32, 1.0];
        let w1 = [-1.0e8, 1.0];
        let w2 = [0.25, 1.0];
        let expected = [(w0[0] + w1[0]) + w2[0], 3.0];
        let mut a = ColAccumulator::new(3, true);
        a.store(2, &w2);
        a.store(0, &w0);
        a.store(1, &w1);
        let mut out = Vec::new();
        a.take_into(&mut out);
        assert_eq!(out[0].to_bits(), expected[0].to_bits());
        assert_eq!(out[1].to_bits(), expected[1].to_bits());
    }

    #[test]
    fn deterministic_store_is_idempotent() {
        let mut a = ColAccumulator::new(2, true);
        a.store(0, &[1.0]);
        assert!(a.has_contrib(0));
        a.store(0, &[2.0]); // retransmission overwrites
        a.store(1, &[3.0]);
        let mut out = Vec::new();
        a.take_into(&mut out);
        assert_eq!(out, vec![5.0]);
        assert!(!a.has_contrib(0));
    }

    #[test]
    fn buffers_survive_take_and_reset() {
        let mut a = ColAccumulator::new(2, true);
        a.store(0, &[1.0; 8]);
        a.store(1, &[2.0; 8]);
        let ptr0 = a.contribs[0].as_ptr();
        let mut out = Vec::with_capacity(8);
        a.take_into(&mut out);
        a.store(0, &[3.0; 8]);
        assert_eq!(
            a.contribs[0].as_ptr(),
            ptr0,
            "contrib buffer must be reused"
        );
        a.reset();
        assert_eq!(a.contribs[0].as_ptr(), ptr0);
        assert!(!a.touched());
    }

    #[test]
    fn arrival_take_swaps_buffers() {
        let mut a = ColAccumulator::new(2, false);
        a.store(0, &[1.0; 4]);
        let acc_ptr = a.acc.as_ptr();
        let mut out = Vec::with_capacity(4);
        let out_ptr = out.as_ptr();
        a.take_into(&mut out);
        assert_eq!(out.as_ptr(), acc_ptr, "result takes the acc allocation");
        assert_eq!(a.acc.as_ptr(), out_ptr, "acc takes the pooled allocation");
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn take_untouched_panics() {
        let mut a = ColAccumulator::new(1, false);
        let mut out = Vec::new();
        a.take_into(&mut out);
    }
}
