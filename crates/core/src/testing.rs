//! Test and example support: spin up a full OmniReduce group in-process.
//!
//! Spawns one thread per worker and per aggregator shard over an
//! in-process channel mesh (or any transport the caller provides),
//! runs one or more AllReduce rounds, and returns every worker's
//! resulting tensor plus traffic statistics. Used by unit, property and
//! integration tests, and by the quickstart example.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use omnireduce_tensor::gen::{self, OverlapMode};
use omnireduce_tensor::{BlockSpec, Tensor};
use omnireduce_transport::{ChannelNetwork, NodeId, Transport};

use crate::aggregator::OmniAggregator;
use crate::config::OmniConfig;
use crate::recovery::{RecoveryAggregator, RecoveryWorker};
use crate::worker::{OmniWorker, WorkerStats};

/// Deadlock watchdog for tests: runs `f` on a helper thread and panics
/// if it has not finished within `deadline` — a stalled collective
/// fails fast with a diagnosable message instead of hanging CI until
/// the job-level timeout kills it with no context.
///
/// If `f` itself panics, the panic is resumed on the caller's thread so
/// assertion messages surface normally. On deadline expiry the stalled
/// thread is left running (threads cannot be killed safely); the test
/// process exits when the harness finishes.
///
/// ```no_run
/// use std::time::Duration;
/// omnireduce_core::testing::with_deadline(Duration::from_secs(30), || {
///     // run a collective that must terminate
/// });
/// ```
///
/// # Panics
/// Panics when `f` does not complete within `deadline`, or when `f`
/// panics.
pub fn with_deadline<R, F>(deadline: Duration, f: F) -> R
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let (tx, rx) = mpsc::channel::<()>();
    let handle = thread::Builder::new()
        .name("with-deadline-body".into())
        .spawn(move || {
            let r = f();
            let _ = tx.send(());
            r
        })
        .expect("failed to spawn watchdog body thread");
    match rx.recv_timeout(deadline) {
        Ok(()) => match handle.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        },
        // Channel closed without a completion signal: the body panicked.
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!(
            "with_deadline: test body still running after {deadline:?} — \
             the collective appears stalled (suspects: a retransmission \
             loop against a dead peer without a retry budget, a phase \
             waiting for an evicted/crashed worker, or a partition that \
             never heals). Thread 'with-deadline-body' is wedged; \
             failing fast instead of hanging CI."
        ),
    }
}

/// Result of [`run_group`]: per-worker output tensors (one per round) and
/// traffic stats.
pub struct GroupResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker traffic counters.
    pub stats: Vec<WorkerStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to aggregator
    /// shard `s`; row-sums equal `stats[w].bytes_sent`.
    pub shard_bytes: Vec<Vec<u64>>,
}

/// Runs `rounds` AllReduce rounds over the lossless engine, one thread
/// per node, with `inputs[w][r]` as worker `w`'s input for round `r`.
///
/// # Panics
/// Panics when shapes don't match the config or a thread fails.
pub fn run_group(cfg: &OmniConfig, inputs: Vec<Vec<Tensor>>) -> GroupResult {
    assert_eq!(inputs.len(), cfg.num_workers, "one input set per worker");
    let rounds = inputs[0].len();
    for i in &inputs {
        assert_eq!(i.len(), rounds, "same round count per worker");
    }
    let mut net = ChannelNetwork::new(cfg.mesh_size());

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = net.endpoint(NodeId(cfg.aggregator_node(a)));
        let cfg = cfg.clone();
        agg_handles.push(thread::spawn(move || {
            let mut agg = OmniAggregator::new(t, cfg);
            agg.run().expect("aggregator failed");
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.into_iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            let mut outs = Vec::with_capacity(tensors.len());
            for mut tensor in tensors {
                worker.allreduce(&mut tensor).expect("allreduce failed");
                outs.push(tensor);
            }
            let stats = worker.stats();
            let shard_bytes = worker.shard_bytes().to_vec();
            worker.shutdown().expect("shutdown failed");
            (outs, stats, shard_bytes)
        }));
    }

    let mut outputs = Vec::new();
    let mut stats = Vec::new();
    let mut shard_bytes = Vec::new();
    for h in worker_handles {
        let (o, s, b) = h.join().expect("worker thread panicked");
        outputs.push(o);
        stats.push(s);
        shard_bytes.push(b);
    }
    for h in agg_handles {
        h.join().expect("aggregator thread panicked");
    }
    GroupResult {
        outputs,
        stats,
        shard_bytes,
    }
}

/// Result of [`run_recovery_group`].
pub struct RecoveryGroupResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker traffic counters, including retransmissions.
    pub stats: Vec<crate::recovery::RecoveryStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to aggregator
    /// shard `s`; row-sums equal `stats[w].bytes_sent`.
    pub shard_bytes: Vec<Vec<u64>>,
}

/// Like [`run_group`] but over the Algorithm 2 loss-recovery engine and a
/// caller-supplied transport mesh (typically a
/// [`omnireduce_transport::LossyNetwork`]). `endpoints` must be indexed by
/// node id (workers first, shards after).
pub fn run_recovery_group<T: Transport + 'static>(
    cfg: &OmniConfig,
    endpoints: Vec<T>,
    inputs: Vec<Vec<Tensor>>,
) -> RecoveryGroupResult {
    assert_eq!(endpoints.len(), cfg.mesh_size());
    assert_eq!(inputs.len(), cfg.num_workers);
    let mut endpoints: Vec<Option<T>> = endpoints.into_iter().map(Some).collect();

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = endpoints[cfg.aggregator_node(a) as usize].take().unwrap();
        let cfg = cfg.clone();
        agg_handles.push(thread::spawn(move || {
            let mut agg = RecoveryAggregator::new(t, cfg);
            agg.run().expect("aggregator failed");
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.into_iter().enumerate() {
        let t = endpoints[cfg.worker_node(w) as usize].take().unwrap();
        let cfg = cfg.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = RecoveryWorker::new(t, cfg);
            let mut outs = Vec::with_capacity(tensors.len());
            for mut tensor in tensors {
                worker.allreduce(&mut tensor).expect("allreduce failed");
                outs.push(tensor);
            }
            let stats = worker.stats();
            let shard_bytes = worker.shard_bytes().to_vec();
            worker.shutdown().expect("shutdown failed");
            (outs, stats, shard_bytes)
        }));
    }

    let mut outputs = Vec::new();
    let mut stats = Vec::new();
    let mut shard_bytes = Vec::new();
    for h in worker_handles {
        let (o, s, b) = h.join().expect("worker thread panicked");
        outputs.push(o);
        stats.push(s);
        shard_bytes.push(b);
    }
    for h in agg_handles {
        h.join().expect("aggregator thread panicked");
    }
    RecoveryGroupResult {
        outputs,
        stats,
        shard_bytes,
    }
}

/// One point of the cross-engine conformance matrix (DESIGN §9): a
/// seeded scenario covering every data-plane axis — workers × sparsity ×
/// block geometry × fusion × shards × determinism × loss. Shared by the
/// executable-engine conformance suite (`crates/core/tests/conformance.rs`)
/// and the parallel-simnet differential suite
/// (`tests/simnet_parallel.rs`), so both prove bit-exactness over the
/// *same* matrix.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Worker count.
    pub workers: usize,
    /// Tensor length in f32 elements.
    pub elements: usize,
    /// Block size.
    pub block_size: usize,
    /// Blocks fused per packet.
    pub fusion: usize,
    /// Concurrent streams.
    pub streams: usize,
    /// Aggregator shards.
    pub aggregators: usize,
    /// Fraction of all-zero blocks.
    pub sparsity: f64,
    /// Non-zero density inside non-zero blocks.
    pub density_within: f64,
    /// How workers' non-zero sets overlap.
    pub overlap: OverlapMode,
    /// §7 deterministic (worker-id-order) reduction.
    pub deterministic: bool,
    /// Per-packet drop probability for the lossy recovery run.
    pub loss: f64,
    /// AllReduce rounds per run.
    pub rounds: usize,
    /// Scenario seed (drives input generation and loss plans).
    pub seed: u64,
}

/// The seeded scenario matrix: every axis of the data plane that the
/// pooling/vectorization rewrite touched.
pub fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    let base = Scenario {
        workers: 2,
        elements: 1 << 12,
        block_size: 64,
        fusion: 2,
        streams: 2,
        aggregators: 1,
        sparsity: 0.5,
        density_within: 1.0,
        overlap: OverlapMode::Random,
        deterministic: false,
        loss: 0.0,
        rounds: 1,
        seed: 1,
    };
    // Sparsity sweep (dense, half, highly sparse).
    for (i, s) in [0.0, 0.5, 0.9].into_iter().enumerate() {
        v.push(Scenario {
            sparsity: s,
            seed: 10 + i as u64,
            ..base
        });
    }
    // Geometry sweep: block size × fusion × shards × workers.
    v.push(Scenario {
        workers: 3,
        block_size: 128,
        fusion: 4,
        streams: 4,
        aggregators: 2,
        seed: 20,
        ..base
    });
    v.push(Scenario {
        workers: 4,
        block_size: 32,
        fusion: 1,
        streams: 8,
        aggregators: 4,
        sparsity: 0.75,
        seed: 21,
        ..base
    });
    // Tail geometry: tensor length not a multiple of block×fusion×streams.
    v.push(Scenario {
        elements: (1 << 12) + 257,
        block_size: 96,
        fusion: 3,
        streams: 2,
        seed: 22,
        ..base
    });
    // Deterministic (§7 worker-id-order) reduction.
    v.push(Scenario {
        workers: 3,
        deterministic: true,
        aggregators: 2,
        seed: 30,
        ..base
    });
    // Overlap modes exercise different min-next interleavings.
    v.push(Scenario {
        overlap: OverlapMode::All,
        sparsity: 0.8,
        seed: 40,
        ..base
    });
    v.push(Scenario {
        overlap: OverlapMode::None,
        sparsity: 0.8,
        workers: 3,
        seed: 41,
        ..base
    });
    // Partially-dense blocks (zeros inside non-zero blocks).
    v.push(Scenario {
        density_within: 0.4,
        seed: 42,
        ..base
    });
    // Loss plans: the recovery engine must still be bit-identical under
    // drops and duplicates (idempotent two-phase slots).
    v.push(Scenario {
        loss: 0.1,
        seed: 50,
        ..base
    });
    v.push(Scenario {
        loss: 0.25,
        workers: 3,
        deterministic: true,
        seed: 51,
        ..base
    });
    // Multi-round: pooled buffers and in-place slot resets must carry no
    // state across rounds.
    v.push(Scenario {
        rounds: 3,
        sparsity: 0.6,
        seed: 60,
        ..base
    });
    v
}

/// Builds the [`OmniConfig`] for a scenario.
pub fn config_of(s: &Scenario) -> OmniConfig {
    let mut cfg = OmniConfig::new(s.workers, s.elements)
        .with_block_size(s.block_size)
        .with_fusion(s.fusion)
        .with_streams(s.streams)
        .with_aggregators(s.aggregators);
    if s.deterministic {
        cfg = cfg.with_deterministic();
    }
    cfg
}

/// Quantizes every element to a multiple of 0.25. Generated magnitudes
/// are in [0.5, 1.5), so quantization never creates a new zero (the
/// non-zero block structure is preserved) and all sums are exact —
/// *any* reduction order must produce the same bits.
pub fn quantize(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = (*v * 4.0).round() * 0.25;
    }
}

/// Per-round quantized inputs: `inputs[w][r]`.
pub fn gen_inputs(s: &Scenario) -> Vec<Vec<Tensor>> {
    let mut per_worker: Vec<Vec<Tensor>> = vec![Vec::new(); s.workers];
    for r in 0..s.rounds {
        let mut round = gen::workers(
            s.workers,
            s.elements,
            BlockSpec::new(s.block_size),
            s.sparsity,
            s.density_within,
            s.overlap,
            s.seed + 1000 * r as u64,
        );
        for (w, t) in round.iter_mut().enumerate() {
            quantize(t);
            per_worker[w].push(t.clone());
        }
    }
    per_worker
}

/// The oracle: a plain scalar loop, element by element, in worker-id
/// order. No vectorized kernel, no engine machinery.
pub fn scalar_oracle(inputs: &[Vec<Tensor>], round: usize) -> Tensor {
    let len = inputs[0][round].len();
    let mut out = vec![0.0f32; len];
    for w in inputs {
        for (o, v) in out.iter_mut().zip(w[round].as_slice()) {
            *o += *v;
        }
    }
    Tensor::from_vec(out)
}

/// Asserts two tensors are bit-for-bit equal, element by element.
///
/// # Panics
/// Panics with `ctx` and the differing index on any mismatch.
pub fn assert_bits_eq(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: element {i} differs: {g} vs {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_deadline_returns_the_value() {
        assert_eq!(with_deadline(Duration::from_secs(5), || 41 + 1), 42);
    }

    #[test]
    #[should_panic(expected = "still running after")]
    fn with_deadline_detects_a_stall() {
        with_deadline(Duration::from_millis(50), || {
            thread::sleep(Duration::from_secs(600));
        });
    }

    #[test]
    #[should_panic(expected = "inner assertion fired")]
    fn with_deadline_propagates_body_panics() {
        with_deadline(Duration::from_secs(5), || panic!("inner assertion fired"));
    }
}
