//! Test and example support: spin up a full OmniReduce group in-process.
//!
//! Spawns one thread per worker and per aggregator shard over an
//! in-process channel mesh (or any transport the caller provides),
//! runs one or more AllReduce rounds, and returns every worker's
//! resulting tensor plus traffic statistics. Used by unit, property and
//! integration tests, and by the quickstart example.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use omnireduce_tensor::Tensor;
use omnireduce_transport::{ChannelNetwork, NodeId, Transport};

use crate::aggregator::OmniAggregator;
use crate::config::OmniConfig;
use crate::recovery::{RecoveryAggregator, RecoveryWorker};
use crate::worker::{OmniWorker, WorkerStats};

/// Deadlock watchdog for tests: runs `f` on a helper thread and panics
/// if it has not finished within `deadline` — a stalled collective
/// fails fast with a diagnosable message instead of hanging CI until
/// the job-level timeout kills it with no context.
///
/// If `f` itself panics, the panic is resumed on the caller's thread so
/// assertion messages surface normally. On deadline expiry the stalled
/// thread is left running (threads cannot be killed safely); the test
/// process exits when the harness finishes.
///
/// ```no_run
/// use std::time::Duration;
/// omnireduce_core::testing::with_deadline(Duration::from_secs(30), || {
///     // run a collective that must terminate
/// });
/// ```
///
/// # Panics
/// Panics when `f` does not complete within `deadline`, or when `f`
/// panics.
pub fn with_deadline<R, F>(deadline: Duration, f: F) -> R
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let (tx, rx) = mpsc::channel::<()>();
    let handle = thread::Builder::new()
        .name("with-deadline-body".into())
        .spawn(move || {
            let r = f();
            let _ = tx.send(());
            r
        })
        .expect("failed to spawn watchdog body thread");
    match rx.recv_timeout(deadline) {
        Ok(()) => match handle.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        },
        // Channel closed without a completion signal: the body panicked.
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!(
            "with_deadline: test body still running after {deadline:?} — \
             the collective appears stalled (suspects: a retransmission \
             loop against a dead peer without a retry budget, a phase \
             waiting for an evicted/crashed worker, or a partition that \
             never heals). Thread 'with-deadline-body' is wedged; \
             failing fast instead of hanging CI."
        ),
    }
}

/// Result of [`run_group`]: per-worker output tensors (one per round) and
/// traffic stats.
pub struct GroupResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker traffic counters.
    pub stats: Vec<WorkerStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to aggregator
    /// shard `s`; row-sums equal `stats[w].bytes_sent`.
    pub shard_bytes: Vec<Vec<u64>>,
}

/// Runs `rounds` AllReduce rounds over the lossless engine, one thread
/// per node, with `inputs[w][r]` as worker `w`'s input for round `r`.
///
/// # Panics
/// Panics when shapes don't match the config or a thread fails.
pub fn run_group(cfg: &OmniConfig, inputs: Vec<Vec<Tensor>>) -> GroupResult {
    assert_eq!(inputs.len(), cfg.num_workers, "one input set per worker");
    let rounds = inputs[0].len();
    for i in &inputs {
        assert_eq!(i.len(), rounds, "same round count per worker");
    }
    let mut net = ChannelNetwork::new(cfg.mesh_size());

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = net.endpoint(NodeId(cfg.aggregator_node(a)));
        let cfg = cfg.clone();
        agg_handles.push(thread::spawn(move || {
            let mut agg = OmniAggregator::new(t, cfg);
            agg.run().expect("aggregator failed");
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.into_iter().enumerate() {
        let t = net.endpoint(NodeId(cfg.worker_node(w)));
        let cfg = cfg.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = OmniWorker::new(t, cfg);
            let mut outs = Vec::with_capacity(tensors.len());
            for mut tensor in tensors {
                worker.allreduce(&mut tensor).expect("allreduce failed");
                outs.push(tensor);
            }
            let stats = worker.stats();
            let shard_bytes = worker.shard_bytes().to_vec();
            worker.shutdown().expect("shutdown failed");
            (outs, stats, shard_bytes)
        }));
    }

    let mut outputs = Vec::new();
    let mut stats = Vec::new();
    let mut shard_bytes = Vec::new();
    for h in worker_handles {
        let (o, s, b) = h.join().expect("worker thread panicked");
        outputs.push(o);
        stats.push(s);
        shard_bytes.push(b);
    }
    for h in agg_handles {
        h.join().expect("aggregator thread panicked");
    }
    GroupResult {
        outputs,
        stats,
        shard_bytes,
    }
}

/// Result of [`run_recovery_group`].
pub struct RecoveryGroupResult {
    /// `outputs[w][r]` = worker `w`'s tensor after round `r`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Per-worker traffic counters, including retransmissions.
    pub stats: Vec<crate::recovery::RecoveryStats>,
    /// `shard_bytes[w][s]` = wire bytes worker `w` sent to aggregator
    /// shard `s`; row-sums equal `stats[w].bytes_sent`.
    pub shard_bytes: Vec<Vec<u64>>,
}

/// Like [`run_group`] but over the Algorithm 2 loss-recovery engine and a
/// caller-supplied transport mesh (typically a
/// [`omnireduce_transport::LossyNetwork`]). `endpoints` must be indexed by
/// node id (workers first, shards after).
pub fn run_recovery_group<T: Transport + 'static>(
    cfg: &OmniConfig,
    endpoints: Vec<T>,
    inputs: Vec<Vec<Tensor>>,
) -> RecoveryGroupResult {
    assert_eq!(endpoints.len(), cfg.mesh_size());
    assert_eq!(inputs.len(), cfg.num_workers);
    let mut endpoints: Vec<Option<T>> = endpoints.into_iter().map(Some).collect();

    let mut agg_handles = Vec::new();
    for a in 0..cfg.num_aggregators {
        let t = endpoints[cfg.aggregator_node(a) as usize].take().unwrap();
        let cfg = cfg.clone();
        agg_handles.push(thread::spawn(move || {
            let mut agg = RecoveryAggregator::new(t, cfg);
            agg.run().expect("aggregator failed");
        }));
    }

    let mut worker_handles = Vec::new();
    for (w, tensors) in inputs.into_iter().enumerate() {
        let t = endpoints[cfg.worker_node(w) as usize].take().unwrap();
        let cfg = cfg.clone();
        worker_handles.push(thread::spawn(move || {
            let mut worker = RecoveryWorker::new(t, cfg);
            let mut outs = Vec::with_capacity(tensors.len());
            for mut tensor in tensors {
                worker.allreduce(&mut tensor).expect("allreduce failed");
                outs.push(tensor);
            }
            let stats = worker.stats();
            let shard_bytes = worker.shard_bytes().to_vec();
            worker.shutdown().expect("shutdown failed");
            (outs, stats, shard_bytes)
        }));
    }

    let mut outputs = Vec::new();
    let mut stats = Vec::new();
    let mut shard_bytes = Vec::new();
    for h in worker_handles {
        let (o, s, b) = h.join().expect("worker thread panicked");
        outputs.push(o);
        stats.push(s);
        shard_bytes.push(b);
    }
    for h in agg_handles {
        h.join().expect("aggregator thread panicked");
    }
    RecoveryGroupResult {
        outputs,
        stats,
        shard_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_deadline_returns_the_value() {
        assert_eq!(with_deadline(Duration::from_secs(5), || 41 + 1), 42);
    }

    #[test]
    #[should_panic(expected = "still running after")]
    fn with_deadline_detects_a_stall() {
        with_deadline(Duration::from_millis(50), || {
            thread::sleep(Duration::from_secs(600));
        });
    }

    #[test]
    #[should_panic(expected = "inner assertion fired")]
    fn with_deadline_propagates_body_panics() {
        with_deadline(Duration::from_secs(5), || panic!("inner assertion fired"));
    }
}
