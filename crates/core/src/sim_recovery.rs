//! Algorithm 2 (loss recovery) as [`omnireduce_simnet`] actors: the
//! retransmission protocol running over a simulated lossy fabric, with
//! simulated timers — the deterministic counterpart of the wall-clock
//! measurement in `fig21_loss`.
//!
//! Mirrors [`crate::recovery`]: every worker answers every result packet
//! (data or ack per active column), the aggregator completes a phase by
//! counting distinct workers, keeps two slot versions, retains completed
//! results for retransmission, and workers arm a per-stream timer for
//! every packet they send. Packet payloads are elided; the simulator
//! charges exact encoded sizes and drops packets per the NICs' loss
//! probability.
//!
//! The aggregator actor never halts (it must stay able to serve result
//! retransmissions after the last multicast); the run ends when the
//! event queue drains — i.e. when every worker has finished and no timer
//! remains armed.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use omnireduce_simnet::{ActorId, Ctx, NicConfig, Process, SimTime, Simulator};
use omnireduce_telemetry::{
    Counter, FlightEventKind, FlightLane, Histogram, LaneRole, Telemetry, NO_BLOCK,
};
use omnireduce_tensor::{BlockIdx, NonZeroBitmap, INFINITY_BLOCK};
use omnireduce_transport::codec::ENTRY_HEADER_BYTES;
use omnireduce_transport::timer::RttEstimator;

use crate::config::OmniConfig;
use crate::layout::StreamLayout;
use crate::recovery::epoch_before;
use crate::sim::{SimEntry, SimOutcome};

/// Retransmission-timer policy for the simulated recovery protocol —
/// the simulated mirror of the `adaptive_rto`/`rto_min`/`rto_max`/
/// `max_retransmits` knobs of [`OmniConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SimRtoConfig {
    /// When true, estimate the RTO from observed (simulated) RTTs;
    /// when false, always arm `initial`.
    pub adaptive: bool,
    /// Initial RTO (and the fixed RTO when `adaptive` is false).
    pub initial: SimTime,
    /// Lower clamp for the adaptive RTO.
    pub min: SimTime,
    /// Upper clamp for the adaptive RTO (including backoff).
    pub max: SimTime,
    /// Consecutive unanswered retransmissions of one slot before the
    /// worker gives up on the shard and halts as *failed* (reported in
    /// [`SimOutcome::failed_workers`]). Keeps a simulation with a dead
    /// or unreachable peer bounded instead of re-arming timers forever.
    pub max_retransmits: u32,
}

impl SimRtoConfig {
    /// The pre-robustness policy: a fixed timeout, with a large (but
    /// finite — simulations must drain) retry budget.
    pub fn fixed(t: SimTime) -> Self {
        SimRtoConfig {
            adaptive: false,
            initial: t,
            min: t,
            max: t,
            max_retransmits: 1000,
        }
    }

    /// Adaptive RTO with the given initial value and clamp range.
    pub fn adaptive(initial: SimTime, min: SimTime, max: SimTime) -> Self {
        SimRtoConfig {
            adaptive: true,
            initial,
            min,
            max,
            max_retransmits: 10,
        }
    }

    /// Sets the retry budget.
    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        assert!(n >= 1, "retry budget must be positive");
        self.max_retransmits = n;
        self
    }
}

/// Membership schedule for a simulated run: scripted worker departures
/// (the simulated mirror of a crashed worker in [`ChaosNetwork`]) and
/// the aggregator's eviction policy. Departed workers go permanently
/// silent at the given simulated time; the aggregator evicts silent,
/// waited-on workers, bumps the membership epoch, and completes the
/// affected phases degraded — emitting the same `Eviction`/`EpochChange`
/// flight events as the live engine so the reconstructor and omnistat
/// attribution work identically on simulated traces.
///
/// [`ChaosNetwork`]: omnireduce_transport::fault::ChaosNetwork
#[derive(Debug, Clone)]
pub struct SimMembership {
    /// Per-worker departure time (index = worker id; `None` = stays).
    pub depart_at: Vec<Option<SimTime>>,
    /// Silence threshold after which a waited-on worker is evicted.
    pub eviction_timeout: SimTime,
}

impl SimMembership {
    /// A schedule in which nobody departs but eviction is armed.
    pub fn stable(n: usize, eviction_timeout: SimTime) -> Self {
        SimMembership {
            depart_at: vec![None; n],
            eviction_timeout,
        }
    }

    /// Marks worker `w` as departing (going silent) at `t`.
    pub fn depart(mut self, w: usize, t: SimTime) -> Self {
        self.depart_at[w] = Some(t);
        self
    }
}

/// Simulated recovery-protocol message.
#[derive(Debug, Clone)]
pub enum RecMsg {
    /// Worker → aggregator (data and/or acks for one phase).
    Data {
        /// Stream id.
        stream: usize,
        /// Phase version bit.
        ver: u8,
        /// Sending worker.
        wid: usize,
        /// Membership epoch the sender believes is current (mirrors the
        /// wire header's epoch byte; free on the wire, so `msg_bytes`
        /// is unchanged).
        epoch: u8,
        /// Entries (acks carry `values: 0`).
        entries: Vec<SimEntry>,
    },
    /// Aggregator → worker(s).
    Result {
        /// Stream id.
        stream: usize,
        /// Completed phase version.
        ver: u8,
        /// Membership epoch at completion; workers adopt newer epochs.
        epoch: u8,
        /// Per-column aggregated entries.
        entries: Vec<SimEntry>,
    },
}

fn msg_bytes(stream_id: u16, entries: &[SimEntry]) -> usize {
    omnireduce_transport::codec::block_header_bytes(stream_id)
        + entries
            .iter()
            .map(|e| ENTRY_HEADER_BYTES + 4 * e.values)
            .sum::<usize>()
}

/// `core.sim_recovery.*` loss-path counter handles shared by every actor
/// of one run (detached when the run carries no telemetry registry).
#[derive(Clone)]
struct RecCounters {
    retransmissions: Counter,
    timer_fires: Counter,
    stale_results_ignored: Counter,
    duplicates_ignored: Counter,
    result_retransmissions: Counter,
    backoffs: Counter,
    peer_unresponsive: Counter,
    /// `core.sim_recovery.rto`: armed RTO per sent packet, in µs.
    rto: Histogram,
}

impl RecCounters {
    fn new(telemetry: Option<&Telemetry>) -> Self {
        match telemetry {
            Some(t) => RecCounters {
                retransmissions: t.counter("core.sim_recovery.retransmissions"),
                timer_fires: t.counter("core.sim_recovery.timer_fires"),
                stale_results_ignored: t.counter("core.sim_recovery.stale_results_ignored"),
                duplicates_ignored: t.counter("core.sim_recovery.duplicates_ignored"),
                result_retransmissions: t.counter("core.sim_recovery.result_retransmissions"),
                backoffs: t.counter("core.sim_recovery.backoffs"),
                peer_unresponsive: t.counter("core.sim_recovery.peer_unresponsive"),
                rto: t.histogram("core.sim_recovery.rto"),
            },
            None => RecCounters {
                retransmissions: Counter::detached(),
                timer_fires: Counter::detached(),
                stale_results_ignored: Counter::detached(),
                duplicates_ignored: Counter::detached(),
                result_retransmissions: Counter::detached(),
                backoffs: Counter::detached(),
                peer_unresponsive: Counter::detached(),
                rto: Histogram::detached(),
            },
        }
    }
}

struct WCol {
    my_next: BlockIdx,
    done: bool,
}

struct WStream {
    cols: Vec<Option<WCol>>,
    remaining: usize,
    ver: u8,
    outstanding: Option<Vec<SimEntry>>,
    /// Bumps on every (re)send; stale timer tokens are ignored.
    timer_epoch: u32,
    /// When the outstanding packet was first sent (for RTT sampling).
    sent_at: SimTime,
    /// Karn's rule: a retransmitted packet's answer feeds no RTT sample.
    retransmitted: bool,
    /// Consecutive unanswered retransmissions of the outstanding packet.
    retx: u32,
}

struct RecWorker {
    cfg: OmniConfig,
    layout: StreamLayout,
    wid: usize,
    bitmap: Arc<NonZeroBitmap>,
    shards: Vec<ActorId>,
    rto_cfg: SimRtoConfig,
    /// Per-shard RTT estimator (adaptive mode).
    rtt: Vec<RttEstimator>,
    streams: Vec<Option<WStream>>,
    pending: usize,
    /// Retransmissions performed (surfaced through `finished` stats by
    /// the driver via closure capture — kept for debug assertions).
    retransmissions: u64,
    /// Set when the retry budget ran out: the worker has halted as
    /// failed and ignores everything from then on.
    failed: bool,
    /// Membership epoch this worker believes is current (adopted from
    /// newer `Result` epochs, mirroring the live engine).
    epoch: u8,
    /// Scheduled departure (simulated crash): the worker goes silent at
    /// this time and halts.
    depart_at: Option<SimTime>,
    /// Set once the departure fired.
    departed: bool,
    /// Shared sink for failed worker ids, read by the driver.
    failed_sink: Arc<Mutex<Vec<usize>>>,
    counters: RecCounters,
    /// Flight lane recording simulated-time protocol events
    /// (`record_at` with sim ns — never the wall clock).
    flight: FlightLane,
}

fn timer_token(stream: usize, epoch: u32) -> u64 {
    ((stream as u64) << 32) | epoch as u64
}

/// Worker timer token for the scripted departure (never collides with
/// `timer_token`: that would need 2³² streams).
const DEPART_TOKEN: u64 = u64::MAX;
/// Aggregator timer token for the eviction sweep (the aggregator arms
/// no other timers).
const SWEEP_TOKEN: u64 = u64::MAX;

impl RecWorker {
    /// RTO to arm for the next packet to `shard` (adaptive or fixed),
    /// recorded into the `core.sim_recovery.rto` histogram (µs).
    fn next_rto(&mut self, shard: usize) -> SimTime {
        let rto = if self.rto_cfg.adaptive {
            SimTime::from_nanos(self.rtt[shard].next_rto().as_nanos() as u64)
        } else {
            self.rto_cfg.initial
        };
        self.counters.rto.record(rto.as_nanos() / 1_000);
        rto
    }

    fn send(&mut self, ctx: &mut Ctx<RecMsg>, g: usize, entries: Vec<SimEntry>) {
        let bytes = msg_bytes(self.cfg.stream_id, &entries);
        let shard_idx = self.cfg.shard_of_stream(g);
        let shard = self.shards[shard_idx];
        let now = ctx.now();
        {
            let state = self.streams[g].as_mut().expect("stream");
            if let Some(first) = entries.first() {
                self.flight.record_at(
                    now.as_nanos(),
                    FlightEventKind::PacketTx,
                    0,
                    first.block as u64,
                    shard_idx as u16,
                    self.wid as u16,
                    bytes as u64,
                );
            }
            ctx.send(
                shard,
                RecMsg::Data {
                    stream: g,
                    ver: state.ver,
                    wid: self.wid,
                    epoch: self.epoch,
                    entries: entries.clone(),
                },
                bytes,
            );
            state.outstanding = Some(entries);
            state.timer_epoch += 1;
            state.sent_at = now;
            state.retransmitted = false;
            state.retx = 0;
        }
        let rto = self.next_rto(shard_idx);
        let state = self.streams[g].as_mut().expect("stream");
        ctx.set_timer(rto, timer_token(g, state.timer_epoch));
    }
}

impl Process<RecMsg> for RecWorker {
    fn on_start(&mut self, ctx: &mut Ctx<RecMsg>) {
        self.flight.record_at(
            ctx.now().as_nanos(),
            FlightEventKind::RoundStart,
            0,
            NO_BLOCK,
            0,
            self.wid as u16,
            0,
        );
        let layout = self.layout;
        let skip = self.cfg.skip_zero_blocks;
        self.streams = (0..layout.total_streams()).map(|_| None).collect();
        for g in layout.active_streams() {
            let mut cols: Vec<Option<WCol>> = Vec::with_capacity(layout.width());
            let mut entries = Vec::new();
            let mut remaining = 0;
            for c in 0..layout.width() {
                match layout.first_block(g, c) {
                    Some(b0) => {
                        let my_next = layout.next_block(&self.bitmap, g, c, Some(b0), skip);
                        entries.push(SimEntry {
                            block: b0,
                            col: c,
                            next: my_next,
                            values: layout.block_range(b0).len(),
                        });
                        cols.push(Some(WCol {
                            my_next,
                            done: false,
                        }));
                        remaining += 1;
                    }
                    None => cols.push(None),
                }
            }
            self.streams[g] = Some(WStream {
                cols,
                remaining,
                ver: 0,
                outstanding: None,
                timer_epoch: 0,
                sent_at: SimTime::ZERO,
                retransmitted: false,
                retx: 0,
            });
            self.pending += 1;
            self.send(ctx, g, entries);
        }
        if let Some(t) = self.depart_at {
            ctx.set_timer(t, DEPART_TOKEN);
        }
        if self.pending == 0 {
            ctx.halt();
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<RecMsg>, _from: ActorId, msg: RecMsg) {
        let RecMsg::Result {
            stream: g,
            ver,
            epoch,
            entries,
        } = msg
        else {
            panic!("worker got non-result");
        };
        if self.failed || self.departed {
            return;
        }
        if epoch_before(self.epoch, epoch) {
            // The group's membership moved on (an eviction happened):
            // adopt the epoch, mirroring the live worker.
            self.epoch = epoch;
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::EpochChange,
                0,
                NO_BLOCK,
                self.cfg.shard_of_stream(g) as u16,
                self.wid as u16,
                epoch as u64,
            );
        }
        let layout = self.layout;
        let skip = self.cfg.skip_zero_blocks;
        let now = ctx.now();
        let Some(state) = self.streams[g].as_mut() else {
            // Stream already finished; stale retransmission.
            self.counters.stale_results_ignored.inc();
            return;
        };
        if ver != state.ver {
            // Duplicate of a processed phase.
            self.counters.stale_results_ignored.inc();
            return;
        }
        self.flight.record_at(
            now.as_nanos(),
            FlightEventKind::ResultRx,
            0,
            NO_BLOCK,
            self.cfg.shard_of_stream(g) as u16,
            self.wid as u16,
            entries.len() as u64,
        );
        if self.rto_cfg.adaptive {
            let shard = self.cfg.shard_of_stream(g);
            if state.outstanding.is_some() && !state.retransmitted {
                let rtt =
                    Duration::from_nanos(now.as_nanos().saturating_sub(state.sent_at.as_nanos()));
                self.rtt[shard].sample(rtt);
            } else {
                // Karn's rule: ambiguous answer, reset backoff only.
                self.rtt[shard].ack();
            }
        }
        // Phase advances; invalidate the outstanding packet and timer.
        state.ver ^= 1;
        state.outstanding = None;
        state.timer_epoch += 1;
        let mut reply = Vec::new();
        for e in &entries {
            let cs = state.cols[e.col].as_mut().expect("column");
            if cs.done {
                continue;
            }
            let requested = e.next;
            if requested == INFINITY_BLOCK {
                cs.done = true;
                state.remaining -= 1;
                continue;
            }
            if cs.my_next == requested {
                let new_next = layout.next_block(&self.bitmap, g, e.col, Some(requested), skip);
                reply.push(SimEntry {
                    block: requested,
                    col: e.col,
                    next: new_next,
                    values: layout.block_range(requested).len(),
                });
                cs.my_next = new_next;
            } else {
                reply.push(SimEntry {
                    block: requested,
                    col: e.col,
                    next: cs.my_next,
                    values: 0, // ack
                });
            }
        }
        if state.remaining == 0 {
            debug_assert!(reply.is_empty());
            self.streams[g] = None;
            self.pending -= 1;
            if self.pending == 0 {
                self.flight.record_at(
                    ctx.now().as_nanos(),
                    FlightEventKind::RoundEnd,
                    0,
                    NO_BLOCK,
                    0,
                    self.wid as u16,
                    0,
                );
                ctx.halt();
            }
        } else {
            self.send(ctx, g, reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<RecMsg>, token: u64) {
        if self.failed || self.departed {
            return;
        }
        if token == DEPART_TOKEN {
            // Scripted crash: go permanently silent. The aggregator
            // will evict this worker once its silence exceeds the
            // membership plan's eviction timeout.
            self.departed = true;
            ctx.halt();
            return;
        }
        self.counters.timer_fires.inc();
        let g = (token >> 32) as usize;
        let epoch = token as u32;
        let shard_idx = self.cfg.shard_of_stream(g);
        let shard = self.shards[shard_idx];
        let Some(state) = self.streams.get_mut(g).and_then(|s| s.as_mut()) else {
            return;
        };
        if state.timer_epoch != epoch {
            return; // stale timer
        }
        let Some(entries) = state.outstanding.clone() else {
            return;
        };
        if state.retx >= self.rto_cfg.max_retransmits {
            // Retry budget exhausted: the shard is unreachable. Halt as
            // failed so the simulation drains instead of re-arming
            // timers forever.
            self.failed = true;
            self.counters.peer_unresponsive.inc();
            self.failed_sink
                .lock()
                .expect("failed sink poisoned")
                .push(self.wid);
            ctx.halt();
            return;
        }
        if self.rto_cfg.adaptive {
            self.rtt[shard_idx].on_timeout();
            self.counters.backoffs.inc();
        }
        state.retx += 1;
        state.retransmitted = true;
        // Retransmit and re-arm.
        self.retransmissions += 1;
        self.counters.retransmissions.inc();
        let now = ctx.now().as_nanos();
        self.flight.record_at(
            now,
            FlightEventKind::RtoFire,
            0,
            NO_BLOCK,
            shard_idx as u16,
            self.wid as u16,
            now.saturating_sub(state.sent_at.as_nanos()),
        );
        self.flight.record_at(
            now,
            FlightEventKind::Retransmit,
            0,
            NO_BLOCK,
            shard_idx as u16,
            self.wid as u16,
            state.retx as u64,
        );
        // Extra PacketTx so the aggregator's eventual rx pairs with this
        // resend, not the lost original.
        if let Some(first) = entries.first() {
            self.flight.record_at(
                now,
                FlightEventKind::PacketTx,
                0,
                first.block as u64,
                shard_idx as u16,
                self.wid as u16,
                msg_bytes(self.cfg.stream_id, &entries) as u64,
            );
        }
        ctx.send(
            shard,
            RecMsg::Data {
                stream: g,
                ver: state.ver,
                wid: self.wid,
                epoch: self.epoch,
                entries: entries.clone(),
            },
            msg_bytes(self.cfg.stream_id, &entries),
        );
        state.timer_epoch += 1;
        let epoch = state.timer_epoch;
        let rto = self.next_rto(shard_idx);
        ctx.set_timer(rto, timer_token(g, epoch));
    }
}

#[derive(Clone)]
struct ColPhase {
    block: Option<BlockIdx>,
    values: usize,
    min_next: i64,
}

impl ColPhase {
    fn fresh() -> Self {
        ColPhase {
            block: None,
            values: 0,
            min_next: i64::MAX,
        }
    }
}

struct VSlot {
    cols: [Vec<ColPhase>; 2],
    seen: [Vec<bool>; 2],
    count: [usize; 2],
    result: [Option<Vec<SimEntry>>; 2],
}

struct RecAgg {
    cfg: OmniConfig,
    layout: StreamLayout,
    shard: usize,
    workers: Vec<ActorId>,
    slots: Vec<Option<VSlot>>,
    counters: RecCounters,
    /// Flight lane recording simulated-time protocol events.
    flight: FlightLane,
    /// Current membership epoch; bumped on every eviction.
    epoch: u8,
    /// Workers evicted for simulated-time silence.
    evicted: Vec<bool>,
    /// Last simulated time each worker was heard from.
    last_heard: Vec<SimTime>,
    /// Whether any phase is in flight (mirrors the live engine's
    /// idle→busy liveness-clock refresh).
    busy: bool,
    /// Eviction threshold; `None` disables the sweep entirely (the
    /// pre-membership behavior, and the default for all entry points
    /// without a [`SimMembership`] plan).
    eviction_timeout: Option<SimTime>,
}

impl RecAgg {
    fn waiting_on(&self, w: usize) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|slot| (0..2).any(|v| slot.count[v] > 0 && !slot.seen[v][w]))
    }

    fn fully_idle(&self) -> bool {
        self.slots
            .iter()
            .flatten()
            .all(|slot| slot.count[0] == 0 && slot.count[1] == 0)
    }

    /// Contributions version `v` of slot `g` needs: all workers minus
    /// the evicted ones that have not already contributed.
    fn needed(&self, g: usize, v: usize) -> usize {
        let slot = self.slots[g].as_ref().expect("owned stream");
        let missing_evicted = (0..self.cfg.num_workers)
            .filter(|&w| self.evicted[w] && !slot.seen[v][w])
            .count();
        self.cfg.num_workers - missing_evicted
    }

    fn complete_if_ready(&mut self, ctx: &mut Ctx<RecMsg>, g: usize, v: usize) {
        let n = self.cfg.num_workers;
        let needed = self.needed(g, v);
        let slot = self.slots[g].as_mut().expect("owned stream");
        if slot.count[v] == 0 || slot.count[v] < needed {
            return;
        }
        slot.count[v] = 0;
        let mut result = Vec::new();
        for (c, cp) in slot.cols[v].iter().enumerate() {
            let Some(block) = cp.block else { continue };
            let min_next = if cp.min_next == i64::MAX || cp.min_next == INFINITY_BLOCK as i64 {
                INFINITY_BLOCK
            } else {
                cp.min_next as BlockIdx
            };
            result.push(SimEntry {
                block,
                col: c,
                next: min_next,
                values: cp.values,
            });
        }
        // Forget evicted workers' seen bits so the next phase of this
        // version does not count them as pending contributors.
        for w in 0..n {
            if self.evicted[w] {
                slot.seen[v][w] = false;
            }
        }
        let bytes = msg_bytes(self.cfg.stream_id, &result);
        if let Some(first) = result.first() {
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::ResultTx,
                0,
                first.block as u64,
                self.shard as u16,
                u16::MAX,
                result.len() as u64,
            );
        }
        for (w, actor) in self.workers.iter().enumerate() {
            if self.evicted[w] {
                continue;
            }
            ctx.send(
                *actor,
                RecMsg::Result {
                    stream: g,
                    ver: v as u8,
                    epoch: self.epoch,
                    entries: result.clone(),
                },
                bytes,
            );
        }
        self.slots[g].as_mut().expect("owned stream").result[v] = Some(result);
        if self.fully_idle() {
            self.busy = false;
        }
    }
}

impl Process<RecMsg> for RecAgg {
    fn on_start(&mut self, _ctx: &mut Ctx<RecMsg>) {
        let layout = self.layout;
        let n = self.cfg.num_workers;
        let width = layout.width();
        self.slots = (0..layout.total_streams())
            .map(|g| {
                (self.cfg.shard_of_stream(g) == self.shard && layout.first_block(g, 0).is_some())
                    .then(|| VSlot {
                        cols: [
                            vec![ColPhase::fresh(); width],
                            vec![ColPhase::fresh(); width],
                        ],
                        seen: [vec![false; n], vec![false; n]],
                        count: [0, 0],
                        result: [None, None],
                    })
            })
            .collect();
        self.evicted = vec![false; n];
        self.last_heard = vec![SimTime::ZERO; n];
        // Never halts: stays able to retransmit results. The run ends
        // when the queue drains.
    }

    fn on_message(&mut self, ctx: &mut Ctx<RecMsg>, _from: ActorId, msg: RecMsg) {
        let RecMsg::Data {
            stream: g,
            ver,
            wid,
            epoch: _,
            entries,
        } = msg
        else {
            panic!("aggregator got non-data");
        };
        let v = (ver & 1) as usize;
        if self.evicted[wid] {
            // Zombie: in-flight packets from an evicted worker. Its
            // phase accounting was renormalized without it.
            return;
        }
        let now = ctx.now();
        self.last_heard[wid] = now;
        if !self.busy {
            // Idle→busy edge: a new round starts. Restart every
            // member's liveness clock (silence between rounds must not
            // count) and arm the eviction sweep.
            self.busy = true;
            for t in self.last_heard.iter_mut() {
                *t = now;
            }
            if let Some(timeout) = self.eviction_timeout {
                let tick = SimTime::from_nanos((timeout.as_nanos() / 4).max(1_000));
                ctx.set_timer(tick, SWEEP_TOKEN);
            }
        }
        // Keyed by the first entry's block, mirroring the sender's
        // PacketTx so the reconstructor pairs tx with rx.
        if let Some(first) = entries.first() {
            self.flight.record_at(
                ctx.now().as_nanos(),
                FlightEventKind::PacketRx,
                0,
                first.block as u64,
                self.shard as u16,
                wid as u16,
                entries.len() as u64,
            );
        }
        let slot = self.slots[g].as_mut().expect("owned stream");

        if slot.seen[v][wid] {
            // Duplicate: if the phase completed, the worker missed the
            // result — unicast it back.
            self.counters.duplicates_ignored.inc();
            if slot.count[v] == 0 {
                if let Some(result) = slot.result[v].clone() {
                    self.counters.result_retransmissions.inc();
                    let bytes = msg_bytes(self.cfg.stream_id, &result);
                    ctx.send(
                        self.workers[wid],
                        RecMsg::Result {
                            stream: g,
                            ver: v as u8,
                            epoch: self.epoch,
                            entries: result,
                        },
                        bytes,
                    );
                }
            }
            // Mirror the live engine: a trailing duplicate of a
            // completed phase opened no work, so the idle→busy edge
            // above was spurious — clear it, or the armed eviction
            // sweep re-arms forever and the run never drains.
            if self.busy && self.fully_idle() {
                self.busy = false;
            }
            return;
        }
        slot.seen[v][wid] = true;
        slot.seen[v ^ 1][wid] = false;
        slot.count[v] += 1;
        if slot.count[v] == 1 {
            for col in slot.cols[v].iter_mut() {
                *col = ColPhase::fresh();
            }
            slot.result[v] = None;
        }
        for e in &entries {
            let cp = &mut slot.cols[v][e.col];
            // Mirror the live engine: acks record the requested block
            // too, so an all-ack phase (evicted min_next owner) still
            // emits a chain-advancing result entry.
            debug_assert!(cp.block.is_none() || cp.block == Some(e.block));
            cp.block = Some(e.block);
            if e.values > 0 {
                cp.values = e.values;
            }
            cp.min_next = cp.min_next.min(if e.next == INFINITY_BLOCK {
                INFINITY_BLOCK as i64
            } else {
                e.next as i64
            });
        }
        self.complete_if_ready(ctx, g, v);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<RecMsg>, token: u64) {
        debug_assert_eq!(token, SWEEP_TOKEN);
        let Some(timeout) = self.eviction_timeout else {
            return;
        };
        if !self.busy {
            // Fully idle: nothing is owed, so nobody can be evicted.
            // Not re-arming lets the event queue drain; the next
            // idle→busy edge re-arms the sweep.
            return;
        }
        let now = ctx.now();
        for w in 0..self.cfg.num_workers {
            if self.evicted[w] || !self.waiting_on(w) {
                continue;
            }
            let idle =
                SimTime::from_nanos(now.as_nanos().saturating_sub(self.last_heard[w].as_nanos()));
            if idle <= timeout {
                continue;
            }
            self.evicted[w] = true;
            self.flight.record_at(
                now.as_nanos(),
                FlightEventKind::Eviction,
                0,
                NO_BLOCK,
                self.shard as u16,
                w as u16,
                idle.as_nanos(),
            );
            // Eviction is a membership change: bump the epoch so the
            // survivors' flight lanes record the same `EpochChange`
            // sequence a live chaos run would.
            self.epoch = self.epoch.wrapping_add(1);
            self.flight.record_at(
                now.as_nanos(),
                FlightEventKind::EpochChange,
                0,
                NO_BLOCK,
                self.shard as u16,
                w as u16,
                self.epoch as u64,
            );
            // Renormalize in-flight phases without the evicted worker;
            // idle versions just forget its contribution marker.
            for g in 0..self.slots.len() {
                if self.slots[g].is_none() {
                    continue;
                }
                for v in 0..2 {
                    let slot = self.slots[g].as_mut().expect("owned stream");
                    if slot.count[v] == 0 {
                        slot.seen[v][w] = false;
                    } else {
                        self.complete_if_ready(ctx, g, v);
                    }
                }
            }
        }
        if self.busy {
            let tick = SimTime::from_nanos((timeout.as_nanos() / 4).max(1_000));
            ctx.set_timer(tick, SWEEP_TOKEN);
        }
    }
}

/// Simulates one Algorithm 2 AllReduce over a lossy fabric.
///
/// `loss` is the per-packet drop probability applied on every NIC;
/// `timeout` the workers' (fixed) retransmission timeout; `seed` drives
/// the loss process (runs are deterministic per seed). For the adaptive
/// RTO policy use [`simulate_recovery_allreduce_with_telemetry`] with a
/// [`SimRtoConfig`].
pub fn simulate_recovery_allreduce(
    cfg: &OmniConfig,
    worker_nic: NicConfig,
    agg_nic: NicConfig,
    loss: f64,
    timeout: SimTime,
    bitmaps: &[NonZeroBitmap],
    seed: u64,
) -> SimOutcome {
    simulate_recovery_allreduce_with_telemetry(
        cfg,
        worker_nic,
        agg_nic,
        loss,
        SimRtoConfig::fixed(timeout),
        bitmaps,
        seed,
        None,
    )
}

/// Like [`simulate_recovery_allreduce`], but takes the full
/// retransmission policy ([`SimRtoConfig`]) and reports loss-path
/// counters (`core.sim_recovery.*`) and fabric counters (`simnet.*`)
/// into `telemetry` when one is given.
#[allow(clippy::too_many_arguments)]
pub fn simulate_recovery_allreduce_with_telemetry(
    cfg: &OmniConfig,
    worker_nic: NicConfig,
    agg_nic: NicConfig,
    loss: f64,
    rto: SimRtoConfig,
    bitmaps: &[NonZeroBitmap],
    seed: u64,
    telemetry: Option<&Telemetry>,
) -> SimOutcome {
    simulate_recovery_allreduce_with_membership(
        cfg, worker_nic, agg_nic, loss, rto, bitmaps, seed, 1, None, telemetry,
    )
}

/// Like [`simulate_recovery_allreduce_with_telemetry`], with a scripted
/// [`SimMembership`] plan: departed workers go silent at simulated
/// times and the aggregator evicts them, completing the collective
/// degraded — the simulated mirror of the live engine's elastic
/// membership, emitting the same `Eviction`/`EpochChange` flight
/// events. Without a plan this is byte-for-byte the plain simulation.
/// `threads` selects the simnet engine's thread count (1 = sequential
/// drain; >1 = conservative parallel windows with identical output).
///
/// `completion` covers the *surviving* workers only; departed workers
/// halt at their scripted time and are excluded.
#[allow(clippy::too_many_arguments)]
pub fn simulate_recovery_allreduce_with_membership(
    cfg: &OmniConfig,
    worker_nic: NicConfig,
    agg_nic: NicConfig,
    loss: f64,
    rto: SimRtoConfig,
    bitmaps: &[NonZeroBitmap],
    seed: u64,
    threads: usize,
    membership: Option<&SimMembership>,
    telemetry: Option<&Telemetry>,
) -> SimOutcome {
    cfg.validate();
    if let Some(m) = membership {
        assert_eq!(m.depart_at.len(), cfg.num_workers, "plan/worker mismatch");
    }
    assert_eq!(bitmaps.len(), cfg.num_workers);
    let layout = StreamLayout::new(
        cfg.block_spec(),
        cfg.fusion,
        cfg.total_streams(),
        cfg.tensor_len,
    );
    let mut sim: Simulator<RecMsg> = Simulator::new(seed);
    sim.set_threads(threads.max(1));
    // Debug belt: cap the event budget from the environment so a
    // protocol livelock panics with the simulated time instead of
    // spinning silently (pair with OMNIREDUCE_SIM_TRACE to see the
    // repeating cycle).
    if let Ok(v) = std::env::var("OMNIREDUCE_SIM_MAX_EVENTS") {
        if let Ok(n) = v.parse() {
            sim.set_max_events(n);
        }
    }
    if let Some(t) = telemetry {
        sim.attach_telemetry(t.clone());
    }
    let counters = RecCounters::new(telemetry);
    let worker_nics: Vec<_> = (0..cfg.num_workers)
        .map(|_| sim.add_nic(worker_nic.with_loss(loss)))
        .collect();
    let shard_nics: Vec<_> = (0..cfg.num_aggregators)
        .map(|_| sim.add_nic(agg_nic.with_loss(loss)))
        .collect();
    let worker_ids: Vec<ActorId> = (0..cfg.num_workers).map(ActorId).collect();
    let shard_ids: Vec<ActorId> = (0..cfg.num_aggregators)
        .map(|a| ActorId(cfg.num_workers + a))
        .collect();
    let failed_sink: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    // Flight lanes carry *simulated* nanoseconds (`record_at`), so a
    // recording from a lossy sim run feeds the same reconstructor as a
    // live chaos run.
    let flight_lane = |name: &str, role, actor| match telemetry {
        Some(t) => t.flight().lane(name, role, actor),
        None => FlightLane::disabled(),
    };
    for (w, bm) in bitmaps.iter().enumerate() {
        sim.add_actor(
            worker_nics[w],
            Box::new(RecWorker {
                cfg: cfg.clone(),
                layout,
                wid: w,
                bitmap: Arc::new(bm.clone()),
                shards: shard_ids.clone(),
                rto_cfg: rto,
                rtt: (0..cfg.num_aggregators)
                    .map(|a| {
                        RttEstimator::new(
                            Duration::from_nanos(rto.initial.as_nanos()),
                            Duration::from_nanos(rto.min.as_nanos()),
                            Duration::from_nanos(rto.max.as_nanos()),
                            // Deterministic per-(worker, shard) jitter.
                            0x9E37_79B9_7F4A_7C15 ^ ((w as u64) << 16) ^ a as u64,
                        )
                    })
                    .collect(),
                streams: Vec::new(),
                pending: 0,
                retransmissions: 0,
                failed: false,
                epoch: 0,
                depart_at: membership.and_then(|m| m.depart_at[w]),
                departed: false,
                failed_sink: failed_sink.clone(),
                counters: counters.clone(),
                flight: flight_lane(&format!("worker{w}"), LaneRole::Worker, w as u16),
            }),
        );
    }
    for (a, nic) in shard_nics.iter().enumerate() {
        sim.add_actor(
            *nic,
            Box::new(RecAgg {
                cfg: cfg.clone(),
                layout,
                shard: a,
                workers: worker_ids.clone(),
                slots: Vec::new(),
                counters: counters.clone(),
                flight: flight_lane(&format!("agg{a}"), LaneRole::Aggregator, a as u16),
                epoch: 0,
                evicted: Vec::new(),
                last_heard: Vec::new(),
                busy: false,
                eviction_timeout: membership.map(|m| m.eviction_timeout),
            }),
        );
    }
    let report = sim.run();
    let completion = worker_ids
        .iter()
        .filter(|w| membership.is_none_or(|m| m.depart_at[w.0].is_none()))
        .map(|w| report.finished_at[w.0].expect("worker finished"))
        .max()
        .unwrap_or(SimTime::ZERO);
    let worker_tx_bytes = (0..cfg.num_workers)
        .map(|w| report.nic_stats[w].bytes_tx)
        .sum();
    let shard_rx_bytes = shard_nics
        .iter()
        .map(|n| report.nic_stats[n.0].bytes_rx)
        .collect();
    let mut failed_workers = failed_sink.lock().expect("failed sink poisoned").clone();
    failed_workers.sort_unstable();
    SimOutcome {
        completion,
        report,
        worker_tx_bytes,
        shard_rx_bytes,
        failed_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::bitmaps_from_sets;
    use omnireduce_simnet::Bandwidth;
    use omnireduce_tensor::gen::{worker_block_sets, OverlapMode};

    fn setup(n: usize, len: usize, sparsity: f64) -> (OmniConfig, Vec<NonZeroBitmap>) {
        let cfg = OmniConfig::new(n, len)
            .with_block_size(256)
            .with_fusion(4)
            .with_streams(8)
            .with_aggregators(n);
        let nblocks = cfg.block_spec().block_count(len);
        let sets = worker_block_sets(n, nblocks, sparsity, OverlapMode::Random, 3);
        (cfg, bitmaps_from_sets(&sets))
    }

    fn nic() -> NicConfig {
        NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(15))
    }

    fn run(loss: f64, seed: u64) -> SimOutcome {
        let (cfg, bms) = setup(4, 1 << 20, 0.5);
        simulate_recovery_allreduce(
            &cfg,
            nic(),
            nic(),
            loss,
            SimTime::from_micros(500),
            &bms,
            seed,
        )
    }

    #[test]
    fn lossless_recovery_close_to_basic_protocol() {
        // With zero loss, the recovery protocol costs only the ack
        // packets relative to the lossless engine — same order of time.
        let (cfg, bms) = setup(4, 1 << 20, 0.5);
        let spec = crate::sim::SimSpec::dedicated(
            cfg.clone(),
            Bandwidth::gbps(10.0),
            SimTime::from_micros(15),
        );
        let basic = crate::sim::simulate_allreduce(&spec, &bms).completion;
        let rec = run(0.0, 1).completion;
        let ratio = rec.as_secs_f64() / basic.as_secs_f64();
        assert!(
            (0.8..2.0).contains(&ratio),
            "recovery {rec} vs basic {basic} (ratio {ratio})"
        );
    }

    #[test]
    fn completes_under_loss() {
        for loss in [0.0001, 0.001, 0.01] {
            let out = run(loss, 7);
            assert!(out.completion > SimTime::ZERO, "loss {loss}");
        }
    }

    #[test]
    fn loss_increases_completion_time() {
        let clean = run(0.0, 5).completion;
        let lossy = run(0.01, 5).completion;
        assert!(
            lossy > clean,
            "1% loss ({lossy}) should exceed lossless ({clean})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(0.005, 9).completion, run(0.005, 9).completion);
    }

    #[test]
    fn departed_worker_is_evicted_and_sim_completes_degraded() {
        let (cfg, bms) = setup(4, 1 << 18, 0.5);
        // Worker 3 crashes mid-stream (the clean run takes ~0.9 ms).
        let plan = SimMembership::stable(4, SimTime::from_micros(1_000))
            .depart(3, SimTime::from_micros(200));
        let run = |seed| {
            let telemetry = Telemetry::with_observability(0, 1 << 16);
            let out = simulate_recovery_allreduce_with_membership(
                &cfg,
                nic(),
                nic(),
                0.0,
                SimRtoConfig::fixed(SimTime::from_micros(500)),
                &bms,
                seed,
                1,
                Some(&plan),
                Some(&telemetry),
            );
            (out, telemetry.flight().snapshot())
        };
        let (out, rec) = run(3);
        // Survivors stall on the dead worker until the eviction fires,
        // then complete degraded: strictly slower than the clean run,
        // and no survivor exhausts its retry budget.
        let clean = simulate_recovery_allreduce_with_membership(
            &cfg,
            nic(),
            nic(),
            0.0,
            SimRtoConfig::fixed(SimTime::from_micros(500)),
            &bms,
            3,
            1,
            None,
            None,
        );
        assert!(
            out.completion > clean.completion,
            "degraded {} vs clean {}",
            out.completion,
            clean.completion
        );
        assert!(out.failed_workers.is_empty(), "{:?}", out.failed_workers);
        // The simulated trace carries the same membership events a live
        // chaos run would: the eviction and its epoch bump.
        let count = |kind: FlightEventKind| {
            rec.lanes
                .iter()
                .flat_map(|l| l.events.iter())
                .filter(|e| e.kind == kind)
                .count()
        };
        // Every shard waiting on the departed worker evicts it
        // independently (per-shard membership, as in the live engine).
        let evictions = count(FlightEventKind::Eviction);
        assert!(
            (1..=cfg.num_aggregators).contains(&evictions),
            "evictions: {evictions}"
        );
        assert!(
            count(FlightEventKind::EpochChange) >= evictions,
            "no epoch change recorded"
        );
        // Deterministic per seed, membership events included.
        let (out2, rec2) = run(3);
        assert_eq!(out.completion, out2.completion);
        assert_eq!(rec.total_events(), rec2.total_events());
    }

    #[test]
    fn stable_membership_plan_matches_plain_simulation() {
        let (cfg, bms) = setup(4, 1 << 18, 0.5);
        let go = |plan: Option<&SimMembership>| {
            simulate_recovery_allreduce_with_membership(
                &cfg,
                nic(),
                nic(),
                0.002,
                SimRtoConfig::fixed(SimTime::from_micros(500)),
                &bms,
                21,
                1,
                plan,
                None,
            )
        };
        // An armed eviction sweep with nobody departing must not change
        // the protocol: same completion time to the nanosecond.
        let plan = SimMembership::stable(4, SimTime::from_micros(50_000));
        assert_eq!(go(None).completion, go(Some(&plan)).completion);
    }

    /// Regression: with an armed eviction sweep, a retransmission
    /// duplicate that lands *after* its phase completed used to flip
    /// the shard back to busy with nothing in flight — no completion
    /// ever cleared the flag again, the sweep timer re-armed forever
    /// and the event queue never drained. This exact shape (4 workers,
    /// 2^12 elements, loss 0.002, seed 21: worker 1's stream-3 packet
    /// drops, everyone retransmits at the fixed RTO, workers 2 and 3's
    /// duplicates trail the completion) livelocked before the fix.
    #[test]
    fn trailing_duplicate_does_not_wedge_the_armed_sweep() {
        let (cfg, bms) = setup(4, 1 << 12, 0.5);
        let plan = SimMembership::stable(4, SimTime::from_micros(50_000));
        let out = simulate_recovery_allreduce_with_membership(
            &cfg,
            nic(),
            nic(),
            0.002,
            SimRtoConfig::fixed(SimTime::from_micros(500)),
            &bms,
            21,
            1,
            Some(&plan),
            None,
        );
        assert!(out.failed_workers.is_empty());
        // The whole run is a few hundred events; a wedged sweep burns
        // the full 2-billion budget instead.
        assert!(out.report.events < 10_000, "events: {}", out.report.events);
    }

    #[test]
    fn heavy_loss_still_terminates() {
        let (cfg, bms) = setup(2, 1 << 16, 0.5);
        let out = simulate_recovery_allreduce(
            &cfg,
            nic(),
            nic(),
            0.10,
            SimTime::from_micros(300),
            &bms,
            11,
        );
        assert!(out.completion > SimTime::ZERO);
    }
}
