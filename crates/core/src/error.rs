//! Typed failure vocabulary for the recovery engines.
//!
//! The lossless engines run over reliable transports and only ever see
//! [`TransportError`]; the Algorithm 2 recovery engines own their
//! reliability and therefore own their *failure semantics* too. The
//! robustness layer (DESIGN.md "Fault model & degradation") bounds every
//! wait: a worker that exhausts its retry budget returns
//! [`ProtocolError::PeerUnresponsive`] instead of retransmitting into a
//! dead aggregator forever, and an aggregator in
//! [`DegradedMode::Abort`](crate::config::DegradedMode::Abort) surfaces
//! an evicted worker as [`ProtocolError::WorkerEvicted`].

use std::time::Duration;

use omnireduce_transport::TransportError;

/// Errors surfaced by the recovery protocol engines.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (or was torn down).
    Transport(TransportError),
    /// The retry budget for one slot was exhausted: `retransmits`
    /// consecutive retransmissions to `peer` went unanswered over
    /// `elapsed`. The peer is presumed crashed or partitioned.
    PeerUnresponsive {
        /// Transport node id of the unresponsive peer.
        peer: u16,
        /// Stream whose slot exhausted the budget.
        stream: usize,
        /// Consecutive unanswered retransmissions of that slot.
        retransmits: u32,
        /// Wall time from the first (re)transmission of the slot until
        /// the budget ran out.
        elapsed: Duration,
    },
    /// The aggregator evicted worker `worker` after hearing nothing for
    /// `idle` while still needing its contribution, and the configured
    /// degraded mode was `Abort`.
    WorkerEvicted {
        /// Worker index (not transport node id) of the evicted worker.
        worker: usize,
        /// How long the aggregator waited before evicting.
        idle: Duration,
    },
    /// This worker learned (from an unsolicited `Welcome` under
    /// [`DegradedMode::Rejoin`](crate::config::DegradedMode::Rejoin))
    /// that the aggregator evicted it: the group has moved on to
    /// `epoch`. The worker may `join()` again and retry the collective.
    Evicted {
        /// Worker index of this (evicted) worker.
        worker: usize,
        /// The membership epoch the group is now at.
        epoch: u8,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Transport(e) => write!(f, "transport error: {e}"),
            ProtocolError::PeerUnresponsive {
                peer,
                stream,
                retransmits,
                elapsed,
            } => write!(
                f,
                "peer {peer} unresponsive: {retransmits} consecutive retransmissions \
                 of stream {stream} unanswered over {elapsed:?}"
            ),
            ProtocolError::WorkerEvicted { worker, idle } => write!(
                f,
                "worker {worker} evicted after {idle:?} without progress \
                 (degraded mode: abort)"
            ),
            ProtocolError::Evicted { worker, epoch } => write!(
                f,
                "worker {worker} was evicted; the group is now at \
                 membership epoch {epoch} (rejoin to continue)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        ProtocolError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::PeerUnresponsive {
            peer: 8,
            stream: 3,
            retransmits: 10,
            elapsed: Duration::from_millis(640),
        };
        let s = e.to_string();
        assert!(s.contains("peer 8"), "{s}");
        assert!(s.contains("10 consecutive"), "{s}");

        let e = ProtocolError::WorkerEvicted {
            worker: 2,
            idle: Duration::from_secs(2),
        };
        assert!(e.to_string().contains("worker 2"), "{e}");

        let e = ProtocolError::Evicted {
            worker: 1,
            epoch: 3,
        };
        let s = e.to_string();
        assert!(s.contains("worker 1"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");
    }

    #[test]
    fn transport_error_converts() {
        let e: ProtocolError = TransportError::Disconnected.into();
        assert!(matches!(e, ProtocolError::Transport(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
