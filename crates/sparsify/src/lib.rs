//! Block-based gradient sparsification (paper §4).
//!
//! When gradients are not naturally sparse, OmniReduce can manufacture
//! block sparsity: select a subset of blocks, zero the rest, and let the
//! collective skip the zero blocks. This crate implements the paper's
//! four block-based schemes and their element-wise ancestors:
//!
//! * [`BlockRandomK`] — sample `k` blocks uniformly;
//! * [`BlockTopK`] — keep the `k` blocks with the largest ℓ2 norm;
//! * [`BlockTopKRatio`] — keep the `k` blocks with the largest
//!   update-ratio norm (gradient value over parameter value);
//! * [`BlockThreshold`] — keep blocks whose ℓ2 norm exceeds a threshold;
//! * [`RandomK`] / [`TopK`] / [`Threshold`] — the classic element-wise
//!   schemes, for comparison.
//!
//! [`ErrorFeedback`] wraps any compressor with the Karimireddy-style
//! memory that makes δ-compressors converge (the paper's Lemma shows
//! Block Random-k and Block Top-k are δ-compressors with `δ = k/b`;
//! [`Compressor::delta`] exposes the bound and the property tests verify
//! the defining inequality `E‖x − C(x)‖² ≤ (1 − δ)‖x‖²`).

use rand::seq::index::sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use omnireduce_tensor::{BlockSpec, Tensor};

/// A (possibly randomized) gradient compressor: maps a gradient to a
/// same-shaped tensor that is zero outside the selected support.
pub trait Compressor {
    /// Compresses `grad`. `params` holds the current model parameters
    /// (used by update-ratio schemes; pass the model or an empty tensor
    /// when unavailable).
    fn compress(&mut self, grad: &Tensor, params: &Tensor) -> Tensor;

    /// The δ of the δ-compressor bound, when one is known
    /// (`E‖x − C(x)‖² ≤ (1 − δ)‖x‖²`).
    fn delta(&self, grad_len: usize) -> Option<f64> {
        let _ = grad_len;
        None
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn block_count(spec: BlockSpec, len: usize) -> usize {
    spec.block_count(len)
}

fn keep_blocks(grad: &Tensor, spec: BlockSpec, keep: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(grad.len());
    for &b in keep {
        let r = spec.range(b as u32, grad.len());
        out.as_mut_slice()[r.clone()].copy_from_slice(&grad.as_slice()[r]);
    }
    out
}

fn block_l2(grad: &Tensor, spec: BlockSpec, b: usize) -> f64 {
    grad.as_slice()[spec.range(b as u32, grad.len())]
        .iter()
        .map(|v| (*v as f64) * (*v as f64))
        .sum::<f64>()
}

fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    idx.select_nth_unstable_by(k - 1, |a, b| {
        scores[*b].partial_cmp(&scores[*a]).expect("no NaN scores")
    });
    idx.truncate(k);
    idx
}

/// Number of blocks kept for a fraction `k_fraction` of `b` blocks
/// (at least one, so compression never discards everything).
fn k_of(b: usize, k_fraction: f64) -> usize {
    ((b as f64 * k_fraction).round() as usize).clamp(1, b.max(1))
}

/// Block Random-k: keep `k_fraction · b` uniformly sampled blocks.
pub struct BlockRandomK {
    /// Fraction of blocks kept.
    pub k_fraction: f64,
    /// Block partitioning.
    pub spec: BlockSpec,
    rng: ChaCha8Rng,
}

impl BlockRandomK {
    /// Creates the compressor with a deterministic seed.
    pub fn new(k_fraction: f64, spec: BlockSpec, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&k_fraction));
        BlockRandomK {
            k_fraction,
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Compressor for BlockRandomK {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let b = block_count(self.spec, grad.len());
        if b == 0 {
            return grad.clone();
        }
        let k = k_of(b, self.k_fraction);
        let keep = sample(&mut self.rng, b, k).into_vec();
        keep_blocks(grad, self.spec, &keep)
    }

    fn delta(&self, grad_len: usize) -> Option<f64> {
        let b = block_count(self.spec, grad_len);
        if b == 0 {
            return None;
        }
        Some(k_of(b, self.k_fraction) as f64 / b as f64)
    }

    fn name(&self) -> &'static str {
        "block-random-k"
    }
}

/// Block Top-k: keep the `k` blocks with the largest block ℓ2 norm.
pub struct BlockTopK {
    /// Fraction of blocks kept.
    pub k_fraction: f64,
    /// Block partitioning.
    pub spec: BlockSpec,
}

impl BlockTopK {
    /// Creates the compressor.
    pub fn new(k_fraction: f64, spec: BlockSpec) -> Self {
        assert!((0.0..=1.0).contains(&k_fraction));
        BlockTopK { k_fraction, spec }
    }
}

impl Compressor for BlockTopK {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let b = block_count(self.spec, grad.len());
        if b == 0 {
            return grad.clone();
        }
        let scores: Vec<f64> = (0..b).map(|i| block_l2(grad, self.spec, i)).collect();
        let keep = top_k_indices(&scores, k_of(b, self.k_fraction));
        keep_blocks(grad, self.spec, &keep)
    }

    fn delta(&self, grad_len: usize) -> Option<f64> {
        let b = block_count(self.spec, grad_len);
        if b == 0 {
            return None;
        }
        Some(k_of(b, self.k_fraction) as f64 / b as f64)
    }

    fn name(&self) -> &'static str {
        "block-top-k"
    }
}

/// Block Top-k Ratio: score blocks by the ℓ2 norm of the per-parameter
/// update ratio `g_i / θ_i` (paper §4: "the ratio of its gradient value
/// to parameter value"). Parameters near zero are guarded with an ε.
pub struct BlockTopKRatio {
    /// Fraction of blocks kept.
    pub k_fraction: f64,
    /// Block partitioning.
    pub spec: BlockSpec,
    /// Guard added to |θ| in the denominator.
    pub epsilon: f32,
}

impl BlockTopKRatio {
    /// Creates the compressor with the default ε = 1e-8.
    pub fn new(k_fraction: f64, spec: BlockSpec) -> Self {
        assert!((0.0..=1.0).contains(&k_fraction));
        BlockTopKRatio {
            k_fraction,
            spec,
            epsilon: 1e-8,
        }
    }
}

impl Compressor for BlockTopKRatio {
    fn compress(&mut self, grad: &Tensor, params: &Tensor) -> Tensor {
        let b = block_count(self.spec, grad.len());
        if b == 0 {
            return grad.clone();
        }
        assert_eq!(
            params.len(),
            grad.len(),
            "ratio compressor needs parameters"
        );
        let scores: Vec<f64> = (0..b)
            .map(|i| {
                let r = self.spec.range(i as u32, grad.len());
                grad.as_slice()[r.clone()]
                    .iter()
                    .zip(&params.as_slice()[r])
                    .map(|(g, p)| {
                        let ratio = (*g as f64) / (p.abs() as f64 + self.epsilon as f64);
                        ratio * ratio
                    })
                    .sum()
            })
            .collect();
        let keep = top_k_indices(&scores, k_of(b, self.k_fraction));
        keep_blocks(grad, self.spec, &keep)
    }

    fn name(&self) -> &'static str {
        "block-top-k-ratio"
    }
}

/// Block Threshold: keep blocks whose ℓ2 norm exceeds `threshold`
/// (the paper uses 0.1664 for BERT, §6.2.3).
pub struct BlockThreshold {
    /// ℓ2-norm threshold.
    pub threshold: f64,
    /// Block partitioning.
    pub spec: BlockSpec,
}

impl BlockThreshold {
    /// Creates the compressor.
    pub fn new(threshold: f64, spec: BlockSpec) -> Self {
        BlockThreshold { threshold, spec }
    }
}

impl Compressor for BlockThreshold {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let b = block_count(self.spec, grad.len());
        let keep: Vec<usize> = (0..b)
            .filter(|i| block_l2(grad, self.spec, *i).sqrt() > self.threshold)
            .collect();
        keep_blocks(grad, self.spec, &keep)
    }

    fn name(&self) -> &'static str {
        "block-threshold"
    }
}

/// Element-wise Random-k.
pub struct RandomK {
    /// Fraction of elements kept.
    pub k_fraction: f64,
    rng: ChaCha8Rng,
}

impl RandomK {
    /// Creates the compressor with a deterministic seed.
    pub fn new(k_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&k_fraction));
        RandomK {
            k_fraction,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Compressor for RandomK {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let n = grad.len();
        if n == 0 {
            return grad.clone();
        }
        let k = k_of(n, self.k_fraction);
        let mut out = Tensor::zeros(n);
        for i in sample(&mut self.rng, n, k) {
            out[i] = grad[i];
        }
        out
    }

    fn delta(&self, grad_len: usize) -> Option<f64> {
        if grad_len == 0 {
            return None;
        }
        Some(k_of(grad_len, self.k_fraction) as f64 / grad_len as f64)
    }

    fn name(&self) -> &'static str {
        "random-k"
    }
}

/// Element-wise Top-k by magnitude.
pub struct TopK {
    /// Fraction of elements kept.
    pub k_fraction: f64,
}

impl TopK {
    /// Creates the compressor.
    pub fn new(k_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&k_fraction));
        TopK { k_fraction }
    }
}

impl Compressor for TopK {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let n = grad.len();
        if n == 0 {
            return grad.clone();
        }
        let scores: Vec<f64> = grad.as_slice().iter().map(|v| (*v as f64).abs()).collect();
        let keep = top_k_indices(&scores, k_of(n, self.k_fraction));
        let mut out = Tensor::zeros(n);
        for i in keep {
            out[i] = grad[i];
        }
        out
    }

    fn delta(&self, grad_len: usize) -> Option<f64> {
        if grad_len == 0 {
            return None;
        }
        Some(k_of(grad_len, self.k_fraction) as f64 / grad_len as f64)
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

/// Element-wise hard threshold on |g|.
pub struct Threshold {
    /// Magnitude threshold.
    pub threshold: f32,
}

impl Compressor for Threshold {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(grad.len());
        for (i, v) in grad.as_slice().iter().enumerate() {
            if v.abs() > self.threshold {
                out[i] = *v;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// The identity compressor (the "No Compression" baseline of Fig. 11).
pub struct Identity;

impl Compressor for Identity {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        grad.clone()
    }

    fn delta(&self, _grad_len: usize) -> Option<f64> {
        Some(1.0)
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Error feedback (EF-SGD memory): compress `g + e`, remember the
/// residual `e ← (g + e) − C(g + e)`. Theorem 1 of Zheng et al. \[71\]
/// (via the paper's Lemma) guarantees convergence for any δ-compressor
/// wrapped this way.
pub struct ErrorFeedback<C: Compressor> {
    inner: C,
    memory: Option<Tensor>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wraps `inner` with a fresh (zero) memory.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            memory: None,
        }
    }

    /// Current residual norm — a training-health metric.
    pub fn residual_norm(&self) -> f64 {
        self.memory.as_ref().map_or(0.0, |m| m.norm())
    }

    /// The wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Compressor> Compressor for ErrorFeedback<C> {
    fn compress(&mut self, grad: &Tensor, params: &Tensor) -> Tensor {
        let mut corrected = grad.clone();
        if let Some(m) = &self.memory {
            corrected.add_assign(m);
        }
        let compressed = self.inner.compress(&corrected, params);
        // e ← corrected − compressed
        let mut residual = corrected;
        for (r, c) in residual
            .as_mut_slice()
            .iter_mut()
            .zip(compressed.as_slice())
        {
            *r -= *c;
        }
        self.memory = Some(residual);
        compressed
    }

    fn delta(&self, grad_len: usize) -> Option<f64> {
        self.inner.delta(grad_len)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec4() -> BlockSpec {
        BlockSpec::new(4)
    }

    fn grad(n: usize, seed: u64) -> Tensor {
        omnireduce_tensor::gen::element_uniform(n, 0.0, seed)
    }

    fn support_blocks(t: &Tensor, spec: BlockSpec) -> usize {
        spec.nonzero_blocks(t).count()
    }

    #[test]
    fn block_topk_keeps_largest_blocks() {
        // Blocks: [tiny][huge][mid][zero]; keep 2 → huge + mid.
        let mut g = Tensor::zeros(16);
        g.copy_slice_at(0, &[0.01, 0.0, 0.0, 0.0]);
        g.copy_slice_at(4, &[5.0, 5.0, 5.0, 5.0]);
        g.copy_slice_at(8, &[1.0, 0.0, 0.0, 0.0]);
        let mut c = BlockTopK::new(0.5, spec4());
        let out = c.compress(&g, &Tensor::zeros(16));
        assert_eq!(out[4], 5.0);
        assert_eq!(out[8], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn block_randomk_keeps_exactly_k_blocks() {
        let g = grad(64, 1);
        let mut c = BlockRandomK::new(0.25, spec4(), 7);
        let out = c.compress(&g, &Tensor::zeros(64));
        assert_eq!(support_blocks(&out, spec4()), 4); // 16 blocks × 0.25
    }

    #[test]
    fn block_threshold_selects_by_norm() {
        let mut g = Tensor::zeros(8);
        g.copy_slice_at(0, &[3.0, 4.0, 0.0, 0.0]); // norm 5
        g.copy_slice_at(4, &[0.1, 0.0, 0.0, 0.0]); // norm 0.1
        let mut c = BlockThreshold::new(1.0, spec4());
        let out = c.compress(&g, &Tensor::zeros(8));
        assert_eq!(out[0], 3.0);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn ratio_compressor_prefers_small_params() {
        // Same gradient in both blocks, but block 1's params are tiny →
        // larger update ratio → block 1 wins at k=1 block.
        let mut g = Tensor::zeros(8);
        g.copy_slice_at(0, &[1.0, 1.0, 1.0, 1.0]);
        g.copy_slice_at(4, &[1.0, 1.0, 1.0, 1.0]);
        let mut p = Tensor::from_vec(vec![100.0; 8]);
        p.copy_slice_at(4, &[0.1, 0.1, 0.1, 0.1]);
        let mut c = BlockTopKRatio::new(0.5, spec4());
        let out = c.compress(&g, &p);
        assert_eq!(out[4], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn elementwise_topk_keeps_largest() {
        let g = Tensor::from_vec(vec![0.1, -5.0, 3.0, 0.2]);
        let mut c = TopK::new(0.5);
        let out = c.compress(&g, &Tensor::zeros(4));
        assert_eq!(out.as_slice(), &[0.0, -5.0, 3.0, 0.0]);
    }

    #[test]
    fn threshold_elementwise() {
        let g = Tensor::from_vec(vec![0.1, -5.0, 3.0, 0.2]);
        let mut c = Threshold { threshold: 1.0 };
        let out = c.compress(&g, &Tensor::zeros(4));
        assert_eq!(out.as_slice(), &[0.0, -5.0, 3.0, 0.0]);
    }

    #[test]
    fn identity_is_lossless() {
        let g = grad(32, 3);
        let mut c = Identity;
        assert_eq!(c.compress(&g, &Tensor::zeros(32)), g);
        assert_eq!(c.delta(32), Some(1.0));
    }

    #[test]
    fn topk_delta_bound_holds_deterministically() {
        // ‖x − topk(x)‖² ≤ (1 − k/b)‖x‖² for block top-k (Appendix C).
        for seed in 0..20 {
            let g = grad(64, seed);
            let mut c = BlockTopK::new(0.25, spec4());
            let out = c.compress(&g, &Tensor::zeros(64));
            let mut diff = g.clone();
            for (d, o) in diff.as_mut_slice().iter_mut().zip(out.as_slice()) {
                *d -= *o;
            }
            let delta = c.delta(64).unwrap();
            assert!(
                diff.sq_norm() <= (1.0 - delta) * g.sq_norm() + 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn randomk_delta_bound_holds_in_expectation() {
        // E‖x − C(x)‖² = (1 − k/b)‖x‖² for block random-k; check the
        // sample mean over many draws.
        let g = grad(64, 99);
        let mut c = BlockRandomK::new(0.25, spec4(), 5);
        let trials = 3000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let out = c.compress(&g, &Tensor::zeros(64));
            let mut diff = g.clone();
            for (d, o) in diff.as_mut_slice().iter_mut().zip(out.as_slice()) {
                *d -= *o;
            }
            acc += diff.sq_norm();
        }
        let mean = acc / trials as f64;
        let expect = (1.0 - 0.25) * g.sq_norm();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn error_feedback_preserves_mass() {
        // Compressed output + residual = corrected gradient each step, so
        // nothing is ever lost; over steps the memory transmits everything.
        let mut ef = ErrorFeedback::new(BlockTopK::new(0.25, spec4()));
        let g = grad(64, 11);
        let params = Tensor::zeros(64);
        let mut sent = Tensor::zeros(64);
        for _ in 0..50 {
            let out = ef.compress(&g, &params);
            sent.add_assign(&out);
        }
        // After many steps of the same gradient, average sent ≈ g.
        sent.scale(1.0 / 50.0);
        assert!(
            sent.approx_eq(&g, 0.2 * 50f32.sqrt()),
            "EF drifts: diff {}",
            sent.max_abs_diff(&g)
        );
        assert!(ef.residual_norm().is_finite());
    }

    #[test]
    fn error_feedback_single_step_identity() {
        // One step: compressed + residual = gradient exactly.
        let mut ef = ErrorFeedback::new(BlockTopK::new(0.5, spec4()));
        let g = grad(32, 13);
        let out = ef.compress(&g, &Tensor::zeros(32));
        // residual = g − out (memory was empty)
        let res_norm = ef.residual_norm();
        let mut diff = g.clone();
        for (d, o) in diff.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *d -= *o;
        }
        assert!((diff.norm() - res_norm).abs() < 1e-5);
    }

    #[test]
    fn k_of_clamps() {
        assert_eq!(k_of(10, 0.0), 1);
        assert_eq!(k_of(10, 1.0), 10);
        assert_eq!(k_of(10, 0.25), 3); // rounds 2.5 → 3
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The δ-compressor inequality holds for block top-k on arbitrary
        /// inputs (the Appendix C proof, checked numerically).
        #[test]
        fn prop_block_topk_is_delta_compressor(
            values in prop::collection::vec(-100.0f32..100.0, 1..200),
            bs in 1usize..16,
            kf in 0.01f64..1.0,
        ) {
            let g = Tensor::from_vec(values);
            let spec = BlockSpec::new(bs);
            let mut c = BlockTopK::new(kf, spec);
            let out = c.compress(&g, &Tensor::zeros(g.len()));
            let delta = c.delta(g.len()).unwrap();
            let mut diff = g.clone();
            for (d, o) in diff.as_mut_slice().iter_mut().zip(out.as_slice()) {
                *d -= *o;
            }
            prop_assert!(diff.sq_norm() <= (1.0 - delta) * g.sq_norm() + 1e-6);
        }

        /// Compression output support is a subset of the input support,
        /// and values on the support are unchanged.
        #[test]
        fn prop_compressors_subset_support(
            values in prop::collection::vec(-10.0f32..10.0, 1..120),
            seed in 0u64..100,
        ) {
            let g = Tensor::from_vec(values);
            let p = Tensor::zeros(g.len());
            let spec = BlockSpec::new(4);
            let mut all: Vec<Box<dyn Compressor>> = vec![
                Box::new(BlockRandomK::new(0.5, spec, seed)),
                Box::new(BlockTopK::new(0.5, spec)),
                Box::new(BlockThreshold::new(1.0, spec)),
                Box::new(TopK::new(0.5)),
                Box::new(RandomK::new(0.5, seed)),
                Box::new(Threshold { threshold: 1.0 }),
            ];
            for c in all.iter_mut() {
                let out = c.compress(&g, &p);
                prop_assert_eq!(out.len(), g.len());
                for i in 0..g.len() {
                    prop_assert!(
                        out[i] == 0.0 || out[i] == g[i],
                        "{} altered element {}", c.name(), i
                    );
                }
            }
        }
    }
}

/// Simulated half-precision (fp16) quantizer: rounds every value to the
/// nearest f16 and back. Quantization is the paper's *other* compression
/// axis (§2.1: "sparsification — which sends a subset of elements — and
/// quantization — which reduces the per-element bit-width"); it composes
/// with block sparsification and with error feedback.
pub struct Fp16Quantizer;

/// Rounds `x` through IEEE 754 half precision (software emulation:
/// saturate to ±65504, flush subnormals' extra bits).
fn round_f16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let abs = f32::from_bits(bits & 0x7FFF_FFFF);
    if abs > 65504.0 {
        return f32::from_bits(sign | 65504.0f32.to_bits());
    }
    if abs < 6.103_515_6e-5 {
        // Subnormal f16 range: quantize to multiples of 2^-24.
        let q = (abs / 5.960_464_5e-8).round() * 5.960_464_5e-8;
        return f32::from_bits(sign | q.to_bits());
    }
    // Normal range: keep 10 mantissa bits (round half up). Adding the
    // rounded mantissa to the sign+exponent bits lets a mantissa
    // overflow carry into the exponent, which is exactly the right
    // behaviour because the fields are adjacent.
    let mant_bits = bits & 0x007F_FFFF;
    let rounded = (mant_bits + 0x0000_1000) & !0x0000_1FFF;
    f32::from_bits((bits & 0xFF80_0000).wrapping_add(rounded))
}

impl Compressor for Fp16Quantizer {
    fn compress(&mut self, grad: &Tensor, _params: &Tensor) -> Tensor {
        Tensor::from_vec(grad.as_slice().iter().map(|v| round_f16(*v)).collect())
    }

    fn name(&self) -> &'static str {
        "fp16"
    }
}

/// A composition of two compressors applied in sequence (e.g. block
/// sparsification then quantization — the "less aggressive compression
/// for a given budget" combination §2.1 suggests).
pub struct Compose<A: Compressor, B: Compressor> {
    first: A,
    second: B,
}

impl<A: Compressor, B: Compressor> Compose<A, B> {
    /// Applies `first`, then `second`.
    pub fn new(first: A, second: B) -> Self {
        Compose { first, second }
    }
}

impl<A: Compressor, B: Compressor> Compressor for Compose<A, B> {
    fn compress(&mut self, grad: &Tensor, params: &Tensor) -> Tensor {
        let mid = self.first.compress(grad, params);
        self.second.compress(&mid, params)
    }

    fn name(&self) -> &'static str {
        "compose"
    }
}

#[cfg(test)]
mod quantizer_tests {
    use super::*;

    #[test]
    fn fp16_roundtrip_error_bounded() {
        // Relative error of f16 rounding ≤ 2^-11 in the normal range.
        for x in [1.0f32, -3.14758, 0.123456, 1000.5, -0.0001234] {
            let q = round_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 4.9e-4, "{x} → {q} rel {rel}");
        }
    }

    #[test]
    fn fp16_preserves_exact_values() {
        for x in [0.0f32, 1.0, -2.0, 0.5, 65504.0] {
            assert_eq!(round_f16(x), x);
        }
    }

    #[test]
    fn fp16_saturates() {
        assert_eq!(round_f16(1e6), 65504.0);
        assert_eq!(round_f16(-1e6), -65504.0);
    }

    #[test]
    fn fp16_preserves_zero_support() {
        // Quantization must not turn zeros into non-zeros (it would
        // destroy block sparsity).
        let g = Tensor::from_vec(vec![0.0, 1.0, 0.0, -0.25]);
        let mut q = Fp16Quantizer;
        let out = q.compress(&g, &Tensor::zeros(4));
        assert_eq!(out[0], 0.0);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[1], 1.0);
        assert_eq!(out[3], -0.25);
    }

    #[test]
    fn compose_block_topk_then_fp16() {
        let g = omnireduce_tensor::gen::element_uniform(64, 0.0, 5);
        let mut c = Compose::new(BlockTopK::new(0.5, BlockSpec::new(4)), Fp16Quantizer);
        let out = c.compress(&g, &Tensor::zeros(64));
        // Support shrank to ≤ half the blocks; surviving values are f16
        // roundings of the originals.
        let spec = BlockSpec::new(4);
        assert!(spec.nonzero_blocks(&out).count() <= 8);
        for i in 0..64 {
            if out[i] != 0.0 {
                assert_eq!(out[i], round_f16(g[i]));
            }
        }
    }

    #[test]
    fn ef_wraps_quantizer() {
        let mut ef = ErrorFeedback::new(Fp16Quantizer);
        let g = Tensor::from_vec(vec![1.0001, -2.0003]);
        let out = ef.compress(&g, &Tensor::zeros(2));
        // Residual norm equals the quantization error exactly.
        let mut diff = g.clone();
        for (d, o) in diff.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *d -= *o;
        }
        assert!((ef.residual_norm() - diff.norm()).abs() < 1e-9);
    }
}
