//! Network ports: configuration, runtime state, and traffic counters.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::time::{Bandwidth, SimTime};

/// Identifies a NIC within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicId(pub usize);

/// Configuration of one network port.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Transmit rate.
    pub tx: Bandwidth,
    /// Receive rate.
    pub rx: Bandwidth,
    /// One-way propagation latency for packets leaving this NIC
    /// (the paper's `α`).
    pub latency: SimTime,
    /// Probability a transmitted packet is lost in flight.
    pub loss: f64,
    /// Delivery delay between actors sharing this NIC (loopback).
    pub local_latency: SimTime,
}

impl NicConfig {
    /// A symmetric lossless port of the given rate and latency.
    pub fn symmetric(rate: Bandwidth, latency: SimTime) -> Self {
        NicConfig {
            tx: rate,
            rx: rate,
            latency,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        }
    }

    /// Sets the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }
}

/// Per-NIC traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Bytes serialized onto the TX port (including lost packets).
    pub bytes_tx: u64,
    /// Bytes delivered through the RX port.
    pub bytes_rx: u64,
    /// Packets transmitted (including lost).
    pub packets_tx: u64,
    /// Packets delivered.
    pub packets_rx: u64,
    /// Packets lost in flight after TX.
    pub packets_lost: u64,
    /// Total nanoseconds packets spent queued waiting for a free port
    /// (TX head-of-line wait plus RX incast wait).
    pub queue_delay_sum: u64,
    /// Largest single-packet queueing wait observed, nanoseconds.
    pub queue_delay_max: u64,
}

impl NicStats {
    pub(crate) fn record_wait(&mut self, wait_ns: u64) {
        self.queue_delay_sum += wait_ns;
        self.queue_delay_max = self.queue_delay_max.max(wait_ns);
    }
}

/// Runtime state of one NIC. The loss RNG is **per NIC**, derived from
/// the simulation seed and the NIC id: loss draws then depend only on
/// that NIC's own TX sequence — which is deterministic under any thread
/// count — never on the global interleaving of the engine loop.
pub(crate) struct Nic {
    pub(crate) config: NicConfig,
    pub(crate) tx_free: SimTime,
    pub(crate) rx_free: SimTime,
    pub(crate) stats: NicStats,
    pub(crate) rng: ChaCha8Rng,
}

impl Nic {
    pub(crate) fn new(config: NicConfig, sim_seed: u64, id: usize) -> Self {
        // splitmix64 of the NIC id, xored into the run seed, decorrelates
        // neighbouring NICs' ChaCha streams.
        let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Nic {
            config,
            tx_free: SimTime::ZERO,
            rx_free: SimTime::ZERO,
            stats: NicStats::default(),
            rng: ChaCha8Rng::seed_from_u64(sim_seed ^ z),
        }
    }
}
