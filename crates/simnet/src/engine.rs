//! The discrete-event engine: sequential drain and conservative
//! parallel (bounded-lookahead) execution over the same event model.
//!
//! # Execution model
//!
//! NICs — and the actors attached to them — are split into
//! **partitions** along topology zones. Each partition owns its NICs'
//! state (port cursors, counters, loss RNG) and a private event queue;
//! nothing mutable is shared. The only inter-partition traffic is
//! `PortArrival` events, which carry at least the sending NIC's
//! propagation latency of future timestamp — that minimum, the
//! **lookahead** `λ`, bounds how far a partition may run ahead safely.
//!
//! The engine executes in barrier-synchronized windows: each round the
//! fleet agrees on the global minimum pending timestamp `T`, then every
//! partition processes its events with timestamps in `[T, T + λ)`.
//! Events generated inside a window either stay in the partition
//! (loopback deliveries, RX completions, timers — all same-NIC) or
//! target a timestamp `≥ T + λ` (network packets), so no partition can
//! receive work for a window it already passed — the classic
//! lower-bound-on-timestamp argument, with the null-message exchange
//! collapsed into the barrier reduction.
//!
//! # Determinism
//!
//! Events are ordered by the canonical [`EventKey`] — execution-mode
//! independent by construction (see `event.rs`). Within a window,
//! events of different NICs never interact, so each NIC group's event
//! sequence is a pure function of its own history regardless of how
//! groups are packed into partitions or threads. Every observable —
//! per-actor dispatch sequences, per-NIC counters, flight-event
//! streams — is therefore bit-identical across thread counts
//! (DESIGN.md §13; proven by `tests/simnet_parallel.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use omnireduce_telemetry::{ClockDomain, Counter, Histogram, Telemetry, TrackId};
use rand::Rng;

use crate::actor::{ActorId, Command, Ctx, Process};
use crate::event::{
    Event, EventKey, EventKind, EventQueue, HeapQueue, RANK_DELIVER, RANK_PORT_ARRIVAL, RANK_TIMER,
};
use crate::model::{LinkModel, StoreAndForward};
use crate::nic::{Nic, NicConfig, NicId, NicStats};
use crate::sync::{PoisonBarrier, PoisonGuard};
use crate::time::SimTime;
use crate::topology::{FlatTopology, Topology};

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Per-actor halt time (None: never halted).
    pub finished_at: Vec<Option<SimTime>>,
    /// Per-NIC traffic counters.
    pub nic_stats: Vec<NicStats>,
    /// Total events processed.
    pub events: u64,
    /// Events processed by each engine partition (one entry in
    /// sequential mode). The spread is the load-balance signal the
    /// partition-imbalance detector and `ablation_simnet_scale` report.
    pub partition_events: Vec<u64>,
    /// Wall-clock nanoseconds each partition spent blocked on window
    /// barriers (all zeros in sequential mode). A partition that waits
    /// far *less* than its peers is the one holding them up.
    pub partition_barrier_wait_ns: Vec<u64>,
}

impl RunReport {
    /// Latest halt time among actors that halted — the collective's
    /// completion time.
    pub fn last_finish(&self) -> Option<SimTime> {
        self.finished_at.iter().flatten().max().copied()
    }
}

/// Telemetry handles the simulator updates while it runs (fleet-wide
/// aggregates; per-NIC detail stays in [`NicStats`]). Counters are
/// atomic, so partitions update them concurrently without coordination;
/// the per-NIC trace tracks are created eagerly before threads spawn.
struct SimTelemetry {
    telemetry: Telemetry,
    bytes_tx: Counter,
    bytes_rx: Counter,
    packets_tx: Counter,
    packets_rx: Counter,
    packets_lost: Counter,
    queue_delay: Histogram,
    timer_fires: Counter,
    /// Per-NIC (tx, rx) trace tracks; filled by `ensure_tracks`.
    tracks: Vec<(TrackId, TrackId)>,
}

impl SimTelemetry {
    fn new(telemetry: Telemetry) -> Self {
        SimTelemetry {
            bytes_tx: telemetry.counter("simnet.nic.bytes_tx"),
            bytes_rx: telemetry.counter("simnet.nic.bytes_rx"),
            packets_tx: telemetry.counter("simnet.nic.packets_tx"),
            packets_rx: telemetry.counter("simnet.nic.packets_rx"),
            packets_lost: telemetry.counter("simnet.nic.packets_lost"),
            queue_delay: telemetry.histogram("simnet.nic.queue_delay_ns"),
            timer_fires: telemetry.counter("simnet.timer.fires"),
            tracks: Vec::new(),
            telemetry,
        }
    }

    /// Creates the `nicI.tx` / `nicI.rx` timeline rows for all `n`
    /// NICs. NIC spans carry *simulated* nanoseconds, so the tracks
    /// live in the [`ClockDomain::Sim`] process of the Chrome export —
    /// mixing them onto wall-clock rows would interleave incomparable
    /// timestamps. `unique_track` keeps repeated simulations in one
    /// registry on separate rows.
    fn ensure_tracks(&mut self, n: usize) {
        if !self.telemetry.trace().is_enabled() {
            return;
        }
        while self.tracks.len() < n {
            let i = self.tracks.len();
            let tx = self
                .telemetry
                .trace()
                .unique_track(&format!("nic{i}.tx"), ClockDomain::Sim);
            let rx = self
                .telemetry
                .trace()
                .unique_track(&format!("nic{i}.rx"), ClockDomain::Sim);
            self.tracks.push((tx, rx));
        }
    }
}

struct ActorSlot<M> {
    process: Box<dyn Process<M> + Send>,
    nic: NicId,
    halted: bool,
    finished_at: Option<SimTime>,
    /// Per-source emission counter backing the canonical event keys.
    next_seq: u64,
}

/// Factory producing one pending-event queue per engine partition.
type QueueFactory<M> = Arc<dyn Fn() -> Box<dyn EventQueue<M> + Send> + Send + Sync>;

/// The simulator. `M` is the protocol's message type.
pub struct Simulator<M> {
    nics: Vec<Nic>,
    actors: Vec<ActorSlot<M>>,
    threads: usize,
    max_events: u64,
    seed: u64,
    topology: Arc<dyn Topology>,
    link: Arc<dyn LinkModel>,
    queue_factory: QueueFactory<M>,
    telemetry: Option<SimTelemetry>,
}

impl<M: Send + 'static> Simulator<M> {
    /// Creates an empty simulation; `seed` drives the loss processes
    /// (each NIC derives an independent stream from it).
    pub fn new(seed: u64) -> Self {
        Simulator {
            nics: Vec::new(),
            actors: Vec::new(),
            threads: 1,
            max_events: 2_000_000_000,
            seed,
            topology: Arc::new(FlatTopology),
            link: Arc::new(StoreAndForward),
            queue_factory: Arc::new(|| Box::new(HeapQueue::default())),
            telemetry: None,
        }
    }

    /// Caps the number of events processed (guards against protocol
    /// livelock in tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Requests parallel execution on up to `threads` OS threads.
    /// `1` (the default) runs the classic in-place sequential drain.
    /// The engine silently degrades to sequential when the topology
    /// offers no lookahead (a zero-latency NIC), when there are fewer
    /// NICs than threads would help with, or when every NIC lands in
    /// one partition — results are bit-identical either way.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
    }

    /// Replaces the fabric topology (default: [`FlatTopology`]).
    /// Partitions follow the topology's zones, and inter-zone latency
    /// widens the parallel engine's conservative windows.
    pub fn set_topology(&mut self, topology: impl Topology + 'static) {
        self.topology = Arc::new(topology);
    }

    /// Replaces the fabric topology with an already-shared handle
    /// (useful when a spec layer holds `Arc<dyn Topology>`).
    pub fn set_topology_shared(&mut self, topology: Arc<dyn Topology>) {
        self.topology = topology;
    }

    /// Replaces the link timing model (default: [`StoreAndForward`]).
    pub fn set_link_model(&mut self, link: impl LinkModel + 'static) {
        self.link = Arc::new(link);
    }

    /// Replaces the pending-event structure (default: [`HeapQueue`]).
    /// The factory is called once per engine partition.
    pub fn set_event_queue<F>(&mut self, factory: F)
    where
        F: Fn() -> Box<dyn EventQueue<M> + Send> + Send + Sync + 'static,
    {
        self.queue_factory = Arc::new(factory);
    }

    /// Attaches a telemetry registry: the simulator then updates
    /// `simnet.nic.*` counters and the `simnet.nic.queue_delay_ns`
    /// histogram while it runs, and — when the registry's trace recorder
    /// is enabled — records per-NIC TX/RX serialization spans and loss
    /// instants (one Perfetto row per port).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(SimTelemetry::new(telemetry));
    }

    /// Adds a NIC.
    pub fn add_nic(&mut self, config: NicConfig) -> NicId {
        let id = self.nics.len();
        self.nics.push(Nic::new(config, self.seed, id));
        NicId(id)
    }

    /// Adds an actor attached to `nic`.
    pub fn add_actor(&mut self, nic: NicId, process: Box<dyn Process<M> + Send>) -> ActorId {
        assert!(nic.0 < self.nics.len(), "unknown nic");
        self.actors.push(ActorSlot {
            process,
            nic,
            halted: false,
            finished_at: None,
            next_seq: 0,
        });
        ActorId(self.actors.len() - 1)
    }

    /// Computes the partition layout: `(partition count, NIC→partition
    /// map, lookahead in ns)`. Degrades to a single partition when the
    /// requested thread count, the zone layout, or a zero lookahead
    /// make parallel execution unsafe or pointless.
    fn partition_plan(&self) -> (usize, Vec<usize>, u64) {
        let n = self.nics.len();
        let nparts = self.threads.min(n.max(1));
        let sequential = |n: usize| (1usize, vec![0usize; n], u64::MAX);
        if nparts <= 1 {
            return sequential(n);
        }
        let nic_part: Vec<usize> = (0..n)
            .map(|i| self.topology.zone(NicId(i)) % nparts)
            .collect();
        // Lookahead: the minimum latency any cross-partition packet
        // pays after leaving its TX port. Conservative windows of this
        // width can never miss an incoming event.
        let mut lookahead = u64::MAX;
        for s in 0..n {
            for d in 0..n {
                if nic_part[s] != nic_part[d] {
                    let lat = self.nics[s].config.latency
                        + self.topology.extra_latency(NicId(s), NicId(d));
                    lookahead = lookahead.min(lat.as_nanos());
                }
            }
        }
        if lookahead == u64::MAX || lookahead == 0 {
            // Single populated partition, or a zero-latency NIC pair:
            // zero lookahead serializes every window, so fall back.
            return sequential(n);
        }
        (nparts, nic_part, lookahead)
    }
}

impl<M: Send + 'static> Simulator<M> {
    /// Runs until every event queue drains, returning the report.
    ///
    /// # Panics
    /// Panics when the event budget is exceeded — a sign of protocol
    /// livelock.
    pub fn run(&mut self) -> RunReport {
        let (nparts, nic_part, lookahead_ns) = self.partition_plan();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.ensure_tracks(self.nics.len());
        }

        let nics = std::mem::take(&mut self.nics);
        let actors = std::mem::take(&mut self.actors);
        let nnics = nics.len();
        let nactors = actors.len();
        let actor_nic: Vec<NicId> = actors.iter().map(|a| a.nic).collect();

        // Distribute NIC and actor state to their owning partitions.
        // Full-size `Vec<Option<_>>` per partition keeps global ids as
        // direct indices (no translation on the hot path).
        let mut part_nics: Vec<Vec<Option<Nic>>> = (0..nparts)
            .map(|_| (0..nnics).map(|_| None).collect())
            .collect();
        let mut part_actors: Vec<Vec<Option<ActorSlot<M>>>> = (0..nparts)
            .map(|_| (0..nactors).map(|_| None).collect())
            .collect();
        for (i, nic) in nics.into_iter().enumerate() {
            part_nics[nic_part[i]][i] = Some(nic);
        }
        for (i, slot) in actors.into_iter().enumerate() {
            let p = nic_part[slot.nic.0];
            part_actors[p][i] = Some(slot);
        }

        let shared = Shared {
            actor_nic: &actor_nic,
            nic_part: &nic_part,
            topology: &*self.topology,
            link: &*self.link,
            telemetry: self.telemetry.as_ref(),
            inboxes: (0..nparts).map(|_| Mutex::new(Vec::new())).collect(),
            events_processed: AtomicU64::new(0),
            max_events: self.max_events,
            gmin: AtomicU64::new(u64::MAX),
            barrier: PoisonBarrier::new(nparts),
        };

        let mut results: Vec<Option<PartitionResult<M>>> = (0..nparts).map(|_| None).collect();
        if nparts == 1 {
            let mut p: Partition<'_, M> = Partition {
                id: 0,
                queue: (self.queue_factory)(),
                now: SimTime::ZERO,
                nics: part_nics.pop().expect("one partition"),
                actors: part_actors.pop().expect("one partition"),
                shared: &shared,
                events: 0,
                barrier_wait_ns: 0,
            };
            p.start_actors();
            p.process_until(None);
            results[0] = Some((p.nics, p.actors, p.now, p.events, p.barrier_wait_ns));
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = part_nics
                    .into_iter()
                    .zip(part_actors)
                    .enumerate()
                    .map(|(id, (nics, actors))| {
                        let shared = &shared;
                        let queue = (self.queue_factory)();
                        scope.spawn(move || {
                            let guard = PoisonGuard::new(&shared.barrier);
                            let mut p: Partition<'_, M> = Partition {
                                id,
                                queue,
                                now: SimTime::ZERO,
                                nics,
                                actors,
                                shared,
                                events: 0,
                                barrier_wait_ns: 0,
                            };
                            p.start_actors();
                            p.run_windows(lookahead_ns);
                            guard.defuse();
                            (p.nics, p.actors, p.now, p.events, p.barrier_wait_ns)
                        })
                    })
                    .collect();
                for (id, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok(r) => results[id] = Some(r),
                        // Re-raise the partition's own panic (event
                        // budget, protocol assert) with its payload.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        }

        // Merge partition state back so the simulator reflects the run.
        let mut end_time = SimTime::ZERO;
        let mut merged_nics: Vec<Option<Nic>> = (0..nnics).map(|_| None).collect();
        let mut merged_actors: Vec<Option<ActorSlot<M>>> = (0..nactors).map(|_| None).collect();
        let mut partition_events = Vec::with_capacity(nparts);
        let mut partition_barrier_wait_ns = Vec::with_capacity(nparts);
        for result in results {
            let (nics, actors, now, events, barrier_wait_ns) = result.expect("partition result");
            end_time = end_time.max(now);
            partition_events.push(events);
            partition_barrier_wait_ns.push(barrier_wait_ns);
            for (i, nic) in nics.into_iter().enumerate() {
                if let Some(nic) = nic {
                    merged_nics[i] = Some(nic);
                }
            }
            for (i, slot) in actors.into_iter().enumerate() {
                if let Some(slot) = slot {
                    merged_actors[i] = Some(slot);
                }
            }
        }
        // Publish the per-partition balance as registry counters so the
        // time-series sampler (and the partition-imbalance detector)
        // see it. Post-run, off the hot path — the format! is fine.
        if let Some(tel) = self.telemetry.as_ref() {
            for (p, (&events, &wait)) in partition_events
                .iter()
                .zip(&partition_barrier_wait_ns)
                .enumerate()
            {
                tel.telemetry
                    .counter(&format!("simnet.partition.{p}.events"))
                    .add(events);
                tel.telemetry
                    .counter(&format!("simnet.partition.{p}.barrier_wait_ns"))
                    .add(wait);
            }
        }
        self.nics = merged_nics
            .into_iter()
            .map(|n| n.expect("nic lost in merge"))
            .collect();
        self.actors = merged_actors
            .into_iter()
            .map(|a| a.expect("actor lost in merge"))
            .collect();

        RunReport {
            end_time,
            finished_at: self.actors.iter().map(|a| a.finished_at).collect(),
            nic_stats: self.nics.iter().map(|n| n.stats).collect(),
            events: shared.events_processed.load(Ordering::Relaxed),
            partition_events,
            partition_barrier_wait_ns,
        }
    }
}

/// `(nics, actors, now, events processed, barrier-wait ns)` handed back
/// by each partition when its loop exits.
type PartitionResult<M> = (
    Vec<Option<Nic>>,
    Vec<Option<ActorSlot<M>>>,
    SimTime,
    u64,
    u64,
);

/// Read-mostly state shared by all partitions of one run.
struct Shared<'a, M> {
    actor_nic: &'a [NicId],
    nic_part: &'a [usize],
    topology: &'a dyn Topology,
    link: &'a dyn LinkModel,
    telemetry: Option<&'a SimTelemetry>,
    /// Cross-partition event mailboxes, drained at window barriers.
    inboxes: Vec<Mutex<Vec<Event<M>>>>,
    events_processed: AtomicU64,
    max_events: u64,
    /// Barrier-reduced global minimum pending timestamp (ns).
    gmin: AtomicU64,
    barrier: PoisonBarrier,
}

/// One partition's private slice of the simulation.
struct Partition<'a, M> {
    id: usize,
    queue: Box<dyn EventQueue<M> + Send>,
    now: SimTime,
    /// Full-size vector; `Some` only at indices this partition owns.
    nics: Vec<Option<Nic>>,
    /// Full-size vector; `Some` only at indices this partition owns.
    actors: Vec<Option<ActorSlot<M>>>,
    shared: &'a Shared<'a, M>,
    /// Events this partition processed (its share of the global
    /// `events_processed` count).
    events: u64,
    /// Wall-clock ns spent blocked on window barriers.
    barrier_wait_ns: u64,
}

impl<M> Partition<'_, M> {
    /// Conservative windowed loop: three fleet-wide waits per window —
    /// (1) quiesce the previous window and let the leader reset the
    /// reduction cell, (2) publish each partition's minimum pending
    /// timestamp, (3) agree on the window start — then process all
    /// events below `start + lookahead`. A poisoned wait means a peer
    /// panicked; bail out so its panic can propagate.
    fn run_windows(&mut self, lookahead_ns: u64) {
        loop {
            // Wall-clock time blocked across the window's three waits:
            // pure instrumentation (never fed back into simulated time,
            // so determinism is untouched). A partition that barely
            // waits is the straggler its peers are waiting *for*.
            let wait_started = std::time::Instant::now();
            match self.shared.barrier.wait() {
                Ok(true) => self.shared.gmin.store(u64::MAX, Ordering::SeqCst),
                Ok(false) => {}
                Err(_) => return,
            }
            if self.shared.barrier.wait().is_err() {
                return;
            }
            self.barrier_wait_ns += wait_started.elapsed().as_nanos() as u64;
            let mut inbox = {
                let mut guard = self.shared.inboxes[self.id].lock().expect("inbox");
                std::mem::take(&mut *guard)
            };
            for ev in inbox.drain(..) {
                self.queue.push(ev);
            }
            let local_min = self
                .queue
                .next_time()
                .map(|t| t.as_nanos())
                .unwrap_or(u64::MAX);
            self.shared.gmin.fetch_min(local_min, Ordering::SeqCst);
            let wait_started = std::time::Instant::now();
            if self.shared.barrier.wait().is_err() {
                return;
            }
            self.barrier_wait_ns += wait_started.elapsed().as_nanos() as u64;
            let start = self.shared.gmin.load(Ordering::SeqCst);
            if start == u64::MAX {
                return; // every queue and inbox is empty — done
            }
            let window_end = SimTime::from_nanos(start.saturating_add(lookahead_ns));
            self.process_until(Some(window_end));
        }
    }

    fn start_actors(&mut self) {
        for i in 0..self.actors.len() {
            if self.actors[i].is_some() {
                self.dispatch(ActorId(i), Dispatch::Start);
            }
        }
    }

    /// Pops and handles events while their timestamp is below `t_end`
    /// (`None`: drain everything — the sequential path).
    fn process_until(&mut self, t_end: Option<SimTime>) {
        loop {
            match self.queue.next_time() {
                None => return,
                Some(t) => {
                    if let Some(end) = t_end {
                        if t >= end {
                            return;
                        }
                    }
                }
            }
            let ev = self.queue.pop().expect("peeked event");
            self.events += 1;
            let processed = self.shared.events_processed.fetch_add(1, Ordering::Relaxed) + 1;
            if processed > self.shared.max_events {
                // Poison first so peers blocked at a barrier exit and
                // this panic can propagate from the thread scope.
                self.shared.barrier.poison();
                panic!(
                    "event budget exceeded at t={} — protocol livelock?",
                    ev.key.time
                );
            }
            debug_assert!(ev.key.time >= self.now, "time went backwards");
            self.now = ev.key.time;
            let key = ev.key;
            // Event-by-event stderr trace, enabled by env once per
            // process — the tool that turns "the sim never finishes"
            // into a visible repeating event cycle.
            static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            if *TRACE.get_or_init(|| std::env::var_os("OMNIREDUCE_SIM_TRACE").is_some()) {
                let kind = match &ev.kind {
                    EventKind::PortArrival {
                        to, from, bytes, ..
                    } => {
                        format!("PortArrival to={} from={} bytes={bytes}", to.0, from.0)
                    }
                    EventKind::Deliver { to, from, .. } => {
                        format!("Deliver to={} from={}", to.0, from.0)
                    }
                    EventKind::Timer { actor, token } => {
                        format!("Timer actor={} token={token}", actor.0)
                    }
                };
                eprintln!(
                    "[ev {processed}] t={} src={} seq={} rank={} {kind}",
                    key.time, key.src.0, key.seq, key.rank
                );
            }
            match ev.kind {
                EventKind::PortArrival {
                    to,
                    from,
                    msg,
                    bytes,
                } => {
                    let dst_nic = self.shared.actor_nic[to.0];
                    let nic = self.nics[dst_nic.0].as_mut().expect("rx nic owned");
                    let slot = self
                        .shared
                        .link
                        .rx_slot(&nic.config, nic.rx_free, self.now, bytes);
                    nic.rx_free = slot.end;
                    nic.stats.bytes_rx += bytes as u64;
                    nic.stats.packets_rx += 1;
                    let wait_ns = slot.start.saturating_sub(self.now).as_nanos();
                    nic.stats.record_wait(wait_ns);
                    if let Some(tel) = self.shared.telemetry {
                        tel.bytes_rx.add(bytes as u64);
                        tel.packets_rx.inc();
                        tel.queue_delay.record(wait_ns);
                        if tel.telemetry.trace().is_enabled() {
                            let (_, rx_track) = tel.tracks[dst_nic.0];
                            tel.telemetry.trace().span(
                                rx_track,
                                "rx",
                                slot.start.as_nanos(),
                                slot.end.as_nanos(),
                            );
                        }
                    }
                    // The Deliver keeps the packet's (src, seq) tag;
                    // RANK_DELIVER orders it after this PortArrival
                    // even when RX serialization takes zero time.
                    self.queue.push(Event {
                        key: EventKey {
                            time: slot.end,
                            src: key.src,
                            seq: key.seq,
                            rank: RANK_DELIVER,
                        },
                        kind: EventKind::Deliver { to, from, msg },
                    });
                }
                EventKind::Deliver { to, from, msg } => {
                    if self.actors[to.0].as_ref().expect("actor owned").halted {
                        continue;
                    }
                    self.dispatch(to, Dispatch::Message { from, msg });
                }
                EventKind::Timer { actor, token } => {
                    if self.actors[actor.0].as_ref().expect("actor owned").halted {
                        continue;
                    }
                    if let Some(tel) = self.shared.telemetry {
                        tel.timer_fires.inc();
                    }
                    self.dispatch(actor, Dispatch::Timer { token });
                }
            }
        }
    }

    fn dispatch(&mut self, id: ActorId, what: Dispatch<M>) {
        let mut ctx = Ctx::new(self.now, id);
        let slot = self.actors[id.0].as_mut().expect("actor owned");
        let mut process = std::mem::replace(&mut slot.process, Box::new(NullProcess));
        match what {
            Dispatch::Start => process.on_start(&mut ctx),
            Dispatch::Message { from, msg } => process.on_message(&mut ctx, from, msg),
            Dispatch::Timer { token } => process.on_timer(&mut ctx, token),
        }
        self.actors[id.0].as_mut().expect("actor owned").process = process;
        self.apply_commands(id, ctx.commands);
    }

    fn next_seq(&mut self, actor: ActorId) -> u64 {
        let slot = self.actors[actor.0].as_mut().expect("actor owned");
        slot.next_seq += 1;
        slot.next_seq
    }

    fn apply_commands(&mut self, actor: ActorId, commands: Vec<Command<M>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg, bytes } => self.route(actor, to, msg, bytes),
                Command::Timer { delay, token } => {
                    let seq = self.next_seq(actor);
                    self.queue.push(Event {
                        key: EventKey {
                            time: self.now + delay,
                            src: actor,
                            seq,
                            rank: RANK_TIMER,
                        },
                        kind: EventKind::Timer { actor, token },
                    });
                }
                Command::Halt => {
                    let slot = self.actors[actor.0].as_mut().expect("actor owned");
                    if !slot.halted {
                        slot.halted = true;
                        slot.finished_at = Some(self.now);
                    }
                }
                Command::MarkDone => {
                    let slot = self.actors[actor.0].as_mut().expect("actor owned");
                    if slot.finished_at.is_none() {
                        slot.finished_at = Some(self.now);
                    }
                }
            }
        }
    }

    fn route(&mut self, from: ActorId, to: ActorId, msg: M, bytes: usize) {
        assert!(to.0 < self.shared.actor_nic.len(), "unknown actor {to:?}");
        let src_nic = self.shared.actor_nic[from.0];
        let dst_nic = self.shared.actor_nic[to.0];
        let seq = self.next_seq(from);
        if src_nic == dst_nic {
            // Loopback: no NIC bandwidth, fixed local latency. Same
            // NIC means same partition, so the push is always local.
            let delay = self.nics[src_nic.0]
                .as_ref()
                .expect("tx nic owned")
                .config
                .local_latency;
            self.queue.push(Event {
                key: EventKey {
                    time: self.now + delay,
                    src: from,
                    seq,
                    rank: RANK_DELIVER,
                },
                kind: EventKind::Deliver { to, from, msg },
            });
            return;
        }
        let extra = self.shared.topology.extra_latency(src_nic, dst_nic);
        let nic = self.nics[src_nic.0].as_mut().expect("tx nic owned");
        let slot = self
            .shared
            .link
            .tx_slot(&nic.config, nic.tx_free, self.now, bytes);
        nic.tx_free = slot.end;
        nic.stats.bytes_tx += bytes as u64;
        nic.stats.packets_tx += 1;
        let wait_ns = slot.start.saturating_sub(self.now).as_nanos();
        nic.stats.record_wait(wait_ns);
        // The loss draw comes from the *sending NIC's* private stream:
        // its order depends only on this NIC's TX sequence, which is
        // deterministic under any thread count.
        let lost = nic.config.loss > 0.0 && nic.rng.gen_bool(nic.config.loss);
        if lost {
            nic.stats.packets_lost += 1;
        }
        let latency = nic.config.latency + extra;
        if let Some(tel) = self.shared.telemetry {
            tel.bytes_tx.add(bytes as u64);
            tel.packets_tx.inc();
            tel.queue_delay.record(wait_ns);
            if lost {
                tel.packets_lost.inc();
            }
            if tel.telemetry.trace().is_enabled() {
                let (tx_track, _) = tel.tracks[src_nic.0];
                tel.telemetry.trace().span(
                    tx_track,
                    "tx",
                    slot.start.as_nanos(),
                    slot.end.as_nanos(),
                );
                if lost {
                    tel.telemetry
                        .trace()
                        .instant(tx_track, "loss", slot.end.as_nanos());
                }
            }
        }
        if !lost {
            let ev = Event {
                key: EventKey {
                    time: slot.end + latency,
                    src: from,
                    seq,
                    rank: RANK_PORT_ARRIVAL,
                },
                kind: EventKind::PortArrival {
                    to,
                    from,
                    msg,
                    bytes,
                },
            };
            let dst_part = self.shared.nic_part[dst_nic.0];
            if dst_part == self.id {
                self.queue.push(ev);
            } else {
                self.shared.inboxes[dst_part]
                    .lock()
                    .expect("inbox")
                    .push(ev);
            }
        }
    }
}

enum Dispatch<M> {
    Start,
    Message { from: ActorId, msg: M },
    Timer { token: u64 },
}

/// Placeholder swapped in while an actor's real process runs (re-entrant
/// dispatch cannot happen, so it never receives events).
struct NullProcess;

impl<M> Process<M> for NullProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<M>) {
        unreachable!("null process started")
    }
    fn on_message(&mut self, _ctx: &mut Ctx<M>, _from: ActorId, _msg: M) {
        unreachable!("null process messaged")
    }
}
