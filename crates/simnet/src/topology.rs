//! Fabric topology: zone placement and inter-zone latency.
//!
//! A topology does two jobs. It adds **extra propagation latency**
//! between NICs in different zones (racks), and it tells the parallel
//! engine which NICs belong together — partitions are carved along
//! zones, so the inter-zone latency *is* the synchronization lookahead
//! (a bigger rack-to-rack delay buys wider conservative windows).

use crate::nic::NicId;
use crate::time::SimTime;

/// Zone placement and inter-zone latency for a simulated fabric.
pub trait Topology: Send + Sync {
    /// Extra one-way propagation latency from `src` to `dst`, added on
    /// top of the sending NIC's base `latency`. Must be symmetric in
    /// the zones (same value for any pair drawn from the same two
    /// zones) so the lookahead bound holds.
    fn extra_latency(&self, src: NicId, dst: NicId) -> SimTime;

    /// The zone (rack) a NIC belongs to. NICs sharing a zone are
    /// placed in the same engine partition when running parallel.
    fn zone(&self, nic: NicId) -> usize;
}

/// Single-switch fabric: no extra latency anywhere, every NIC its own
/// zone (partitions then stripe NICs round-robin).
#[derive(Debug, Default, Clone, Copy)]
pub struct FlatTopology;

impl Topology for FlatTopology {
    fn extra_latency(&self, _src: NicId, _dst: NicId) -> SimTime {
        SimTime::ZERO
    }
    fn zone(&self, nic: NicId) -> usize {
        nic.0
    }
}

/// Multi-rack fabric: NICs are grouped into racks of `rack_size`
/// consecutive ids; crossing racks costs `inter_rack_extra` on top of
/// the sender's base latency (one extra switch hop).
#[derive(Debug, Clone, Copy)]
pub struct RackTopology {
    /// Consecutive NIC ids per rack (the rack's port count).
    pub rack_size: usize,
    /// Extra one-way latency for inter-rack packets.
    pub inter_rack_extra: SimTime,
}

impl RackTopology {
    /// A fabric of `rack_size`-port racks with the given extra
    /// inter-rack hop latency.
    pub fn new(rack_size: usize, inter_rack_extra: SimTime) -> Self {
        assert!(rack_size > 0, "rack_size must be positive");
        RackTopology {
            rack_size,
            inter_rack_extra,
        }
    }
}

impl Topology for RackTopology {
    fn extra_latency(&self, src: NicId, dst: NicId) -> SimTime {
        if self.zone(src) == self.zone(dst) {
            SimTime::ZERO
        } else {
            self.inter_rack_extra
        }
    }
    fn zone(&self, nic: NicId) -> usize {
        nic.0 / self.rack_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_topology_zones_and_latency() {
        let topo = RackTopology::new(4, SimTime::from_micros(2));
        assert_eq!(topo.zone(NicId(0)), 0);
        assert_eq!(topo.zone(NicId(3)), 0);
        assert_eq!(topo.zone(NicId(4)), 1);
        assert_eq!(topo.extra_latency(NicId(0), NicId(3)), SimTime::ZERO);
        assert_eq!(
            topo.extra_latency(NicId(0), NicId(4)),
            SimTime::from_micros(2)
        );
    }

    #[test]
    fn flat_topology_is_zero_extra() {
        let topo = FlatTopology;
        assert_eq!(topo.extra_latency(NicId(0), NicId(9)), SimTime::ZERO);
        assert_eq!(topo.zone(NicId(7)), 7);
    }
}
