//! The discrete-event simulator core.
//!
//! Entities:
//!
//! * **NIC** — a full-duplex network port with independent transmit and
//!   receive rates, a one-way propagation latency, and an optional
//!   Bernoulli loss probability. Packets serialize on the sender's TX
//!   port (FIFO), propagate, then serialize on the receiver's RX port
//!   (FIFO). This two-stage store-and-forward model reproduces the two
//!   behaviours the paper's protocols live and die by: *incast queueing*
//!   (N workers pushing into one aggregator's RX port) and *egress
//!   serialization* (an aggregator unicasting a result to N workers pays
//!   N packet times on its TX port).
//! * **Actor** — an event-driven protocol state machine implementing
//!   [`Process`]. Several actors may share one NIC (colocated aggregator
//!   shards, paper §6.1); messages between same-NIC actors bypass the
//!   network and deliver after the NIC's `local_latency`.
//! * **Events** — message deliveries and timers, processed in
//!   deterministic time order (FIFO tie-break on insertion sequence).
//!
//! Actors interact with the world only through [`Ctx`], which records
//! commands (send, timer, halt) that the simulator applies after the
//! handler returns — the standard trick that keeps handler signatures
//! borrow-checker-friendly without interior mutability.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use omnireduce_telemetry::{ClockDomain, Counter, Histogram, Telemetry, TrackId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::time::{Bandwidth, SimTime};

/// Identifies a NIC within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicId(pub usize);

/// Identifies an actor within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// Configuration of one network port.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Transmit rate.
    pub tx: Bandwidth,
    /// Receive rate.
    pub rx: Bandwidth,
    /// One-way propagation latency for packets leaving this NIC
    /// (the paper's `α`).
    pub latency: SimTime,
    /// Probability a transmitted packet is lost in flight.
    pub loss: f64,
    /// Delivery delay between actors sharing this NIC (loopback).
    pub local_latency: SimTime,
}

impl NicConfig {
    /// A symmetric lossless port of the given rate and latency.
    pub fn symmetric(rate: Bandwidth, latency: SimTime) -> Self {
        NicConfig {
            tx: rate,
            rx: rate,
            latency,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        }
    }

    /// Sets the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }
}

/// An event-driven protocol state machine.
pub trait Process<M> {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: ActorId, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<M>, _token: u64) {}
}

/// Handler-side view of the simulator. Commands are buffered and applied
/// by the simulator after the handler returns.
pub struct Ctx<M> {
    now: SimTime,
    id: ActorId,
    commands: Vec<Command<M>>,
}

enum Command<M> {
    Send { to: ActorId, msg: M, bytes: usize },
    Timer { delay: SimTime, token: u64 },
    Halt,
    MarkDone,
}

impl<M> Ctx<M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Sends `msg` to `to`, charging `bytes` to the network (payload plus
    /// whatever header accounting the protocol wants).
    pub fn send(&mut self, to: ActorId, msg: M, bytes: usize) {
        self.commands.push(Command::Send { to, msg, bytes });
    }

    /// Arms a timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.commands.push(Command::Timer { delay, token });
    }

    /// Marks this actor finished; the simulator records the time and
    /// drops any further events addressed to it.
    pub fn halt(&mut self) {
        self.commands.push(Command::Halt);
    }

    /// Records this actor's finish time *without* halting it: the actor
    /// keeps receiving and forwarding events (needed by ring protocols,
    /// where a node is done with its own data while still relaying other
    /// nodes' tokens). The simulation then ends when the event queue
    /// drains.
    pub fn mark_done(&mut self) {
        self.commands.push(Command::MarkDone);
    }
}

struct Nic {
    config: NicConfig,
    tx_free: SimTime,
    rx_free: SimTime,
    stats: NicStats,
}

/// Per-NIC traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Bytes serialized onto the TX port (including lost packets).
    pub bytes_tx: u64,
    /// Bytes delivered through the RX port.
    pub bytes_rx: u64,
    /// Packets transmitted (including lost).
    pub packets_tx: u64,
    /// Packets delivered.
    pub packets_rx: u64,
    /// Packets lost in flight after TX.
    pub packets_lost: u64,
    /// Total nanoseconds packets spent queued waiting for a free port
    /// (TX head-of-line wait plus RX incast wait).
    pub queue_delay_sum: u64,
    /// Largest single-packet queueing wait observed, nanoseconds.
    pub queue_delay_max: u64,
}

impl NicStats {
    fn record_wait(&mut self, wait_ns: u64) {
        self.queue_delay_sum += wait_ns;
        self.queue_delay_max = self.queue_delay_max.max(wait_ns);
    }
}

/// Telemetry handles the simulator updates while it runs (fleet-wide
/// aggregates; per-NIC detail stays in [`NicStats`]).
struct SimTelemetry {
    telemetry: Telemetry,
    bytes_tx: Counter,
    bytes_rx: Counter,
    packets_tx: Counter,
    packets_rx: Counter,
    packets_lost: Counter,
    queue_delay: Histogram,
    timer_fires: Counter,
    /// Per-NIC (tx, rx) trace tracks, created lazily.
    tracks: Vec<(TrackId, TrackId)>,
}

impl SimTelemetry {
    fn new(telemetry: Telemetry) -> Self {
        SimTelemetry {
            bytes_tx: telemetry.counter("simnet.nic.bytes_tx"),
            bytes_rx: telemetry.counter("simnet.nic.bytes_rx"),
            packets_tx: telemetry.counter("simnet.nic.packets_tx"),
            packets_rx: telemetry.counter("simnet.nic.packets_rx"),
            packets_lost: telemetry.counter("simnet.nic.packets_lost"),
            queue_delay: telemetry.histogram("simnet.nic.queue_delay_ns"),
            timer_fires: telemetry.counter("simnet.timer.fires"),
            tracks: Vec::new(),
            telemetry,
        }
    }

    /// Trace tracks for NIC `i` (`nicI.tx` / `nicI.rx` timeline rows).
    ///
    /// NIC spans carry *simulated* nanoseconds, so the tracks live in
    /// the [`ClockDomain::Sim`] process of the Chrome export — mixing
    /// them onto wall-clock rows would interleave incomparable
    /// timestamps. `unique_track` keeps repeated simulations in one
    /// registry on separate rows.
    fn nic_tracks(&mut self, i: usize) -> (TrackId, TrackId) {
        while self.tracks.len() <= i {
            let n = self.tracks.len();
            let tx = self
                .telemetry
                .trace()
                .unique_track(&format!("nic{n}.tx"), ClockDomain::Sim);
            let rx = self
                .telemetry
                .trace()
                .unique_track(&format!("nic{n}.rx"), ClockDomain::Sim);
            self.tracks.push((tx, rx));
        }
        self.tracks[i]
    }
}

struct ActorSlot<M> {
    process: Box<dyn Process<M>>,
    nic: NicId,
    halted: bool,
    finished_at: Option<SimTime>,
}

enum EventKind<M> {
    /// Packet reaches the receiver's RX port (before RX serialization).
    PortArrival {
        to: ActorId,
        from: ActorId,
        msg: M,
        bytes: usize,
    },
    /// Message fully received; dispatch to the actor.
    Deliver { to: ActorId, from: ActorId, msg: M },
    /// Timer fires.
    Timer { actor: ActorId, token: u64 },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Per-actor halt time (None: never halted).
    pub finished_at: Vec<Option<SimTime>>,
    /// Per-NIC traffic counters.
    pub nic_stats: Vec<NicStats>,
    /// Total events processed.
    pub events: u64,
}

impl RunReport {
    /// Latest halt time among actors that halted — the collective's
    /// completion time.
    pub fn last_finish(&self) -> Option<SimTime> {
        self.finished_at.iter().flatten().max().copied()
    }
}

/// The simulator. `M` is the protocol's message type.
pub struct Simulator<M> {
    nics: Vec<Nic>,
    actors: Vec<ActorSlot<M>>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    now: SimTime,
    seq: u64,
    events_processed: u64,
    max_events: u64,
    rng: ChaCha8Rng,
    telemetry: Option<SimTelemetry>,
}

impl<M> Simulator<M> {
    /// Creates an empty simulation; `seed` drives the loss process.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nics: Vec::new(),
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            max_events: 2_000_000_000,
            rng: ChaCha8Rng::seed_from_u64(seed),
            telemetry: None,
        }
    }

    /// Caps the number of events processed (guards against protocol
    /// livelock in tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Attaches a telemetry registry: the simulator then updates
    /// `simnet.nic.*` counters and the `simnet.nic.queue_delay_ns`
    /// histogram while it runs, and — when the registry's trace recorder
    /// is enabled — records per-NIC TX/RX serialization spans and loss
    /// instants (one Perfetto row per port).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(SimTelemetry::new(telemetry));
    }

    /// Adds a NIC.
    pub fn add_nic(&mut self, config: NicConfig) -> NicId {
        self.nics.push(Nic {
            config,
            tx_free: SimTime::ZERO,
            rx_free: SimTime::ZERO,
            stats: NicStats::default(),
        });
        NicId(self.nics.len() - 1)
    }

    /// Adds an actor attached to `nic`.
    pub fn add_actor(&mut self, nic: NicId, process: Box<dyn Process<M>>) -> ActorId {
        assert!(nic.0 < self.nics.len(), "unknown nic");
        self.actors.push(ActorSlot {
            process,
            nic,
            halted: false,
            finished_at: None,
        });
        ActorId(self.actors.len() - 1)
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn apply_commands(&mut self, actor: ActorId, commands: Vec<Command<M>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg, bytes } => self.route(actor, to, msg, bytes),
                Command::Timer { delay, token } => {
                    self.push(self.now + delay, EventKind::Timer { actor, token });
                }
                Command::Halt => {
                    let slot = &mut self.actors[actor.0];
                    if !slot.halted {
                        slot.halted = true;
                        slot.finished_at = Some(self.now);
                    }
                }
                Command::MarkDone => {
                    let slot = &mut self.actors[actor.0];
                    if slot.finished_at.is_none() {
                        slot.finished_at = Some(self.now);
                    }
                }
            }
        }
    }

    fn route(&mut self, from: ActorId, to: ActorId, msg: M, bytes: usize) {
        assert!(to.0 < self.actors.len(), "unknown actor {to:?}");
        let src_nic = self.actors[from.0].nic;
        let dst_nic = self.actors[to.0].nic;
        if src_nic == dst_nic {
            // Loopback: no NIC bandwidth, fixed local latency.
            let delay = self.nics[src_nic.0].config.local_latency;
            self.push(self.now + delay, EventKind::Deliver { to, from, msg });
            return;
        }
        let nic = &mut self.nics[src_nic.0];
        let start = nic.tx_free.max(self.now);
        let end = start + nic.config.tx.serialize(bytes);
        nic.tx_free = end;
        nic.stats.bytes_tx += bytes as u64;
        nic.stats.packets_tx += 1;
        let wait_ns = start.saturating_sub(self.now).as_nanos();
        nic.stats.record_wait(wait_ns);
        let lost = nic.config.loss > 0.0 && self.rng.gen_bool(nic.config.loss);
        if lost {
            nic.stats.packets_lost += 1;
        }
        let latency = nic.config.latency;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.bytes_tx.add(bytes as u64);
            tel.packets_tx.inc();
            tel.queue_delay.record(wait_ns);
            if lost {
                tel.packets_lost.inc();
            }
            if tel.telemetry.trace().is_enabled() {
                let (tx_track, _) = tel.nic_tracks(src_nic.0);
                tel.telemetry
                    .trace()
                    .span(tx_track, "tx", start.as_nanos(), end.as_nanos());
                if lost {
                    tel.telemetry
                        .trace()
                        .instant(tx_track, "loss", end.as_nanos());
                }
            }
        }
        if !lost {
            self.push(
                end + latency,
                EventKind::PortArrival {
                    to,
                    from,
                    msg,
                    bytes,
                },
            );
        }
    }

    /// Runs until the event queue drains (or every actor halts, whichever
    /// comes first), returning the report.
    ///
    /// # Panics
    /// Panics when the event budget is exceeded — a sign of protocol
    /// livelock.
    pub fn run(&mut self) -> RunReport {
        // Start every actor.
        for i in 0..self.actors.len() {
            self.dispatch_start(ActorId(i));
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.max_events,
                "event budget exceeded at t={} — protocol livelock?",
                self.now
            );
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::PortArrival {
                    to,
                    from,
                    msg,
                    bytes,
                } => {
                    let dst_nic = self.actors[to.0].nic;
                    let nic = &mut self.nics[dst_nic.0];
                    let start = nic.rx_free.max(self.now);
                    let end = start + nic.config.rx.serialize(bytes);
                    nic.rx_free = end;
                    nic.stats.bytes_rx += bytes as u64;
                    nic.stats.packets_rx += 1;
                    let wait_ns = start.saturating_sub(self.now).as_nanos();
                    nic.stats.record_wait(wait_ns);
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.bytes_rx.add(bytes as u64);
                        tel.packets_rx.inc();
                        tel.queue_delay.record(wait_ns);
                        if tel.telemetry.trace().is_enabled() {
                            let (_, rx_track) = tel.nic_tracks(dst_nic.0);
                            tel.telemetry.trace().span(
                                rx_track,
                                "rx",
                                start.as_nanos(),
                                end.as_nanos(),
                            );
                        }
                    }
                    self.push(end, EventKind::Deliver { to, from, msg });
                }
                EventKind::Deliver { to, from, msg } => {
                    if self.actors[to.0].halted {
                        continue;
                    }
                    self.dispatch_message(to, from, msg);
                }
                EventKind::Timer { actor, token } => {
                    if self.actors[actor.0].halted {
                        continue;
                    }
                    self.dispatch_timer(actor, token);
                }
            }
            if self.actors.iter().all(|a| a.halted) {
                break;
            }
        }
        RunReport {
            end_time: self.now,
            finished_at: self.actors.iter().map(|a| a.finished_at).collect(),
            nic_stats: self.nics.iter().map(|n| n.stats).collect(),
            events: self.events_processed,
        }
    }

    fn dispatch_start(&mut self, id: ActorId) {
        let mut ctx = Ctx {
            now: self.now,
            id,
            commands: Vec::new(),
        };
        let mut process = std::mem::replace(&mut self.actors[id.0].process, Box::new(NullProcess));
        process.on_start(&mut ctx);
        self.actors[id.0].process = process;
        self.apply_commands(id, ctx.commands);
    }

    fn dispatch_message(&mut self, to: ActorId, from: ActorId, msg: M) {
        let mut ctx = Ctx {
            now: self.now,
            id: to,
            commands: Vec::new(),
        };
        let mut process = std::mem::replace(&mut self.actors[to.0].process, Box::new(NullProcess));
        process.on_message(&mut ctx, from, msg);
        self.actors[to.0].process = process;
        self.apply_commands(to, ctx.commands);
    }

    fn dispatch_timer(&mut self, actor: ActorId, token: u64) {
        if let Some(tel) = self.telemetry.as_ref() {
            tel.timer_fires.inc();
        }
        let mut ctx = Ctx {
            now: self.now,
            id: actor,
            commands: Vec::new(),
        };
        let mut process =
            std::mem::replace(&mut self.actors[actor.0].process, Box::new(NullProcess));
        process.on_timer(&mut ctx, token);
        self.actors[actor.0].process = process;
        self.apply_commands(actor, ctx.commands);
    }
}

/// Placeholder swapped in while an actor's real process runs (re-entrant
/// dispatch cannot happen, so it never receives events).
struct NullProcess;

impl<M> Process<M> for NullProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<M>) {
        unreachable!("null process started")
    }
    fn on_message(&mut self, _ctx: &mut Ctx<M>, _from: ActorId, _msg: M) {
        unreachable!("null process messaged")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: usize = 1000;

    fn nic_10g() -> NicConfig {
        NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(5))
    }

    /// Sends `count` packets of `bytes` to actor 1 on start, then halts.
    struct Blaster {
        count: usize,
        bytes: usize,
        to: ActorId,
    }
    impl Process<u64> for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            for i in 0..self.count {
                ctx.send(self.to, i as u64, self.bytes);
            }
            ctx.halt();
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ActorId, _msg: u64) {}
    }

    /// Halts after receiving `expect` messages.
    struct Sink {
        expect: usize,
        got: usize,
    }
    impl Process<u64> for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
        fn on_message(&mut self, ctx: &mut Ctx<u64>, _from: ActorId, _msg: u64) {
            self.got += 1;
            if self.got >= self.expect {
                ctx.halt();
            }
        }
    }

    #[test]
    fn single_packet_time_is_tx_plus_latency_plus_rx() {
        let mut sim = Simulator::new(0);
        let n0 = sim.add_nic(nic_10g());
        let n1 = sim.add_nic(nic_10g());
        let sink = ActorId(1);
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 1,
                bytes: 1250,
                to: sink,
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
        let report = sim.run();
        // 1250 B at 10 Gbps = 1 µs tx + 5 µs latency + 1 µs rx = 7 µs.
        assert_eq!(report.finished_at[1], Some(SimTime::from_micros(7)));
    }

    #[test]
    fn pipelined_stream_is_bandwidth_bound() {
        let mut sim = Simulator::new(0);
        let n0 = sim.add_nic(nic_10g());
        let n1 = sim.add_nic(nic_10g());
        let count = 1000;
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count,
                bytes: KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(
            n1,
            Box::new(Sink {
                expect: count,
                got: 0,
            }),
        );
        let report = sim.run();
        // 1 MB at 10 Gbps = 800 µs; latency adds only ~6 µs pipeline fill.
        let t = report.finished_at[1].unwrap().as_secs_f64();
        assert!((t - 806e-6).abs() < 5e-6, "took {t}");
    }

    #[test]
    fn incast_queues_at_receiver_rx_port() {
        // 4 senders each push 100 KB simultaneously into one sink:
        // the sink's RX port serializes 400 KB → 320 µs at 10 Gbps.
        let mut sim = Simulator::new(0);
        let sink_nic = sim.add_nic(nic_10g());
        let mut nics = vec![];
        for _ in 0..4 {
            nics.push(sim.add_nic(nic_10g()));
        }
        let sink_id = ActorId(0);
        sim.add_actor(
            sink_nic,
            Box::new(Sink {
                expect: 400,
                got: 0,
            }),
        );
        for nic in nics {
            sim.add_actor(
                nic,
                Box::new(Blaster {
                    count: 100,
                    bytes: KB,
                    to: sink_id,
                }),
            );
        }
        let report = sim.run();
        let t = report.finished_at[0].unwrap().as_secs_f64();
        assert!((t - 320e-6).abs() < 10e-6, "took {t}");
    }

    #[test]
    fn loopback_bypasses_nic() {
        let mut sim = Simulator::new(0);
        let nic = sim.add_nic(nic_10g());
        sim.add_actor(
            nic,
            Box::new(Blaster {
                count: 10,
                bytes: 10 * KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(nic, Box::new(Sink { expect: 10, got: 0 }));
        let report = sim.run();
        // Local latency is zero by default: everything delivers at t=0.
        assert_eq!(report.finished_at[1], Some(SimTime::ZERO));
        assert_eq!(report.nic_stats[nic.0].bytes_tx, 0);
    }

    #[test]
    fn loss_drops_packets_but_charges_tx() {
        let mut sim = Simulator::new(7);
        let n0 = sim.add_nic(nic_10g().with_loss(1.0));
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 50,
                bytes: KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
        let report = sim.run();
        assert_eq!(report.nic_stats[0].packets_lost, 50);
        assert_eq!(report.nic_stats[0].packets_tx, 50);
        assert_eq!(report.nic_stats[1].packets_rx, 0);
        assert_eq!(report.finished_at[1], None); // sink never finished
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<u64>,
        }
        impl Process<u64> for TimerActor {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.set_timer(SimTime::from_micros(30), 3);
                ctx.set_timer(SimTime::from_micros(10), 1);
                ctx.set_timer(SimTime::from_micros(20), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<u64>, _f: ActorId, _m: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<u64>, token: u64) {
                self.fired.push(token);
                if self.fired.len() == 3 {
                    assert_eq!(self.fired, vec![1, 2, 3]);
                    assert_eq!(ctx.now(), SimTime::from_micros(30));
                    ctx.halt();
                }
            }
        }
        let mut sim = Simulator::new(0);
        let nic = sim.add_nic(nic_10g());
        sim.add_actor(nic, Box::new(TimerActor { fired: vec![] }));
        let report = sim.run();
        assert_eq!(report.finished_at[0], Some(SimTime::from_micros(30)));
    }

    #[test]
    fn stats_account_bytes() {
        let mut sim = Simulator::new(0);
        let n0 = sim.add_nic(nic_10g());
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 3,
                bytes: 500,
                to: ActorId(1),
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 3, got: 0 }));
        let report = sim.run();
        assert_eq!(report.nic_stats[0].bytes_tx, 1500);
        assert_eq!(report.nic_stats[1].bytes_rx, 1500);
        assert_eq!(report.nic_stats[0].packets_tx, 3);
    }

    #[test]
    fn queue_delay_accumulates_on_busy_ports() {
        // 10 back-to-back packets on one TX port: packet k waits
        // k * serialize(1 KB) = k * 800 ns, so the sum is 36 µs.
        let mut sim = Simulator::new(0);
        let n0 = sim.add_nic(nic_10g());
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 10,
                bytes: KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 10, got: 0 }));
        let report = sim.run();
        let tx = report.nic_stats[0];
        assert_eq!(tx.queue_delay_sum, 36_000);
        assert_eq!(tx.queue_delay_max, 7_200);
    }

    #[test]
    fn telemetry_counters_match_nic_stats() {
        use omnireduce_telemetry::Telemetry;
        let telemetry = Telemetry::with_tracing(256);
        let mut sim = Simulator::new(7);
        sim.attach_telemetry(telemetry.clone());
        let n0 = sim.add_nic(nic_10g().with_loss(0.3));
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 40,
                bytes: KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
        let report = sim.run();
        let snap = telemetry.snapshot();
        let tx_bytes: u64 = report.nic_stats.iter().map(|s| s.bytes_tx).sum();
        let rx_bytes: u64 = report.nic_stats.iter().map(|s| s.bytes_rx).sum();
        let lost: u64 = report.nic_stats.iter().map(|s| s.packets_lost).sum();
        assert_eq!(snap.counter("simnet.nic.bytes_tx"), tx_bytes);
        assert_eq!(snap.counter("simnet.nic.bytes_rx"), rx_bytes);
        assert_eq!(snap.counter("simnet.nic.packets_lost"), lost);
        assert!(lost > 0, "expected the lossy NIC to drop something");
        // Every TX/RX serialization left a span; losses left instants.
        assert!(!telemetry.trace().is_empty());
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn livelock_hits_event_budget() {
        /// Two actors ping-pong forever.
        struct Pinger {
            peer: ActorId,
        }
        impl Process<u64> for Pinger {
            fn on_start(&mut self, ctx: &mut Ctx<u64>) {
                ctx.send(self.peer, 0, 100);
            }
            fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
                ctx.send(from, msg + 1, 100);
            }
        }
        let mut sim = Simulator::new(0);
        let n0 = sim.add_nic(nic_10g());
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(n0, Box::new(Pinger { peer: ActorId(1) }));
        sim.add_actor(n1, Box::new(Pinger { peer: ActorId(0) }));
        sim.set_max_events(1000);
        let _ = sim.run();
    }

    #[test]
    fn run_is_deterministic() {
        let run_once = |seed| {
            let mut sim = Simulator::new(seed);
            let n0 = sim.add_nic(nic_10g().with_loss(0.2));
            let n1 = sim.add_nic(nic_10g());
            sim.add_actor(
                n0,
                Box::new(Blaster {
                    count: 100,
                    bytes: KB,
                    to: ActorId(1),
                }),
            );
            sim.add_actor(n1, Box::new(Sink { expect: 50, got: 0 }));
            let r = sim.run();
            (r.finished_at[1], r.nic_stats[0].packets_lost)
        };
        assert_eq!(run_once(3), run_once(3));
    }
}

#[cfg(test)]
mod conservation_tests {
    use super::*;
    use proptest::prelude::*;

    /// Sends a fixed schedule of packets, then halts.
    struct Script {
        sends: Vec<(ActorId, usize)>,
    }
    impl Process<u8> for Script {
        fn on_start(&mut self, ctx: &mut Ctx<u8>) {
            for (to, bytes) in &self.sends {
                ctx.send(*to, 0, *bytes);
            }
            ctx.mark_done();
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {}
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Conservation: every transmitted byte is either delivered or
        /// lost, never duplicated or invented, for arbitrary topologies
        /// and loss rates.
        #[test]
        fn prop_bytes_conserved(
            n in 2usize..5,
            loss in 0.0f64..0.5,
            sends in prop::collection::vec((0usize..4, 1usize..50_000), 1..40),
            seed in 0u64..500,
        ) {
            let mut sim: Simulator<u8> = Simulator::new(seed);
            let nics: Vec<_> = (0..n)
                .map(|_| {
                    sim.add_nic(
                        NicConfig::symmetric(
                            Bandwidth::gbps(10.0),
                            SimTime::from_micros(5),
                        )
                        .with_loss(loss),
                    )
                })
                .collect();
            let mut schedules: Vec<Vec<(ActorId, usize)>> = vec![Vec::new(); n];
            let mut expected_tx = vec![0u64; n];
            for (i, (to, bytes)) in sends.into_iter().enumerate() {
                let from = i % n;
                let to = to % n;
                if from == to {
                    continue; // loopback bypasses the NICs
                }
                schedules[from].push((ActorId(to), bytes));
                expected_tx[from] += bytes as u64;
            }
            for (i, sched) in schedules.into_iter().enumerate() {
                sim.add_actor(nics[i], Box::new(Script { sends: sched }));
            }
            let report = sim.run();
            let total_tx: u64 = report.nic_stats.iter().map(|s| s.bytes_tx).sum();
            let total_rx: u64 = report.nic_stats.iter().map(|s| s.bytes_rx).sum();
            prop_assert_eq!(total_tx, expected_tx.iter().sum::<u64>());
            prop_assert!(total_rx <= total_tx);
            let pkts_tx: u64 = report.nic_stats.iter().map(|s| s.packets_tx).sum();
            let pkts_rx: u64 = report.nic_stats.iter().map(|s| s.packets_rx).sum();
            let lost: u64 = report.nic_stats.iter().map(|s| s.packets_lost).sum();
            prop_assert_eq!(pkts_tx, pkts_rx + lost);
            if loss == 0.0 {
                prop_assert_eq!(total_rx, total_tx);
            }
        }
    }

    #[test]
    fn asymmetric_nic_rates_bound_by_slower_port() {
        // Fast sender (100 Gbps TX) into slow receiver (10 Gbps RX):
        // delivery is RX-bound.
        let mut sim: Simulator<u8> = Simulator::new(0);
        let fast = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(100.0),
            rx: Bandwidth::gbps(100.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        });
        let slow = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(10.0),
            rx: Bandwidth::gbps(10.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        });
        sim.add_actor(
            fast,
            Box::new(Script {
                sends: (0..100).map(|_| (ActorId(1), 12_500usize)).collect(),
            }),
        );
        struct Count {
            got: usize,
        }
        impl Process<u8> for Count {
            fn on_start(&mut self, _ctx: &mut Ctx<u8>) {}
            fn on_message(&mut self, ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {
                self.got += 1;
                if self.got == 100 {
                    ctx.halt();
                }
            }
        }
        sim.add_actor(slow, Box::new(Count { got: 0 }));
        let report = sim.run();
        // 1.25 MB at 10 Gbps = 1 ms (RX-bound), not 0.1 ms (TX rate).
        let t = report.finished_at[1].unwrap().as_secs_f64();
        assert!((t - 1e-3).abs() < 5e-5, "took {t}");
    }

    #[test]
    fn local_latency_delays_loopback() {
        let mut sim: Simulator<u8> = Simulator::new(0);
        let nic = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(10.0),
            rx: Bandwidth::gbps(10.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::from_micros(3),
        });
        sim.add_actor(
            nic,
            Box::new(Script {
                sends: vec![(ActorId(1), 100)],
            }),
        );
        struct One;
        impl Process<u8> for One {
            fn on_start(&mut self, _ctx: &mut Ctx<u8>) {}
            fn on_message(&mut self, ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {
                ctx.halt();
            }
        }
        sim.add_actor(nic, Box::new(One));
        let report = sim.run();
        assert_eq!(report.finished_at[1], Some(SimTime::from_micros(3)));
    }
}
