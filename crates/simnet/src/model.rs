//! Pluggable link models: how bytes occupy a port over time.
//!
//! The engine owns event scheduling and NIC bookkeeping; the link model
//! answers one question — *given a port that frees at `free` and a
//! packet of `bytes` arriving at `now`, when does serialization start
//! and end?* Swapping the model changes the fabric's timing behaviour
//! without touching engine stepping or any protocol actor.

use crate::nic::NicConfig;
use crate::time::SimTime;

/// A port occupancy interval computed by a [`LinkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSlot {
    /// When serialization begins (≥ `now`; the gap is queueing delay).
    pub start: SimTime,
    /// When the last bit clears the port.
    pub end: SimTime,
}

/// Timing policy for a NIC's TX and RX ports.
pub trait LinkModel: Send + Sync {
    /// Schedules `bytes` on the TX port that frees at `free`.
    fn tx_slot(&self, cfg: &NicConfig, free: SimTime, now: SimTime, bytes: usize) -> PortSlot;
    /// Schedules `bytes` on the RX port that frees at `free`.
    fn rx_slot(&self, cfg: &NicConfig, free: SimTime, now: SimTime, bytes: usize) -> PortSlot;
}

/// The default two-stage store-and-forward model: packets serialize
/// FIFO at the port rate, on TX before propagation and on RX after.
/// Reproduces the two behaviours the paper's protocols live and die
/// by — *incast queueing* at an aggregator's RX port and *egress
/// serialization* of result multicasts on its TX port.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreAndForward;

impl LinkModel for StoreAndForward {
    fn tx_slot(&self, cfg: &NicConfig, free: SimTime, now: SimTime, bytes: usize) -> PortSlot {
        let start = free.max(now);
        PortSlot {
            start,
            end: start + cfg.tx.serialize(bytes),
        }
    }

    fn rx_slot(&self, cfg: &NicConfig, free: SimTime, now: SimTime, bytes: usize) -> PortSlot {
        let start = free.max(now);
        PortSlot {
            start,
            end: start + cfg.rx.serialize(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Bandwidth;

    #[test]
    fn store_and_forward_queues_behind_busy_port() {
        let cfg = NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(5));
        let m = StoreAndForward;
        // Port free: starts immediately, 1 KB at 10 Gbps = 800 ns.
        let slot = m.tx_slot(&cfg, SimTime::ZERO, SimTime::from_nanos(100), 1000);
        assert_eq!(slot.start, SimTime::from_nanos(100));
        assert_eq!(slot.end, SimTime::from_nanos(900));
        // Port busy until 2 µs: waits, then serializes.
        let slot = m.rx_slot(
            &cfg,
            SimTime::from_micros(2),
            SimTime::from_nanos(100),
            1000,
        );
        assert_eq!(slot.start, SimTime::from_micros(2));
        assert_eq!(slot.end, SimTime::from_nanos(2800));
    }
}
