//! Event representation and the event-queue abstraction.
//!
//! The engine orders events by a **canonical key** that is computable
//! locally by the emitting actor — `(time, source actor, per-source
//! emission sequence, hop rank)` — rather than by a global insertion
//! counter. A global counter encodes the *execution* order of the
//! engine loop, which differs between a sequential drain and a
//! partitioned parallel run; the canonical key depends only on each
//! actor's own deterministic dispatch history, so every execution mode
//! assigns every event the same key. That is the foundation of the
//! cross-thread bit-identical guarantee (DESIGN.md §13).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::actor::ActorId;
use crate::time::SimTime;

/// Where an event sits in a packet's store-and-forward pipeline.
/// Orders `PortArrival` before the `Deliver` it spawns when RX
/// serialization is instantaneous (both then carry the same
/// `(src, seq)` tag and timestamp).
pub const RANK_PORT_ARRIVAL: u8 = 0;
/// Rank of a message delivery (network RX completion or loopback).
pub const RANK_DELIVER: u8 = 1;
/// Rank of a timer expiry.
pub const RANK_TIMER: u8 = 2;

/// Canonical, execution-order-independent event ordering key.
///
/// * `time` — simulated timestamp.
/// * `src` — the actor whose handler emitted the originating command
///   (for a network packet, the sender; for a timer, the owner).
/// * `seq` — that actor's monotonically increasing emission counter.
///   A packet keeps its `(src, seq)` tag across hops: the `Deliver`
///   spawned by a `PortArrival` reuses the packet's tag.
/// * `rank` — pipeline stage tiebreak for events sharing a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulated timestamp.
    pub time: SimTime,
    /// Emitting actor.
    pub src: ActorId,
    /// Per-source emission sequence number.
    pub seq: u64,
    /// Pipeline-stage rank (see the `RANK_*` constants).
    pub rank: u8,
}

/// What happens when an event fires.
pub enum EventKind<M> {
    /// Packet reaches the receiver's RX port (before RX serialization).
    PortArrival {
        /// Destination actor.
        to: ActorId,
        /// Sending actor.
        from: ActorId,
        /// Payload.
        msg: M,
        /// Wire bytes charged to the receiver's RX port.
        bytes: usize,
    },
    /// Message fully received; dispatch to the actor.
    Deliver {
        /// Destination actor.
        to: ActorId,
        /// Sending actor.
        from: ActorId,
        /// Payload.
        msg: M,
    },
    /// Timer fires.
    Timer {
        /// Owning actor.
        actor: ActorId,
        /// Token passed back to `on_timer`.
        token: u64,
    },
}

/// A scheduled event.
pub struct Event<M> {
    /// Canonical ordering key.
    pub key: EventKey,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Pending-event storage, pluggable so alternative structures (calendar
/// queues, ladder queues) can be swapped in without touching the engine
/// (see `Simulator::set_event_queue`).
///
/// The engine requires `pop` to return the minimum-key event among
/// those currently queued; ties cannot occur because keys are unique
/// (per-source sequences never repeat).
pub trait EventQueue<M> {
    /// Inserts an event.
    fn push(&mut self, ev: Event<M>);
    /// Removes and returns the minimum-key event.
    fn pop(&mut self) -> Option<Event<M>>;
    /// Timestamp of the minimum-key event, if any.
    fn next_time(&self) -> Option<SimTime>;
    /// Number of queued events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Default binary-heap event queue.
pub struct HeapQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
}

impl<M> Default for HeapQueue<M> {
    fn default() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> EventQueue<M> for HeapQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        self.heap.push(Reverse(ev));
    }
    fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.key.time)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ns: u64, src: usize, seq: u64, rank: u8) -> EventKey {
        EventKey {
            time: SimTime::from_nanos(ns),
            src: ActorId(src),
            seq,
            rank,
        }
    }

    #[test]
    fn key_orders_time_then_source_then_seq_then_rank() {
        assert!(key(1, 9, 9, 2) < key(2, 0, 0, 0));
        assert!(key(5, 1, 9, 2) < key(5, 2, 0, 0));
        assert!(key(5, 1, 3, 2) < key(5, 1, 4, 0));
        assert!(key(5, 1, 3, RANK_PORT_ARRIVAL) < key(5, 1, 3, RANK_DELIVER));
    }

    #[test]
    fn heap_queue_pops_in_key_order() {
        let mut q: HeapQueue<u8> = HeapQueue::default();
        for (ns, src) in [(30u64, 0usize), (10, 2), (10, 1), (20, 0)] {
            q.push(Event {
                key: key(ns, src, 1, RANK_DELIVER),
                kind: EventKind::Timer {
                    actor: ActorId(src),
                    token: 0,
                },
            });
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.key.time.as_nanos(), ev.key.src.0));
        }
        assert_eq!(popped, vec![(10, 1), (10, 2), (20, 0), (30, 0)]);
    }
}
