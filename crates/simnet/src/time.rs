//! Simulated time and link-rate units.
//!
//! Time is kept in integer nanoseconds so event ordering is exact and
//! runs are bit-reproducible; bandwidths are converted to ns-per-byte at
//! the edge.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds from (possibly fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since epoch as `f64` — the unit the paper's figures
    /// use.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("negative sim time"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A link rate. Stored as bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From gigabits per second (the paper's 10 Gbps / 100 Gbps fabrics).
    pub fn gbps(g: f64) -> Self {
        assert!(g > 0.0 && g.is_finite(), "invalid bandwidth {g}");
        Bandwidth(g * 1e9 / 8.0)
    }

    /// From bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "invalid bandwidth {b}");
        Bandwidth(b)
    }

    /// Bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialize(self, bytes: usize) -> SimTime {
        SimTime(((bytes as f64) / self.0 * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert!((SimTime::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
        assert!((SimTime::from_millis(7).as_millis_f64() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a + b, SimTime(140));
        assert_eq!(a - b, SimTime(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(140));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_sub_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn gbps_serialization_time() {
        // 10 Gbps = 1.25 GB/s → 1250 bytes take 1 µs.
        let bw = Bandwidth::gbps(10.0);
        assert_eq!(bw.serialize(1250), SimTime::from_micros(1));
        // 100 Gbps → 12500 bytes take 1 µs.
        assert_eq!(
            Bandwidth::gbps(100.0).serialize(12500),
            SimTime::from_micros(1)
        );
    }

    #[test]
    fn zero_bytes_serialize_instantly() {
        assert_eq!(Bandwidth::gbps(10.0).serialize(0), SimTime::ZERO);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
    }
}
