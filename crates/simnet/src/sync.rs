//! Poisonable barrier for the parallel engine's window synchronization.
//!
//! `std::sync::Barrier` deadlocks the fleet if one participant panics
//! (the rest wait forever for an arrival that never comes). Conservative
//! DES needs three fleet-wide waits per window, and protocol actors are
//! allowed to panic (event-budget livelock guard, protocol asserts), so
//! every wait here is fallible: a panicking partition poisons the
//! barrier on unwind, blocked peers observe the poison and bail out, and
//! the original panic propagates from `std::thread::scope`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Sense-reversing counting barrier with a poison flag.
pub(crate) struct PoisonBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

/// Returned from a wait that was cut short by a peer's panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Poisoned;

impl PoisonBarrier {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n > 0);
        PoisonBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all `n` participants arrive (or the barrier is
    /// poisoned). Returns `Ok(true)` on exactly one participant per
    /// round — the "leader" slot used to reset shared reduction cells.
    pub(crate) fn wait(&self) -> Result<bool, Poisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Poisoned);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            if self.poisoned.load(Ordering::Acquire) {
                return Err(Poisoned);
            }
            return Ok(true);
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(Poisoned);
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Poisoned);
        }
        Ok(false)
    }

    /// Marks the barrier poisoned and releases every blocked waiter.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        // Bump the generation so spinners re-check the flag even if they
        // raced past the load above.
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// Poisons the barrier if dropped while armed — armed drops only happen
/// during a panic unwind of the owning partition thread.
pub(crate) struct PoisonGuard<'a> {
    barrier: &'a PoisonBarrier,
    armed: bool,
}

impl<'a> PoisonGuard<'a> {
    pub(crate) fn new(barrier: &'a PoisonBarrier) -> Self {
        PoisonGuard {
            barrier,
            armed: true,
        }
    }
    pub(crate) fn defuse(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn barrier_synchronizes_and_elects_one_leader_per_round() {
        let n = 4;
        let barrier = PoisonBarrier::new(n);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait().expect("not poisoned") {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn poison_releases_blocked_waiters() {
        let barrier = PoisonBarrier::new(3);
        std::thread::scope(|s| {
            let h1 = s.spawn(|| barrier.wait());
            let h2 = s.spawn(|| barrier.wait());
            // Third participant never arrives; poison instead.
            std::thread::sleep(std::time::Duration::from_millis(10));
            barrier.poison();
            assert_eq!(h1.join().unwrap(), Err(Poisoned));
            assert_eq!(h2.join().unwrap(), Err(Poisoned));
        });
    }

    #[test]
    fn guard_poisons_on_unwind() {
        let barrier = PoisonBarrier::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = PoisonGuard::new(&barrier);
            panic!("partition died");
        }));
        assert!(result.is_err());
        assert_eq!(barrier.wait(), Err(Poisoned));
    }
}
