//! The actor-side API: protocol state machines and their handler
//! context. Unchanged from the sequential engine — actors cannot tell
//! which execution mode is driving them.

use crate::time::SimTime;

/// Identifies an actor within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// An event-driven protocol state machine.
pub trait Process<M> {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<M>);

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: ActorId, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<M>, _token: u64) {}
}

/// Handler-side view of the simulator. Commands are buffered and applied
/// by the simulator after the handler returns.
pub struct Ctx<M> {
    pub(crate) now: SimTime,
    pub(crate) id: ActorId,
    pub(crate) commands: Vec<Command<M>>,
}

pub(crate) enum Command<M> {
    Send { to: ActorId, msg: M, bytes: usize },
    Timer { delay: SimTime, token: u64 },
    Halt,
    MarkDone,
}

impl<M> Ctx<M> {
    pub(crate) fn new(now: SimTime, id: ActorId) -> Self {
        Ctx {
            now,
            id,
            commands: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Sends `msg` to `to`, charging `bytes` to the network (payload plus
    /// whatever header accounting the protocol wants).
    pub fn send(&mut self, to: ActorId, msg: M, bytes: usize) {
        self.commands.push(Command::Send { to, msg, bytes });
    }

    /// Arms a timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.commands.push(Command::Timer { delay, token });
    }

    /// Marks this actor finished; the simulator records the time and
    /// drops any further events addressed to it.
    pub fn halt(&mut self) {
        self.commands.push(Command::Halt);
    }

    /// Records this actor's finish time *without* halting it: the actor
    /// keeps receiving and forwarding events (needed by ring protocols,
    /// where a node is done with its own data while still relaying other
    /// nodes' tokens). The simulation then ends when the event queue
    /// drains.
    pub fn mark_done(&mut self) {
        self.commands.push(Command::MarkDone);
    }
}
