//! Packet-level discrete-event network simulator.
//!
//! The paper's evaluation runs on 10 Gbps and 100 Gbps testbeds that this
//! reproduction doesn't have; `simnet` substitutes a deterministic
//! packet-level simulation of those fabrics. Collective protocols are
//! written as event-driven [`Process`] state machines (the same structure
//! as their executable counterparts over real transports) and run against
//! NICs with configurable transmit/receive rates, propagation latency and
//! Bernoulli loss.
//!
//! The model is intentionally minimal but captures everything the paper's
//! protocol comparisons depend on:
//!
//! * per-packet serialization at line rate on both the sender's TX port
//!   and the receiver's RX port (store-and-forward, pluggable via
//!   [`LinkModel`]);
//! * FIFO queueing at both ports — so incast (many workers, one
//!   aggregator port) and multicast fan-out (one aggregator port, many
//!   workers) cost what they cost in a real switch fabric;
//! * propagation latency `α`, the term that dominates for small inputs in
//!   the §3.4 cost model, plus optional multi-rack extra hops via
//!   [`Topology`];
//! * deterministic, seedable packet loss for the Appendix A/D recovery
//!   experiments — per-NIC streams, so runs are reproducible under any
//!   thread count.
//!
//! The engine executes either as a classic sequential drain or as a
//! conservative bounded-lookahead parallel run on OS threads
//! ([`Simulator::set_threads`]); both modes produce bit-identical
//! observables (see `engine.rs` and DESIGN.md §13).
//!
//! What it deliberately does not model: TCP congestion control dynamics,
//! switch buffer occupancy, or cross-traffic — none of which the paper's
//! single-tenant testbed exercises either.

pub mod actor;
pub mod engine;
pub mod event;
pub mod model;
pub mod nic;
mod sync;
pub mod time;
pub mod topology;

pub use actor::{ActorId, Ctx, Process};
pub use engine::{RunReport, Simulator};
pub use event::{Event, EventKey, EventKind, EventQueue, HeapQueue};
pub use model::{LinkModel, PortSlot, StoreAndForward};
pub use nic::{NicConfig, NicId, NicStats};
pub use time::{Bandwidth, SimTime};
pub use topology::{FlatTopology, RackTopology, Topology};
