//! Engine conformance tests, carried over from the sequential
//! simulator: the parallel rebuild must preserve every timing,
//! accounting, and determinism property the old event loop had.

use omnireduce_simnet::{ActorId, Bandwidth, Ctx, NicConfig, Process, SimTime, Simulator};

const KB: usize = 1000;

fn nic_10g() -> NicConfig {
    NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(5))
}

/// Sends `count` packets of `bytes` to a target on start, then halts.
struct Blaster {
    count: usize,
    bytes: usize,
    to: ActorId,
}
impl Process<u64> for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        for i in 0..self.count {
            ctx.send(self.to, i as u64, self.bytes);
        }
        ctx.halt();
    }
    fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: ActorId, _msg: u64) {}
}

/// Halts after receiving `expect` messages.
struct Sink {
    expect: usize,
    got: usize,
}
impl Process<u64> for Sink {
    fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
    fn on_message(&mut self, ctx: &mut Ctx<u64>, _from: ActorId, _msg: u64) {
        self.got += 1;
        if self.got >= self.expect {
            ctx.halt();
        }
    }
}

#[test]
fn single_packet_time_is_tx_plus_latency_plus_rx() {
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    let sink = ActorId(1);
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count: 1,
            bytes: 1250,
            to: sink,
        }),
    );
    sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
    let report = sim.run();
    // 1250 B at 10 Gbps = 1 µs tx + 5 µs latency + 1 µs rx = 7 µs.
    assert_eq!(report.finished_at[1], Some(SimTime::from_micros(7)));
}

#[test]
fn pipelined_stream_is_bandwidth_bound() {
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    let count = 1000;
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count,
            bytes: KB,
            to: ActorId(1),
        }),
    );
    sim.add_actor(
        n1,
        Box::new(Sink {
            expect: count,
            got: 0,
        }),
    );
    let report = sim.run();
    // 1 MB at 10 Gbps = 800 µs; latency adds only ~6 µs pipeline fill.
    let t = report.finished_at[1].unwrap().as_secs_f64();
    assert!((t - 806e-6).abs() < 5e-6, "took {t}");
}

#[test]
fn incast_queues_at_receiver_rx_port() {
    // 4 senders each push 100 KB simultaneously into one sink:
    // the sink's RX port serializes 400 KB → 320 µs at 10 Gbps.
    let mut sim = Simulator::new(0);
    let sink_nic = sim.add_nic(nic_10g());
    let mut nics = vec![];
    for _ in 0..4 {
        nics.push(sim.add_nic(nic_10g()));
    }
    let sink_id = ActorId(0);
    sim.add_actor(
        sink_nic,
        Box::new(Sink {
            expect: 400,
            got: 0,
        }),
    );
    for nic in nics {
        sim.add_actor(
            nic,
            Box::new(Blaster {
                count: 100,
                bytes: KB,
                to: sink_id,
            }),
        );
    }
    let report = sim.run();
    let t = report.finished_at[0].unwrap().as_secs_f64();
    assert!((t - 320e-6).abs() < 10e-6, "took {t}");
}

#[test]
fn loopback_bypasses_nic() {
    let mut sim = Simulator::new(0);
    let nic = sim.add_nic(nic_10g());
    sim.add_actor(
        nic,
        Box::new(Blaster {
            count: 10,
            bytes: 10 * KB,
            to: ActorId(1),
        }),
    );
    sim.add_actor(nic, Box::new(Sink { expect: 10, got: 0 }));
    let report = sim.run();
    // Local latency is zero by default: everything delivers at t=0.
    assert_eq!(report.finished_at[1], Some(SimTime::ZERO));
    assert_eq!(report.nic_stats[nic.0].bytes_tx, 0);
}

#[test]
fn loss_drops_packets_but_charges_tx() {
    let mut sim = Simulator::new(7);
    let n0 = sim.add_nic(nic_10g().with_loss(1.0));
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count: 50,
            bytes: KB,
            to: ActorId(1),
        }),
    );
    sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
    let report = sim.run();
    assert_eq!(report.nic_stats[0].packets_lost, 50);
    assert_eq!(report.nic_stats[0].packets_tx, 50);
    assert_eq!(report.nic_stats[1].packets_rx, 0);
    assert_eq!(report.finished_at[1], None); // sink never finished
}

#[test]
fn timers_fire_in_order() {
    struct TimerActor {
        fired: Vec<u64>,
    }
    impl Process<u64> for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            ctx.set_timer(SimTime::from_micros(30), 3);
            ctx.set_timer(SimTime::from_micros(10), 1);
            ctx.set_timer(SimTime::from_micros(20), 2);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u64>, _f: ActorId, _m: u64) {}
        fn on_timer(&mut self, ctx: &mut Ctx<u64>, token: u64) {
            self.fired.push(token);
            if self.fired.len() == 3 {
                assert_eq!(self.fired, vec![1, 2, 3]);
                assert_eq!(ctx.now(), SimTime::from_micros(30));
                ctx.halt();
            }
        }
    }
    let mut sim = Simulator::new(0);
    let nic = sim.add_nic(nic_10g());
    sim.add_actor(nic, Box::new(TimerActor { fired: vec![] }));
    let report = sim.run();
    assert_eq!(report.finished_at[0], Some(SimTime::from_micros(30)));
}

#[test]
fn stats_account_bytes() {
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count: 3,
            bytes: 500,
            to: ActorId(1),
        }),
    );
    sim.add_actor(n1, Box::new(Sink { expect: 3, got: 0 }));
    let report = sim.run();
    assert_eq!(report.nic_stats[0].bytes_tx, 1500);
    assert_eq!(report.nic_stats[1].bytes_rx, 1500);
    assert_eq!(report.nic_stats[0].packets_tx, 3);
}

#[test]
fn queue_delay_accumulates_on_busy_ports() {
    // 10 back-to-back packets on one TX port: packet k waits
    // k * serialize(1 KB) = k * 800 ns, so the sum is 36 µs.
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count: 10,
            bytes: KB,
            to: ActorId(1),
        }),
    );
    sim.add_actor(n1, Box::new(Sink { expect: 10, got: 0 }));
    let report = sim.run();
    let tx = report.nic_stats[0];
    assert_eq!(tx.queue_delay_sum, 36_000);
    assert_eq!(tx.queue_delay_max, 7_200);
}

#[test]
fn telemetry_counters_match_nic_stats() {
    use omnireduce_telemetry::Telemetry;
    let telemetry = Telemetry::with_tracing(256);
    let mut sim = Simulator::new(7);
    sim.attach_telemetry(telemetry.clone());
    let n0 = sim.add_nic(nic_10g().with_loss(0.3));
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(
        n0,
        Box::new(Blaster {
            count: 40,
            bytes: KB,
            to: ActorId(1),
        }),
    );
    sim.add_actor(n1, Box::new(Sink { expect: 1, got: 0 }));
    let report = sim.run();
    let snap = telemetry.snapshot();
    let tx_bytes: u64 = report.nic_stats.iter().map(|s| s.bytes_tx).sum();
    let rx_bytes: u64 = report.nic_stats.iter().map(|s| s.bytes_rx).sum();
    let lost: u64 = report.nic_stats.iter().map(|s| s.packets_lost).sum();
    assert_eq!(snap.counter("simnet.nic.bytes_tx"), tx_bytes);
    assert_eq!(snap.counter("simnet.nic.bytes_rx"), rx_bytes);
    assert_eq!(snap.counter("simnet.nic.packets_lost"), lost);
    assert!(lost > 0, "expected the lossy NIC to drop something");
    // Every TX/RX serialization left a span; losses left instants.
    assert!(!telemetry.trace().is_empty());
}

#[test]
#[should_panic(expected = "event budget")]
fn livelock_hits_event_budget() {
    /// Two actors ping-pong forever.
    struct Pinger {
        peer: ActorId,
    }
    impl Process<u64> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            ctx.send(self.peer, 0, 100);
        }
        fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
            ctx.send(from, msg + 1, 100);
        }
    }
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(n0, Box::new(Pinger { peer: ActorId(1) }));
    sim.add_actor(n1, Box::new(Pinger { peer: ActorId(0) }));
    sim.set_max_events(1000);
    let _ = sim.run();
}

#[test]
#[should_panic(expected = "event budget")]
fn livelock_hits_event_budget_parallel() {
    /// Same livelock, caught from inside a partition thread: the
    /// panicking partition must poison the window barrier so its peers
    /// exit instead of deadlocking, and the panic must propagate.
    struct Pinger {
        peer: ActorId,
    }
    impl Process<u64> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            ctx.send(self.peer, 0, 100);
        }
        fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
            ctx.send(from, msg + 1, 100);
        }
    }
    let mut sim = Simulator::new(0);
    let n0 = sim.add_nic(nic_10g());
    let n1 = sim.add_nic(nic_10g());
    sim.add_actor(n0, Box::new(Pinger { peer: ActorId(1) }));
    sim.add_actor(n1, Box::new(Pinger { peer: ActorId(0) }));
    sim.set_threads(2);
    sim.set_max_events(1000);
    let _ = sim.run();
}

#[test]
fn run_is_deterministic() {
    let run_once = |seed| {
        let mut sim = Simulator::new(seed);
        let n0 = sim.add_nic(nic_10g().with_loss(0.2));
        let n1 = sim.add_nic(nic_10g());
        sim.add_actor(
            n0,
            Box::new(Blaster {
                count: 100,
                bytes: KB,
                to: ActorId(1),
            }),
        );
        sim.add_actor(n1, Box::new(Sink { expect: 50, got: 0 }));
        let r = sim.run();
        (r.finished_at[1], r.nic_stats[0].packets_lost)
    };
    assert_eq!(run_once(3), run_once(3));
}

mod conservation {
    use super::*;
    use proptest::prelude::*;

    /// Sends a fixed schedule of packets, then halts.
    struct Script {
        sends: Vec<(ActorId, usize)>,
    }
    impl Process<u8> for Script {
        fn on_start(&mut self, ctx: &mut Ctx<u8>) {
            for (to, bytes) in &self.sends {
                ctx.send(*to, 0, *bytes);
            }
            ctx.mark_done();
        }
        fn on_message(&mut self, _ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {}
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Conservation: every transmitted byte is either delivered or
        /// lost, never duplicated or invented, for arbitrary topologies
        /// and loss rates — under sequential AND parallel execution.
        #[test]
        fn prop_bytes_conserved(
            n in 2usize..5,
            loss in 0.0f64..0.5,
            sends in prop::collection::vec((0usize..4, 1usize..50_000), 1..40),
            seed in 0u64..500,
            threads in 1usize..4,
        ) {
            let mut sim: Simulator<u8> = Simulator::new(seed);
            sim.set_threads(threads);
            let nics: Vec<_> = (0..n)
                .map(|_| {
                    sim.add_nic(
                        NicConfig::symmetric(
                            Bandwidth::gbps(10.0),
                            SimTime::from_micros(5),
                        )
                        .with_loss(loss),
                    )
                })
                .collect();
            let mut schedules: Vec<Vec<(ActorId, usize)>> = vec![Vec::new(); n];
            let mut expected_tx = vec![0u64; n];
            for (i, (to, bytes)) in sends.into_iter().enumerate() {
                let from = i % n;
                let to = to % n;
                if from == to {
                    continue; // loopback bypasses the NICs
                }
                schedules[from].push((ActorId(to), bytes));
                expected_tx[from] += bytes as u64;
            }
            for (i, sched) in schedules.into_iter().enumerate() {
                sim.add_actor(nics[i], Box::new(Script { sends: sched }));
            }
            let report = sim.run();
            let total_tx: u64 = report.nic_stats.iter().map(|s| s.bytes_tx).sum();
            let total_rx: u64 = report.nic_stats.iter().map(|s| s.bytes_rx).sum();
            prop_assert_eq!(total_tx, expected_tx.iter().sum::<u64>());
            prop_assert!(total_rx <= total_tx);
            let pkts_tx: u64 = report.nic_stats.iter().map(|s| s.packets_tx).sum();
            let pkts_rx: u64 = report.nic_stats.iter().map(|s| s.packets_rx).sum();
            let lost: u64 = report.nic_stats.iter().map(|s| s.packets_lost).sum();
            prop_assert_eq!(pkts_tx, pkts_rx + lost);
            if loss == 0.0 {
                prop_assert_eq!(total_rx, total_tx);
            }
        }
    }

    #[test]
    fn asymmetric_nic_rates_bound_by_slower_port() {
        // Fast sender (100 Gbps TX) into slow receiver (10 Gbps RX):
        // delivery is RX-bound.
        let mut sim: Simulator<u8> = Simulator::new(0);
        let fast = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(100.0),
            rx: Bandwidth::gbps(100.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        });
        let slow = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(10.0),
            rx: Bandwidth::gbps(10.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::ZERO,
        });
        sim.add_actor(
            fast,
            Box::new(Script {
                sends: (0..100).map(|_| (ActorId(1), 12_500usize)).collect(),
            }),
        );
        struct Count {
            got: usize,
        }
        impl Process<u8> for Count {
            fn on_start(&mut self, _ctx: &mut Ctx<u8>) {}
            fn on_message(&mut self, ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {
                self.got += 1;
                if self.got == 100 {
                    ctx.halt();
                }
            }
        }
        sim.add_actor(slow, Box::new(Count { got: 0 }));
        let report = sim.run();
        // 1.25 MB at 10 Gbps = 1 ms (RX-bound), not 0.1 ms (TX rate).
        let t = report.finished_at[1].unwrap().as_secs_f64();
        assert!((t - 1e-3).abs() < 5e-5, "took {t}");
    }

    #[test]
    fn local_latency_delays_loopback() {
        let mut sim: Simulator<u8> = Simulator::new(0);
        let nic = sim.add_nic(NicConfig {
            tx: Bandwidth::gbps(10.0),
            rx: Bandwidth::gbps(10.0),
            latency: SimTime::ZERO,
            loss: 0.0,
            local_latency: SimTime::from_micros(3),
        });
        sim.add_actor(
            nic,
            Box::new(Script {
                sends: vec![(ActorId(1), 100)],
            }),
        );
        struct One;
        impl Process<u8> for One {
            fn on_start(&mut self, _ctx: &mut Ctx<u8>) {}
            fn on_message(&mut self, ctx: &mut Ctx<u8>, _f: ActorId, _m: u8) {
                ctx.halt();
            }
        }
        sim.add_actor(nic, Box::new(One));
        let report = sim.run();
        assert_eq!(report.finished_at[1], Some(SimTime::from_micros(3)));
    }
}
