//! Cross-thread determinism at the fabric level: the same workload run
//! at `threads ∈ {1, 2, 8}` must produce bit-identical reports — every
//! per-NIC counter, every finish time, the processed-event count, the
//! end time. Protocol-level equality (tensors, wire bytes, flight
//! streams) is proven on top of this by `tests/simnet_parallel.rs` at
//! the workspace root.

use omnireduce_simnet::{
    ActorId, Bandwidth, Ctx, NicConfig, NicStats, Process, RackTopology, SimTime, Simulator,
};

fn nic_10g() -> NicConfig {
    NicConfig::symmetric(Bandwidth::gbps(10.0), SimTime::from_micros(5))
}

#[derive(Debug, PartialEq)]
struct Observables {
    nic_stats: Vec<NicStats>,
    finished_at: Vec<Option<SimTime>>,
    end_time: SimTime,
    events: u64,
}

/// A request/response protocol with data-dependent scheduling: each
/// client walks a deterministic peer sequence, sends a request, and
/// only issues the next one after the echo returns. Exercises incast,
/// egress serialization, timers, and multi-hop causal chains.
struct Client {
    id: usize,
    servers: Vec<ActorId>,
    rounds: usize,
    inflight: usize,
    done: usize,
}
impl Process<u64> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        let first = self.servers[self.id % self.servers.len()];
        ctx.send(first, self.id as u64, 700 + 100 * (self.id % 5));
        self.inflight = 1;
        // A heartbeat timer that keeps firing while requests are out.
        ctx.set_timer(SimTime::from_micros(50), 1);
    }
    fn on_message(&mut self, ctx: &mut Ctx<u64>, _from: ActorId, msg: u64) {
        self.done += 1;
        if self.done == self.rounds {
            ctx.halt();
            return;
        }
        let next = self.servers[(self.id + self.done) % self.servers.len()];
        ctx.send(
            next,
            msg.wrapping_add(1),
            700 + 100 * ((self.id + self.done) % 5),
        );
    }
    fn on_timer(&mut self, ctx: &mut Ctx<u64>, token: u64) {
        if self.done < self.rounds {
            ctx.set_timer(SimTime::from_micros(50), token);
        }
    }
}

/// Echoes every request back to its sender, doubled in size class.
struct Server;
impl Process<u64> for Server {
    fn on_start(&mut self, _ctx: &mut Ctx<u64>) {}
    fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
        ctx.send(from, msg, 900);
    }
}

fn run_echo(threads: usize, clients: usize, servers: usize, loss: f64) -> Observables {
    let mut sim: Simulator<u64> = Simulator::new(0xBEEF);
    sim.set_threads(threads);
    let server_nics: Vec<_> = (0..servers)
        .map(|_| sim.add_nic(nic_10g().with_loss(loss)))
        .collect();
    let client_nics: Vec<_> = (0..clients)
        .map(|_| sim.add_nic(nic_10g().with_loss(loss)))
        .collect();
    let server_ids: Vec<ActorId> = (0..servers).map(ActorId).collect();
    for nic in &server_nics {
        sim.add_actor(*nic, Box::new(Server));
    }
    for (i, nic) in client_nics.iter().enumerate() {
        sim.add_actor(
            *nic,
            Box::new(Client {
                id: i,
                servers: server_ids.clone(),
                rounds: 40,
                inflight: 0,
                done: 0,
            }),
        );
    }
    let report = sim.run();
    Observables {
        nic_stats: report.nic_stats,
        finished_at: report.finished_at,
        end_time: report.end_time,
        events: report.events,
    }
}

#[test]
fn echo_protocol_is_thread_count_invariant() {
    let seq = run_echo(1, 12, 3, 0.0);
    for threads in [2, 8] {
        let par = run_echo(threads, 12, 3, 0.0);
        assert_eq!(seq, par, "threads={threads} diverged from sequential");
    }
    // Sanity: the workload actually finished.
    assert!(seq.finished_at[3..].iter().all(|f| f.is_some()));
}

#[test]
fn lossy_echo_is_thread_count_invariant() {
    // Loss draws come from per-NIC streams, so the drop pattern — and
    // everything downstream of it — must not depend on thread count.
    // Clients would hang on a dropped echo, so halt on the heartbeat
    // instead of waiting for all rounds.
    struct LossyClient {
        inner: Client,
        ticks: usize,
    }
    impl Process<u64> for LossyClient {
        fn on_start(&mut self, ctx: &mut Ctx<u64>) {
            self.inner.on_start(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
            self.inner.on_message(ctx, from, msg);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<u64>, _token: u64) {
            self.ticks += 1;
            if self.ticks < 200 && self.inner.done < self.inner.rounds {
                ctx.set_timer(SimTime::from_micros(50), 1);
            } else {
                ctx.halt();
            }
        }
    }
    let run = |threads: usize| {
        let mut sim: Simulator<u64> = Simulator::new(0xFEED);
        sim.set_threads(threads);
        let server_nic = sim.add_nic(nic_10g().with_loss(0.05));
        let client_nics: Vec<_> = (0..9)
            .map(|_| sim.add_nic(nic_10g().with_loss(0.05)))
            .collect();
        sim.add_actor(server_nic, Box::new(Server));
        for (i, nic) in client_nics.iter().enumerate() {
            sim.add_actor(
                *nic,
                Box::new(LossyClient {
                    inner: Client {
                        id: i,
                        servers: vec![ActorId(0)],
                        rounds: 30,
                        inflight: 0,
                        done: 0,
                    },
                    ticks: 0,
                }),
            );
        }
        let report = sim.run();
        (report.nic_stats, report.finished_at, report.events)
    };
    let seq = run(1);
    assert!(
        seq.0.iter().map(|s| s.packets_lost).sum::<u64>() > 0,
        "loss process never fired — test is vacuous"
    );
    for threads in [2, 8] {
        assert_eq!(seq, run(threads), "threads={threads} diverged");
    }
}

#[test]
fn rack_topology_is_thread_count_invariant_and_adds_latency() {
    let run = |threads: usize| {
        let mut sim: Simulator<u64> = Simulator::new(1);
        sim.set_threads(threads);
        sim.set_topology(RackTopology::new(4, SimTime::from_micros(2)));
        let nics: Vec<_> = (0..16).map(|_| sim.add_nic(nic_10g())).collect();
        // One server per rack; clients talk to the server of the *next*
        // rack so every request crosses racks.
        for r in 0..4 {
            sim.add_actor(nics[r * 4], Box::new(Server));
        }
        for i in 0..12 {
            let rack = i / 3;
            sim.add_actor(
                nics[rack * 4 + 1 + i % 3],
                Box::new(Client {
                    id: i,
                    servers: vec![ActorId((rack + 1) % 4)],
                    rounds: 25,
                    inflight: 0,
                    done: 0,
                }),
            );
        }
        let report = sim.run();
        (
            report.nic_stats,
            report.finished_at,
            report.end_time,
            report.events,
        )
    };
    let seq = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(seq, run(threads), "threads={threads} diverged");
    }
    // Cross-rack hop: 800ns tx + 5µs base + 2µs extra + 720ns rx on the
    // first request: the first echo cannot return before ~15µs.
    let first_finish = seq.1.iter().flatten().min().unwrap().as_nanos();
    assert!(
        first_finish > 15_000,
        "rack latency missing: {first_finish}"
    );
}

#[test]
fn same_time_cross_partition_arrivals_keep_canonical_order() {
    // All clients fire simultaneously at one server with identical
    // sizes, so PortArrival timestamps collide exactly; the canonical
    // (time, src, seq) order must make the RX interleaving — and the
    // resulting queue-delay accounting — identical for any partition
    // layout.
    let run = |threads: usize| {
        let mut sim: Simulator<u64> = Simulator::new(3);
        sim.set_threads(threads);
        let server_nic = sim.add_nic(nic_10g());
        let nics: Vec<_> = (0..10).map(|_| sim.add_nic(nic_10g())).collect();
        sim.add_actor(server_nic, Box::new(Server));
        for (i, nic) in nics.iter().enumerate() {
            sim.add_actor(
                *nic,
                Box::new(Client {
                    id: i,
                    servers: vec![ActorId(0)],
                    rounds: 20,
                    inflight: 0,
                    done: 0,
                }),
            );
        }
        let report = sim.run();
        (report.nic_stats, report.finished_at, report.events)
    };
    let seq = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(seq, run(threads), "threads={threads} diverged");
    }
}
