//! Property test: for *random* topologies — node count, rack fan-out,
//! link latency, inter-rack extra latency, loss rate and seed — a
//! parallel run is bit-identical to the sequential run of the same
//! workload. The committed regressions file
//! (`tests/regressions/topologies.csv`) pins every case the generator
//! has ever caught (plus hand-picked hard cases: single-rack, full
//! fan-out, prime node counts) and is replayed on every test run — the
//! vendored proptest shim does not persist failures itself.

use omnireduce_simnet::{
    ActorId, Bandwidth, Ctx, NicConfig, NicStats, Process, RackTopology, SimTime, Simulator,
};
use proptest::prelude::*;

/// One generated topology/workload point.
#[derive(Debug, Clone, Copy)]
struct Case {
    nodes: usize,
    rack_size: usize,
    latency_us: u64,
    extra_us: u64,
    loss_bp: u32,
    threads: usize,
    seed: u64,
}

/// A request/echo protocol with cross-rack traffic: the first node of
/// each rack serves; every other node sends its requests to the *next*
/// rack's server, so inter-rack links (and the lookahead bound they set)
/// are always on the critical path. Lossy runs bound themselves via the
/// heartbeat tick budget instead of waiting for echoes that never come.
struct Peer {
    id: usize,
    target: Option<ActorId>,
    rounds: usize,
    done: usize,
    ticks: usize,
}

impl Process<u64> for Peer {
    fn on_start(&mut self, ctx: &mut Ctx<u64>) {
        if let Some(target) = self.target {
            ctx.send(target, self.id as u64, 600 + 90 * (self.id % 7));
            ctx.set_timer(SimTime::from_micros(40), 1);
        }
        // Servers stay passive (and never halt: the run ends by drain).
    }
    fn on_message(&mut self, ctx: &mut Ctx<u64>, from: ActorId, msg: u64) {
        match self.target {
            // Server: echo.
            None => ctx.send(from, msg, 800),
            // Client: next round.
            Some(target) => {
                self.done += 1;
                if self.done >= self.rounds {
                    ctx.halt();
                } else {
                    ctx.send(
                        target,
                        msg.wrapping_add(1),
                        600 + 90 * ((self.id + self.done) % 7),
                    );
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<u64>, token: u64) {
        self.ticks += 1;
        if self.done < self.rounds && self.ticks < 300 {
            ctx.set_timer(SimTime::from_micros(40), token);
        } else if self.done < self.rounds {
            ctx.halt(); // lossy run: give up instead of waiting forever
        }
    }
}

#[derive(Debug, PartialEq)]
struct Observed {
    nic_stats: Vec<NicStats>,
    finished_at: Vec<Option<SimTime>>,
    end_time: SimTime,
    events: u64,
}

fn run_case(c: Case, threads: usize) -> Observed {
    let racks = c.nodes.div_ceil(c.rack_size);
    let mut sim: Simulator<u64> = Simulator::new(c.seed);
    sim.set_threads(threads);
    sim.set_topology(RackTopology::new(
        c.rack_size,
        SimTime::from_micros(c.extra_us),
    ));
    let loss = f64::from(c.loss_bp) / 10_000.0;
    let nic = NicConfig::symmetric(
        Bandwidth::gbps(10.0),
        SimTime::from_micros(c.latency_us.max(1)),
    )
    .with_loss(loss);
    let nics: Vec<_> = (0..c.nodes).map(|_| sim.add_nic(nic)).collect();
    for (i, nic) in nics.iter().enumerate() {
        let rack = i / c.rack_size;
        let is_server = i % c.rack_size == 0;
        let target = if is_server {
            None
        } else {
            // The next rack's server (racks are contiguous nic ranges).
            Some(ActorId(((rack + 1) % racks) * c.rack_size))
        };
        sim.add_actor(
            *nic,
            Box::new(Peer {
                id: i,
                target,
                rounds: 12 + i % 5,
                done: 0,
                ticks: 0,
            }),
        );
    }
    let report = sim.run();
    Observed {
        nic_stats: report.nic_stats,
        finished_at: report.finished_at,
        end_time: report.end_time,
        events: report.events,
    }
}

fn assert_invariant(c: Case) {
    let seq = run_case(c, 1);
    let par = run_case(c, c.threads);
    assert_eq!(seq, par, "parallel diverged from sequential for {c:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_parallel_equals_sequential_on_random_topologies(
        nodes in 2usize..24,
        rack_size in 1usize..6,
        latency_us in 1u64..20,
        extra_us in 0u64..10,
        loss_bp in 0u32..800,
        threads in 2usize..9,
        seed in 0u64..10_000,
    ) {
        assert_invariant(Case {
            nodes,
            rack_size,
            latency_us,
            extra_us,
            loss_bp,
            threads,
            seed,
        });
    }
}

/// Replays the committed regression corpus. Each line is
/// `nodes,rack_size,latency_us,extra_us,loss_bp,threads,seed`; `#`
/// starts a comment. Append a line here whenever the property above
/// finds a counterexample — the shim does not persist failures.
#[test]
fn replay_committed_regressions() {
    let corpus = include_str!("regressions/topologies.csv");
    let mut replayed = 0;
    for (lineno, line) in corpus.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<u64> = line
            .split(',')
            .map(|f| {
                f.trim().parse().unwrap_or_else(|e| {
                    panic!("regressions line {}: bad field {f:?}: {e}", lineno + 1)
                })
            })
            .collect();
        assert_eq!(
            fields.len(),
            7,
            "regressions line {}: want 7 fields",
            lineno + 1
        );
        assert_invariant(Case {
            nodes: fields[0] as usize,
            rack_size: fields[1] as usize,
            latency_us: fields[2],
            extra_us: fields[3],
            loss_bp: fields[4] as u32,
            threads: fields[5] as usize,
            seed: fields[6],
        });
        replayed += 1;
    }
    assert!(replayed >= 8, "regression corpus went missing");
}
