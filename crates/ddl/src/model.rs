//! Trainable models: logistic regression and a one-hidden-layer MLP.
//!
//! Parameters live in a flat [`Tensor`] — the same shape collective
//! communication sees — so the trainer, compressors and collectives all
//! operate on one representation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use omnireduce_tensor::Tensor;

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// A differentiable binary classifier over flat parameters.
pub trait Model: Send + Sync {
    /// Total parameter count.
    fn num_params(&self) -> usize;

    /// Deterministic initial parameters.
    fn init_params(&self, seed: u64) -> Tensor;

    /// Mean binary-cross-entropy loss and its gradient over a batch.
    /// `x` is row-major `batch × dim`, `y` the labels.
    fn loss_grad(&self, params: &Tensor, x: &[f32], y: &[f32], dim: usize) -> (f64, Tensor);

    /// Predicted probability for one example.
    fn predict(&self, params: &Tensor, x: &[f32]) -> f32;
}

/// Logistic regression: `dim` weights + 1 bias.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Feature dimension.
    pub dim: usize,
}

impl Model for LogisticRegression {
    fn num_params(&self) -> usize {
        self.dim + 1
    }

    fn init_params(&self, _seed: u64) -> Tensor {
        Tensor::zeros(self.num_params())
    }

    fn loss_grad(&self, params: &Tensor, x: &[f32], y: &[f32], dim: usize) -> (f64, Tensor) {
        assert_eq!(dim, self.dim);
        let batch = y.len();
        let w = &params.as_slice()[..dim];
        let b = params[dim];
        let mut grad = Tensor::zeros(self.num_params());
        let mut loss = 0.0f64;
        for i in 0..batch {
            let row = &x[i * dim..(i + 1) * dim];
            let z: f32 = row.iter().zip(w).map(|(xi, wi)| xi * wi).sum::<f32>() + b;
            let p = sigmoid(z);
            let eps = 1e-7f32;
            loss -= (y[i] * (p + eps).ln() + (1.0 - y[i]) * (1.0 - p + eps).ln()) as f64;
            let err = p - y[i];
            for (g, xi) in grad.as_mut_slice()[..dim].iter_mut().zip(row) {
                *g += err * xi;
            }
            grad[dim] += err;
        }
        grad.scale(1.0 / batch as f32);
        (loss / batch as f64, grad)
    }

    fn predict(&self, params: &Tensor, x: &[f32]) -> f32 {
        let w = &params.as_slice()[..self.dim];
        let z: f32 = x.iter().zip(w).map(|(xi, wi)| xi * wi).sum::<f32>() + params[self.dim];
        sigmoid(z)
    }
}

/// One-hidden-layer MLP with tanh activation:
/// `dim × hidden` + `hidden` biases + `hidden` output weights + 1 bias.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Feature dimension.
    pub dim: usize,
    /// Hidden units.
    pub hidden: usize,
}

impl Mlp {
    fn w1(&self) -> std::ops::Range<usize> {
        0..self.dim * self.hidden
    }
    fn b1(&self) -> std::ops::Range<usize> {
        let s = self.dim * self.hidden;
        s..s + self.hidden
    }
    fn w2(&self) -> std::ops::Range<usize> {
        let s = self.dim * self.hidden + self.hidden;
        s..s + self.hidden
    }
    fn b2(&self) -> usize {
        self.dim * self.hidden + 2 * self.hidden
    }

    fn forward(&self, params: &Tensor, row: &[f32], hidden_out: &mut [f32]) -> f32 {
        let p = params.as_slice();
        let w1 = &p[self.w1()];
        let b1 = &p[self.b1()];
        let w2 = &p[self.w2()];
        for h in 0..self.hidden {
            let mut z = b1[h];
            for (d, xi) in row.iter().enumerate() {
                z += w1[h * self.dim + d] * xi;
            }
            hidden_out[h] = z.tanh();
        }
        let z: f32 = hidden_out.iter().zip(w2).map(|(a, w)| a * w).sum::<f32>() + p[self.b2()];
        sigmoid(z)
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.dim * self.hidden + 2 * self.hidden + 1
    }

    fn init_params(&self, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = (1.0 / self.dim as f32).sqrt();
        let mut t = Tensor::zeros(self.num_params());
        for v in &mut t.as_mut_slice()[self.w1()] {
            *v = rng.gen_range(-scale..scale);
        }
        let h_scale = (1.0 / self.hidden as f32).sqrt();
        let w2 = self.w2();
        for v in &mut t.as_mut_slice()[w2] {
            *v = rng.gen_range(-h_scale..h_scale);
        }
        t
    }

    fn loss_grad(&self, params: &Tensor, x: &[f32], y: &[f32], dim: usize) -> (f64, Tensor) {
        assert_eq!(dim, self.dim);
        let batch = y.len();
        let p = params.as_slice();
        let w2_range = self.w2();
        let mut grad = Tensor::zeros(self.num_params());
        let mut hidden = vec![0.0f32; self.hidden];
        let mut loss = 0.0f64;
        for i in 0..batch {
            let row = &x[i * dim..(i + 1) * dim];
            let prob = self.forward(params, row, &mut hidden);
            let eps = 1e-7f32;
            loss -= (y[i] * (prob + eps).ln() + (1.0 - y[i]) * (1.0 - prob + eps).ln()) as f64;
            let err = prob - y[i]; // dL/dz_out
                                   // Output layer.
            let g = grad.as_mut_slice();
            for h in 0..self.hidden {
                g[w2_range.start + h] += err * hidden[h];
            }
            g[self.dim * self.hidden + 2 * self.hidden] += err;
            // Hidden layer.
            for h in 0..self.hidden {
                let dz = err * p[w2_range.start + h] * (1.0 - hidden[h] * hidden[h]);
                for (d, xi) in row.iter().enumerate() {
                    g[h * self.dim + d] += dz * xi;
                }
                g[self.dim * self.hidden + h] += dz;
            }
        }
        grad.scale(1.0 / batch as f32);
        (loss / batch as f64, grad)
    }

    fn predict(&self, params: &Tensor, x: &[f32]) -> f32 {
        let mut hidden = vec![0.0f32; self.hidden];
        self.forward(params, x, &mut hidden)
    }
}

/// Numerically checks a model's analytic gradient against central finite
/// differences at `params` (test helper).
#[cfg(test)]
fn grad_check(model: &dyn Model, params: &Tensor, x: &[f32], y: &[f32], dim: usize) -> f32 {
    let (_, analytic) = model.loss_grad(params, x, y, dim);
    let h = 1e-3f32;
    let mut max_err = 0.0f32;
    for i in 0..params.len() {
        let mut plus = params.clone();
        plus[i] += h;
        let mut minus = params.clone();
        minus[i] -= h;
        let (lp, _) = model.loss_grad(&plus, x, y, dim);
        let (lm, _) = model.loss_grad(&minus, x, y, dim);
        let numeric = ((lp - lm) / (2.0 * h as f64)) as f32;
        max_err = max_err.max((numeric - analytic[i]).abs());
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    #[test]
    fn logistic_gradient_matches_finite_differences() {
        let d = Dataset::synthetic(8, 5, 0.0, 1);
        let model = LogisticRegression { dim: 5 };
        let mut params = model.init_params(0);
        for (i, v) in params.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 - 2.0) * 0.1;
        }
        let err = grad_check(&model, &params, &d.features, &d.labels, 5);
        assert!(err < 1e-2, "gradient error {err}");
    }

    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let d = Dataset::synthetic(6, 4, 0.0, 2);
        let model = Mlp { dim: 4, hidden: 3 };
        let params = model.init_params(3);
        let err = grad_check(&model, &params, &d.features, &d.labels, 4);
        assert!(err < 1e-2, "gradient error {err}");
    }

    #[test]
    fn logistic_sgd_converges_on_separable_data() {
        let d = Dataset::synthetic(800, 10, 0.0, 5);
        let model = LogisticRegression { dim: 10 };
        let mut params = model.init_params(0);
        let mut last_loss = f64::MAX;
        for epoch in 0..60 {
            let (loss, grad) = model.loss_grad(&params, &d.features, &d.labels, 10);
            for (p, g) in params.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= 0.8 * g;
            }
            if epoch > 0 {
                assert!(loss < last_loss + 1e-6, "loss rose at epoch {epoch}");
            }
            last_loss = loss;
        }
        assert!(last_loss < 0.3, "final loss {last_loss}");
        let correct = (0..d.len())
            .filter(|i| (model.predict(&params, d.row(*i)) > 0.5) == (d.labels[*i] == 1.0))
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.9);
    }

    #[test]
    fn mlp_param_layout_covers_everything() {
        let m = Mlp { dim: 7, hidden: 5 };
        assert_eq!(m.num_params(), 7 * 5 + 5 + 5 + 1);
        assert_eq!(m.w1().end, 35);
        assert_eq!(m.b1(), 35..40);
        assert_eq!(m.w2(), 40..45);
        assert_eq!(m.b2(), 45);
    }

    #[test]
    fn predictions_are_probabilities() {
        let d = Dataset::synthetic(20, 6, 0.0, 9);
        let m = Mlp { dim: 6, hidden: 4 };
        let params = m.init_params(1);
        for i in 0..d.len() {
            let p = m.predict(&params, d.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
