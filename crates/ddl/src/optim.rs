//! Optimizers for the training loop: plain SGD, momentum SGD, and Adam.
//!
//! The paper's workloads train with momentum SGD (vision) and Adam
//! (BERT); the convergence experiments here default to plain SGD but the
//! trainer accepts any [`Optimizer`]. Note the interaction the EF-SGD
//! literature points out: error feedback compresses the *gradient*, and
//! the optimizer then transforms the aggregated result — the order
//! implemented by [`crate::train`] matches the paper's setup
//! (compression before aggregation, optimizer after).

use omnireduce_tensor::Tensor;

/// A stateful first-order optimizer: consumes the aggregated gradient
/// and updates the parameters in place.
pub trait Optimizer: Send {
    /// Applies one update step.
    fn step(&mut self, params: &mut Tensor, grad: &Tensor);

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Plain SGD: `θ ← θ − lr·g`.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Tensor, grad: &Tensor) {
        for (p, g) in params.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *p -= self.lr * g;
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Momentum SGD: `v ← μ·v + g; θ ← θ − lr·v`.
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ.
    pub mu: f32,
    velocity: Option<Tensor>,
}

impl Momentum {
    /// Creates the optimizer with zeroed velocity.
    pub fn new(lr: f32, mu: f32) -> Self {
        Momentum {
            lr,
            mu,
            velocity: None,
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut Tensor, grad: &Tensor) {
        let v = self
            .velocity
            .get_or_insert_with(|| Tensor::zeros(params.len()));
        assert_eq!(v.len(), grad.len(), "gradient length changed");
        for ((p, vi), g) in params
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice())
            .zip(grad.as_slice())
        {
            *vi = self.mu * *vi + *g;
            *p -= self.lr * *vi;
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical guard ε.
    pub eps: f32,
    m: Option<Tensor>,
    v: Option<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates Adam with the standard defaults (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: None,
            v: None,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Tensor, grad: &Tensor) {
        let n = params.len();
        let m = self.m.get_or_insert_with(|| Tensor::zeros(n));
        let v = self.v.get_or_insert_with(|| Tensor::zeros(n));
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            let g = grad[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::model::{LogisticRegression, Model};

    fn train_with(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let data = Dataset::synthetic(1200, 12, 0.02, 4);
        let model = LogisticRegression { dim: 12 };
        let mut params = model.init_params(0);
        let mut last = 0.0;
        for step in 0..steps {
            let lo = (step * 32) % (data.len() - 32);
            let x = &data.features[lo * data.dim..(lo + 32) * data.dim];
            let y = &data.labels[lo..lo + 32];
            let (loss, grad) = model.loss_grad(&params, x, y, data.dim);
            opt.step(&mut params, &grad);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_step_matches_formula() {
        let mut p = Tensor::from_vec(vec![1.0, 2.0]);
        let g = Tensor::from_vec(vec![0.5, -1.0]);
        Sgd { lr: 0.1 }.step(&mut p, &g);
        assert_eq!(p.as_slice(), &[0.95, 2.1]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Tensor::from_vec(vec![0.0]);
        let g = Tensor::from_vec(vec![1.0]);
        let mut opt = Momentum::new(1.0, 0.5);
        opt.step(&mut p, &g); // v=1, p=-1
        assert_eq!(p[0], -1.0);
        opt.step(&mut p, &g); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr·sign(g).
        let mut p = Tensor::from_vec(vec![0.0, 0.0]);
        let g = Tensor::from_vec(vec![0.3, -7.0]);
        Adam::new(0.01).step(&mut p, &g);
        assert!((p[0] + 0.01).abs() < 1e-4, "{}", p[0]);
        assert!((p[1] - 0.01).abs() < 1e-4, "{}", p[1]);
    }

    #[test]
    fn all_optimizers_reduce_loss() {
        let sgd_loss = train_with(&mut Sgd { lr: 0.5 }, 200);
        let mom_loss = train_with(&mut Momentum::new(0.1, 0.9), 200);
        let adam_loss = train_with(&mut Adam::new(0.05), 200);
        for (name, loss) in [
            ("sgd", sgd_loss),
            ("momentum", mom_loss),
            ("adam", adam_loss),
        ] {
            assert!(loss < 0.45, "{name} final loss {loss}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(Sgd { lr: 0.1 }.name(), "sgd");
        assert_eq!(Momentum::new(0.1, 0.9).name(), "momentum");
        assert_eq!(Adam::new(0.1).name(), "adam");
    }
}
