//! Synthetic binary-classification datasets.
//!
//! Features are standard-normal-ish; labels come from a random
//! ground-truth linear model passed through a logistic link, with a
//! configurable label-noise rate. Linearly-structured but noisy data
//! gives both models (logistic regression, MLP) something learnable with
//! a meaningful accuracy ceiling, so compression-induced degradation is
//! visible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A dense binary-classification dataset (row-major features).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature dimension.
    pub dim: usize,
    /// `n × dim` row-major features.
    pub features: Vec<f32>,
    /// `n` labels in {0.0, 1.0}.
    pub labels: Vec<f32>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Generates `n` examples of dimension `dim` with labels from a
    /// random ground-truth linear model; `noise` is the label-flip
    /// probability.
    pub fn synthetic(n: usize, dim: usize, noise: f64, seed: u64) -> Dataset {
        assert!((0.0..=1.0).contains(&noise));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let truth: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut features = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|_| {
                    // Sum of uniforms ≈ gaussian; cheap and dependency-free.
                    (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0)) * 0.9
                })
                .collect();
            let logit: f32 = row.iter().zip(&truth).map(|(x, w)| x * w).sum();
            let mut y = if logit > 0.0 { 1.0 } else { 0.0 };
            if rng.gen_bool(noise) {
                y = 1.0 - y;
            }
            features.extend_from_slice(&row);
            labels.push(y);
        }
        Dataset {
            dim,
            features,
            labels,
        }
    }

    /// Splits off the last `frac` of examples as a test set.
    pub fn split(self, frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&frac));
        let test_n = ((self.len() as f64) * frac) as usize;
        let train_n = self.len() - test_n;
        let (train_f, test_f) = self.features.split_at(train_n * self.dim);
        let (train_l, test_l) = self.labels.split_at(train_n);
        (
            Dataset {
                dim: self.dim,
                features: train_f.to_vec(),
                labels: train_l.to_vec(),
            },
            Dataset {
                dim: self.dim,
                features: test_f.to_vec(),
                labels: test_l.to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let d = Dataset::synthetic(100, 8, 0.05, 7);
        assert_eq!(d.len(), 100);
        assert_eq!(d.features.len(), 800);
        assert_eq!(d.row(3).len(), 8);
        let d2 = Dataset::synthetic(100, 8, 0.05, 7);
        assert_eq!(d.features, d2.features);
        assert_eq!(d.labels, d2.labels);
    }

    #[test]
    fn labels_are_binary_and_balanced_ish() {
        let d = Dataset::synthetic(2000, 16, 0.0, 1);
        let pos = d.labels.iter().filter(|y| **y == 1.0).count();
        assert!(pos > 600 && pos < 1400, "pos {pos}");
        assert!(d.labels.iter().all(|y| *y == 0.0 || *y == 1.0));
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::synthetic(100, 4, 0.0, 2);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.features.len(), 320);
    }
}
