//! A sparse-embedding classifier — the model family whose gradients
//! motivate OmniReduce (paper §1, footnote 2: "updates to embedding
//! weights are sparse as only a few embedding vectors from a huge
//! dictionary are used in one batch, and only these vectors have
//! non-zero gradients").
//!
//! Each example is a bag of categorical feature ids; the model embeds
//! each id into `dim` dimensions, averages, and classifies with a linear
//! head. The gradient of the embedding table is non-zero *only at the
//! rows touched by the batch* — naturally block-sparse at row
//! granularity, exactly the DeepLight/NCF structure. With a Zipfian id
//! distribution the batch rows skew hot, reproducing the Table 2 overlap
//! pattern across data-parallel workers.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use omnireduce_tensor::Tensor;

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// A categorical-features dataset: each example is `ids_per_example`
/// feature ids drawn Zipf-ish from a vocabulary, plus a binary label.
#[derive(Debug, Clone)]
pub struct CategoricalDataset {
    /// Vocabulary size (embedding rows).
    pub vocab: usize,
    /// Ids per example.
    pub ids_per_example: usize,
    /// Row-major ids, `n × ids_per_example`.
    pub ids: Vec<u32>,
    /// Labels in {0.0, 1.0}.
    pub labels: Vec<f32>,
}

impl CategoricalDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Ids of example `i`.
    pub fn example(&self, i: usize) -> &[u32] {
        &self.ids[i * self.ids_per_example..(i + 1) * self.ids_per_example]
    }

    /// Generates `n` examples. Ids are drawn with a skewed (approximately
    /// Zipf) distribution; the label depends on a hidden subset of
    /// "positive" ids, with `noise` label-flip probability.
    pub fn synthetic(
        n: usize,
        vocab: usize,
        ids_per_example: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Hidden ground truth: each id carries a latent score.
        let scores: Vec<f32> = (0..vocab).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut ids = Vec::with_capacity(n * ids_per_example);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let mut sum = 0.0f32;
            for _ in 0..ids_per_example {
                // Skewed draw: squaring a uniform pushes mass to low ids.
                let u: f64 = rng.gen::<f64>();
                let id = ((u * u) * vocab as f64) as usize % vocab;
                ids.push(id as u32);
                sum += scores[id];
            }
            let mut y = if sum > 0.0 { 1.0 } else { 0.0 };
            if rng.gen_bool(noise) {
                y = 1.0 - y;
            }
            labels.push(y);
        }
        CategoricalDataset {
            vocab,
            ids_per_example,
            ids,
            labels,
        }
    }
}

/// The embedding-bag classifier. Parameter layout (flat tensor):
/// `vocab × dim` embedding table, then `dim` head weights, then 1 bias —
/// so the embedding table occupies aligned runs of `dim` elements,
/// matching the workload crate's row-run gradient model.
#[derive(Debug, Clone)]
pub struct EmbeddingClassifier {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension (the gradient run length).
    pub dim: usize,
}

impl EmbeddingClassifier {
    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.vocab * self.dim + self.dim + 1
    }

    /// Offset of embedding row `id`.
    fn row(&self, id: u32) -> usize {
        id as usize * self.dim
    }

    fn head(&self) -> std::ops::Range<usize> {
        let s = self.vocab * self.dim;
        s..s + self.dim
    }

    fn bias(&self) -> usize {
        self.vocab * self.dim + self.dim
    }

    /// Deterministic initialization.
    pub fn init_params(&self, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = Tensor::zeros(self.num_params());
        let scale = (1.0 / self.dim as f32).sqrt();
        for v in t.as_mut_slice() {
            *v = rng.gen_range(-scale..scale);
        }
        t[self.bias()] = 0.0;
        t
    }

    /// Predicted probability for one example.
    pub fn predict(&self, params: &Tensor, ids: &[u32]) -> f32 {
        let p = params.as_slice();
        let head = &p[self.head()];
        let mut pooled = vec![0.0f32; self.dim];
        for id in ids {
            let r = self.row(*id);
            for (a, v) in pooled.iter_mut().zip(&p[r..r + self.dim]) {
                *a += *v;
            }
        }
        let inv = 1.0 / ids.len() as f32;
        let z: f32 = pooled
            .iter()
            .zip(head)
            .map(|(a, w)| a * inv * w)
            .sum::<f32>()
            + p[self.bias()];
        sigmoid(z)
    }

    /// Mean BCE loss and gradient over a batch of examples. The returned
    /// gradient is non-zero only at the embedding rows the batch touched
    /// (plus the small dense head).
    pub fn loss_grad(
        &self,
        params: &Tensor,
        data: &CategoricalDataset,
        batch: std::ops::Range<usize>,
    ) -> (f64, Tensor) {
        let p = params.as_slice();
        let head_range = self.head();
        let mut grad = Tensor::zeros(self.num_params());
        let mut pooled = vec![0.0f32; self.dim];
        let mut loss = 0.0f64;
        let count = batch.len();
        for i in batch {
            let ids = data.example(i);
            let inv = 1.0 / ids.len() as f32;
            pooled.iter_mut().for_each(|v| *v = 0.0);
            for id in ids {
                let r = self.row(*id);
                for (a, v) in pooled.iter_mut().zip(&p[r..r + self.dim]) {
                    *a += *v;
                }
            }
            let z: f32 = pooled
                .iter()
                .zip(&p[head_range.clone()])
                .map(|(a, w)| a * inv * w)
                .sum::<f32>()
                + p[self.bias()];
            let prob = sigmoid(z);
            let y = data.labels[i];
            let eps = 1e-7f32;
            loss -= (y * (prob + eps).ln() + (1.0 - y) * (1.0 - prob + eps).ln()) as f64;
            let err = prob - y;
            // Head gradient.
            let g = grad.as_mut_slice();
            for (h, a) in head_range.clone().zip(pooled.iter()) {
                g[h] += err * a * inv;
            }
            g[self.vocab * self.dim + self.dim] += err;
            // Embedding rows: dL/d e_id = err · inv · head.
            for id in ids {
                let r = self.row(*id);
                for (d, w) in (r..r + self.dim).zip(&p[head_range.clone()]) {
                    g[d] += err * inv * w;
                }
            }
        }
        grad.scale(1.0 / count as f32);
        (loss / count as f64, grad)
    }

    /// Classification accuracy over `data`.
    pub fn accuracy(&self, params: &Tensor, data: &CategoricalDataset) -> f64 {
        let correct = (0..data.len())
            .filter(|i| (self.predict(params, data.example(*i)) > 0.5) == (data.labels[*i] == 1.0))
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnireduce_tensor::BlockSpec;

    fn small() -> (EmbeddingClassifier, CategoricalDataset) {
        let model = EmbeddingClassifier { vocab: 256, dim: 8 };
        let data = CategoricalDataset::synthetic(1200, 256, 5, 0.02, 3);
        (model, data)
    }

    #[test]
    fn gradient_touches_only_batch_rows() {
        let (model, data) = small();
        let params = model.init_params(1);
        let (_, grad) = model.loss_grad(&params, &data, 0..16);
        // Collect ids in the batch.
        let mut touched = vec![false; model.vocab];
        for i in 0..16 {
            for id in data.example(i) {
                touched[*id as usize] = true;
            }
        }
        for (row, was_touched) in touched.iter().enumerate() {
            let r = row * model.dim..(row + 1) * model.dim;
            let nz = grad.as_slice()[r].iter().any(|v| *v != 0.0);
            if nz {
                assert!(*was_touched, "row {row} has gradient but wasn't in batch");
            }
        }
    }

    #[test]
    fn embedding_gradient_is_row_block_sparse() {
        let (model, data) = small();
        let params = model.init_params(1);
        let (_, grad) = model.loss_grad(&params, &data, 0..16);
        // At most 16×5 distinct rows of 256 → ≥ ~69% row sparsity on the
        // embedding part.
        let emb_len = model.vocab * model.dim;
        let emb = Tensor::from_vec(grad.as_slice()[..emb_len].to_vec());
        let row_sparsity = BlockSpec::new(model.dim).block_sparsity(&emb);
        assert!(row_sparsity > 0.6, "row sparsity {row_sparsity}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = EmbeddingClassifier { vocab: 12, dim: 3 };
        let data = CategoricalDataset::synthetic(8, 12, 2, 0.0, 5);
        let params = model.init_params(2);
        let (_, analytic) = model.loss_grad(&params, &data, 0..8);
        let h = 1e-3f32;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus[i] += h;
            let mut minus = params.clone();
            minus[i] -= h;
            let (lp, _) = model.loss_grad(&plus, &data, 0..8);
            let (lm, _) = model.loss_grad(&minus, &data, 0..8);
            let numeric = ((lp - lm) / (2.0 * h as f64)) as f32;
            assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn sgd_learns_the_task() {
        let (model, data) = small();
        let mut params = model.init_params(0);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..300 {
            let lo = (step * 32) % (data.len() - 32);
            let (loss, grad) = model.loss_grad(&params, &data, lo..lo + 32);
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            for (p, g) in params.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= 1.0 * g;
            }
        }
        assert!(last < first.unwrap() * 0.8, "{:?} → {last}", first);
        assert!(model.accuracy(&params, &data) > 0.75);
    }

    #[test]
    fn zipf_draw_skews_hot() {
        let data = CategoricalDataset::synthetic(2000, 1000, 4, 0.0, 7);
        // The bottom quarter of the id space should absorb more than half
        // of all draws (u² skew).
        let low = data.ids.iter().filter(|id| **id < 250).count();
        let frac = low as f64 / data.ids.len() as f64;
        assert!(frac > 0.45, "low-id fraction {frac}");
    }

    #[test]
    fn dataset_shapes() {
        let data = CategoricalDataset::synthetic(10, 50, 3, 0.0, 1);
        assert_eq!(data.len(), 10);
        assert_eq!(data.example(2).len(), 3);
        assert!(!data.is_empty());
    }
}
