//! The compressed data-parallel SGD loop (paper §6.2.3).
//!
//! Synchronous data-parallel training: each of `N` workers computes a
//! gradient on its own mini-batch, compresses it (each worker holds its
//! own compressor — and hence its own error-feedback memory, exactly as
//! in EF-SGD), the compressed gradients are summed and averaged, and the
//! shared parameters take one step. The aggregation here is an in-process
//! sum — the transport-level equivalence of OmniReduce aggregation to a
//! plain sum is established by the collective crates' own tests, and an
//! integration test wires this trainer through a real OmniReduce group.

use omnireduce_sparsify::Compressor;
use omnireduce_tensor::Tensor;

use crate::data::Dataset;
use crate::model::Model;
use crate::optim::{Optimizer, Sgd};

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Data-parallel workers.
    pub num_workers: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training steps.
    pub steps: usize,
    /// Parameter init seed.
    pub seed: u64,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Mean per-worker training loss at every step (Fig. 12's curves).
    pub loss_history: Vec<f64>,
    /// Final parameters.
    pub params: Tensor,
    /// Mean density of the transmitted (compressed) per-worker gradients
    /// — the communication fraction OmniReduce would move.
    pub mean_sent_density: f64,
}

/// Runs compressed data-parallel SGD (plain SGD update rule).
/// `compressors` has one entry per worker (each with its own
/// error-feedback memory).
pub fn train_data_parallel(
    model: &dyn Model,
    train: &Dataset,
    cfg: &TrainConfig,
    compressors: &mut [Box<dyn Compressor>],
) -> TrainResult {
    let mut opt = Sgd { lr: cfg.lr };
    train_data_parallel_opt(model, train, cfg, compressors, &mut opt)
}

/// Like [`train_data_parallel`] but with an arbitrary [`Optimizer`]
/// applied to the aggregated gradient (momentum/Adam for the paper's
/// vision and BERT workloads). `cfg.lr` is ignored; the optimizer owns
/// its hyper-parameters.
pub fn train_data_parallel_opt(
    model: &dyn Model,
    train: &Dataset,
    cfg: &TrainConfig,
    compressors: &mut [Box<dyn Compressor>],
    optimizer: &mut dyn Optimizer,
) -> TrainResult {
    assert_eq!(
        compressors.len(),
        cfg.num_workers,
        "one compressor per worker"
    );
    assert!(train.len() >= cfg.num_workers * cfg.batch_size);
    let mut params = model.init_params(cfg.seed);
    let mut loss_history = Vec::with_capacity(cfg.steps);
    let mut density_acc = 0.0f64;
    let shard = train.len() / cfg.num_workers;

    for step in 0..cfg.steps {
        let mut agg = Tensor::zeros(params.len());
        let mut step_loss = 0.0f64;
        for (w, comp) in compressors.iter_mut().enumerate() {
            // Worker w's mini-batch: a sliding window over its shard.
            let base = w * shard;
            let offset = (step * cfg.batch_size) % (shard - cfg.batch_size + 1);
            let lo = base + offset;
            let x = &train.features[lo * train.dim..(lo + cfg.batch_size) * train.dim];
            let y = &train.labels[lo..lo + cfg.batch_size];
            let (loss, grad) = model.loss_grad(&params, x, y, train.dim);
            step_loss += loss;
            let sent = comp.compress(&grad, &params);
            density_acc += sent.density();
            agg.add_assign(&sent);
        }
        agg.scale(1.0 / cfg.num_workers as f32);
        optimizer.step(&mut params, &agg);
        loss_history.push(step_loss / cfg.num_workers as f64);
    }

    TrainResult {
        loss_history,
        params,
        mean_sent_density: density_acc / (cfg.steps * cfg.num_workers) as f64,
    }
}

/// Classification accuracy of `params` on `data`.
pub fn accuracy(model: &dyn Model, params: &Tensor, data: &Dataset) -> f64 {
    let correct = (0..data.len())
        .filter(|i| (model.predict(params, data.row(*i)) > 0.5) == (data.labels[*i] == 1.0))
        .count();
    correct as f64 / data.len() as f64
}

/// F1 score (positive class) of `params` on `data` — the metric Fig. 11
/// reports for BERT/SQuAD.
pub fn f1_score(model: &dyn Model, params: &Tensor, data: &Dataset) -> f64 {
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    for i in 0..data.len() {
        let pred = model.predict(params, data.row(i)) > 0.5;
        let actual = data.labels[i] == 1.0;
        match (pred, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fne) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Exponential-moving-average smoothing (Fig. 12 applies EMA, α = 0.5).
pub fn ema(series: &[f64], alpha: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    let mut acc = None;
    for v in series {
        let next = match acc {
            None => *v,
            Some(prev) => alpha * v + (1.0 - alpha) * prev,
        };
        out.push(next);
        acc = Some(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LogisticRegression, Mlp};
    use omnireduce_sparsify::{BlockRandomK, BlockTopK, ErrorFeedback, Identity};
    use omnireduce_tensor::BlockSpec;

    fn boxes(n: usize, f: impl Fn(usize) -> Box<dyn Compressor>) -> Vec<Box<dyn Compressor>> {
        (0..n).map(f).collect()
    }

    fn final_loss(r: &TrainResult) -> f64 {
        let tail = &r.loss_history[r.loss_history.len() - 10..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn uncompressed_training_converges() {
        let data = Dataset::synthetic(2000, 16, 0.02, 1);
        let model = LogisticRegression { dim: 16 };
        let cfg = TrainConfig {
            num_workers: 4,
            batch_size: 32,
            lr: 0.5,
            steps: 150,
            seed: 0,
        };
        let mut comps = boxes(4, |_| Box::new(Identity) as Box<dyn Compressor>);
        let r = train_data_parallel(&model, &data, &cfg, &mut comps);
        assert!(final_loss(&r) < 0.35, "loss {}", final_loss(&r));
        assert!(r.mean_sent_density > 0.99);
        assert!(accuracy(&model, &r.params, &data) > 0.85);
    }

    #[test]
    fn block_topk_with_ef_converges_close_to_baseline() {
        let data = Dataset::synthetic(2000, 16, 0.02, 2);
        let model = LogisticRegression { dim: 16 };
        let cfg = TrainConfig {
            num_workers: 4,
            batch_size: 32,
            lr: 0.5,
            steps: 250,
            seed: 0,
        };
        let mut base = boxes(4, |_| Box::new(Identity) as Box<dyn Compressor>);
        let baseline = train_data_parallel(&model, &data, &cfg, &mut base);
        let mut comp = boxes(4, |_| {
            Box::new(ErrorFeedback::new(BlockTopK::new(0.25, BlockSpec::new(4))))
                as Box<dyn Compressor>
        });
        let compressed = train_data_parallel(&model, &data, &cfg, &mut comp);
        assert!(compressed.mean_sent_density < 0.45);
        let gap = final_loss(&compressed) - final_loss(&baseline);
        assert!(gap < 0.12, "compression gap {gap}");
    }

    #[test]
    fn block_randomk_with_ef_converges() {
        let data = Dataset::synthetic(1500, 12, 0.02, 3);
        let model = LogisticRegression { dim: 12 };
        let cfg = TrainConfig {
            num_workers: 2,
            batch_size: 32,
            lr: 0.5,
            steps: 300,
            seed: 0,
        };
        let mut comp = boxes(2, |w| {
            Box::new(ErrorFeedback::new(BlockRandomK::new(
                0.25,
                BlockSpec::new(4),
                w as u64,
            ))) as Box<dyn Compressor>
        });
        let r = train_data_parallel(&model, &data, &cfg, &mut comp);
        assert!(final_loss(&r) < 0.45, "loss {}", final_loss(&r));
    }

    #[test]
    fn mlp_trains_data_parallel() {
        let data = Dataset::synthetic(1600, 10, 0.02, 4);
        let model = Mlp { dim: 10, hidden: 8 };
        let cfg = TrainConfig {
            num_workers: 4,
            batch_size: 25,
            lr: 0.4,
            steps: 300,
            seed: 7,
        };
        let mut comps = boxes(4, |_| Box::new(Identity) as Box<dyn Compressor>);
        let r = train_data_parallel(&model, &data, &cfg, &mut comps);
        let first = r.loss_history[0];
        assert!(
            final_loss(&r) < first * 0.7,
            "no learning: {first} → {}",
            final_loss(&r)
        );
    }

    #[test]
    fn f1_and_accuracy_metrics() {
        let data = Dataset::synthetic(1000, 8, 0.0, 5);
        let model = LogisticRegression { dim: 8 };
        let cfg = TrainConfig {
            num_workers: 1,
            batch_size: 64,
            lr: 0.8,
            steps: 200,
            seed: 0,
        };
        let mut comps = boxes(1, |_| Box::new(Identity) as Box<dyn Compressor>);
        let r = train_data_parallel(&model, &data, &cfg, &mut comps);
        let acc = accuracy(&model, &r.params, &data);
        let f1 = f1_score(&model, &r.params, &data);
        assert!(acc > 0.9, "acc {acc}");
        assert!(f1 > 0.85, "f1 {f1}");
    }

    #[test]
    fn ema_smoothing() {
        let s = ema(&[1.0, 0.0, 0.0], 0.5);
        assert_eq!(s, vec![1.0, 0.5, 0.25]);
        assert!(ema(&[], 0.5).is_empty());
    }

    #[test]
    fn data_parallel_equals_large_batch_sgd() {
        // With identity compression, N workers × batch B on disjoint
        // shards must equal one worker with the concatenated batch.
        let data = Dataset::synthetic(400, 6, 0.0, 6);
        let model = LogisticRegression { dim: 6 };
        let n = 4;
        let cfg_dp = TrainConfig {
            num_workers: n,
            batch_size: 10,
            lr: 0.3,
            steps: 5,
            seed: 0,
        };
        let mut comps = boxes(n, |_| Box::new(Identity) as Box<dyn Compressor>);
        let dp = train_data_parallel(&model, &data, &cfg_dp, &mut comps);

        // Manual large-batch run over the same samples.
        let mut params = model.init_params(0);
        let shard = data.len() / n;
        for step in 0..5 {
            let mut agg = Tensor::zeros(params.len());
            for w in 0..n {
                let lo = w * shard + (step * 10) % (shard - 10 + 1);
                let x = &data.features[lo * data.dim..(lo + 10) * data.dim];
                let y = &data.labels[lo..lo + 10];
                let (_, g) = model.loss_grad(&params, x, y, data.dim);
                agg.add_assign(&g);
            }
            agg.scale(1.0 / n as f32);
            for (p, g) in params.as_mut_slice().iter_mut().zip(agg.as_slice()) {
                *p -= 0.3 * g;
            }
        }
        assert!(dp.params.approx_eq(&params, 1e-5));
    }
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;
    use crate::model::LogisticRegression;
    use crate::optim::{Adam, Momentum};
    use omnireduce_sparsify::{BlockTopK, Compressor, ErrorFeedback};
    use omnireduce_tensor::BlockSpec;

    #[test]
    fn compressed_training_with_momentum_and_adam() {
        let data = Dataset::synthetic(1600, 14, 0.02, 8);
        let model = LogisticRegression { dim: 14 };
        let cfg = TrainConfig {
            num_workers: 3,
            batch_size: 32,
            lr: 0.0, // unused with explicit optimizers
            steps: 250,
            seed: 0,
        };
        let run = |opt: &mut dyn Optimizer| {
            let mut comps: Vec<Box<dyn Compressor>> = (0..3)
                .map(|_| {
                    Box::new(ErrorFeedback::new(BlockTopK::new(0.5, BlockSpec::new(4))))
                        as Box<dyn Compressor>
                })
                .collect();
            let r = train_data_parallel_opt(&model, &data, &cfg, &mut comps, opt);
            let tail = &r.loss_history[r.loss_history.len() - 10..];
            tail.iter().sum::<f64>() / 10.0
        };
        let mom = run(&mut Momentum::new(0.1, 0.9));
        let adam = run(&mut Adam::new(0.05));
        assert!(mom < 0.45, "momentum loss {mom}");
        assert!(adam < 0.45, "adam loss {adam}");
    }
}
