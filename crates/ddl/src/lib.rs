//! Data-parallel SGD trainer for the convergence experiments
//! (paper §6.2.3, Figs. 11–12).
//!
//! The paper fine-tunes BERT on SQuAD under the four block-based
//! compressors and shows (a) training converges thanks to error feedback
//! (the §4 Lemma: Block Random-k/Top-k are δ-compressors) and (b) the
//! accuracy drop is small. That claim is about *compressed distributed
//! optimization*, not about transformers, so this reproduction trains
//! real models of tractable size — logistic regression and a one-hidden-
//! layer MLP on synthetic classification data — with the identical
//! compressed data-parallel SGD loop: per-worker gradient → per-worker
//! compressor (with error feedback) → sum/average → parameter update.
//!
//! [`train_data_parallel`] records the loss curve (Fig. 12), final
//! accuracy/F1 (Fig. 11) and the mean density of the transmitted
//! gradients (the communication saving OmniReduce exploits).

pub mod data;
pub mod embedding;
pub mod model;
pub mod optim;
pub mod train;

pub use data::Dataset;
pub use embedding::{CategoricalDataset, EmbeddingClassifier};
pub use model::{LogisticRegression, Mlp, Model};
pub use optim::{Adam, Momentum, Optimizer, Sgd};
pub use train::{train_data_parallel, TrainConfig, TrainResult};
