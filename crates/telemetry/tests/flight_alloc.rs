//! Allocation regression for the flight-recorder hot path.
//!
//! The recorder's claim (DESIGN §11) is that steady-state event
//! recording performs **zero** heap allocations: a lane is a
//! preallocated ring of atomics, and `record` only does a fetch_add
//! plus four word stores. This binary installs [`CountingAllocator`]
//! as the global allocator and measures the claim directly — if a
//! future change sneaks a `format!`, `Vec::push`, or boxing into
//! `record`/`record_at`/`now_ns`, this test fails.

use omnireduce_telemetry::{
    CountingAllocator, FlightEventKind, FlightRecorder, LaneRole, NO_BLOCK,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_recording_allocates_nothing() {
    // Setup MAY allocate: the recorder and its lanes are built once per
    // engine, outside the data path.
    let recorder = FlightRecorder::bounded(1024);
    let lane = recorder.lane("worker0", LaneRole::Worker, 0);

    // Warm up: first records after construction must already be clean,
    // but run a few to let any lazy thread-locals initialize.
    for i in 0..8 {
        lane.record(FlightEventKind::PacketTx, 0, i, 0, 0, 64);
    }

    let ((), allocs) = CountingAllocator::count(|| {
        for round in 0..64u32 {
            lane.record(FlightEventKind::RoundStart, round, NO_BLOCK, 0, 0, 0);
            let t0 = lane.now_ns();
            for b in 0..8u64 {
                lane.record(FlightEventKind::PacketTx, round, b * 16, 0, 0, 512);
                lane.record(FlightEventKind::ResultRx, round, NO_BLOCK, 0, 0, 4);
            }
            lane.record(
                FlightEventKind::Encode,
                round,
                NO_BLOCK,
                0,
                0,
                lane.now_ns().saturating_sub(t0),
            );
            lane.record_at(t0, FlightEventKind::RoundEnd, round, NO_BLOCK, 0, 0, 0);
        }
    });
    assert_eq!(
        allocs, 0,
        "flight-recorder hot path must not allocate in steady state"
    );

    // Ring wrap-around (the loop above overflows 1024 events) must not
    // allocate either — eviction is an index wrap, not a reallocation.
    let total = recorder.snapshot().total_events();
    assert!(total <= 1024, "ring must stay bounded, got {total}");
}

#[test]
fn disabled_lane_record_allocates_nothing() {
    let recorder = FlightRecorder::disabled();
    let lane = recorder.lane("worker0", LaneRole::Worker, 0);
    let ((), allocs) = CountingAllocator::count(|| {
        for i in 0..1024u64 {
            lane.record(FlightEventKind::PacketTx, 0, i, 0, 0, 64);
        }
    });
    assert_eq!(allocs, 0, "disabled lanes must be free");
}
