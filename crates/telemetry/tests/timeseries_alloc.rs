//! Allocation regression for the time-series sampler hot path.
//!
//! The sampler's claim (DESIGN §14) is that a steady-state tick — one
//! sample appended to every derived series — performs **zero** heap
//! allocations: instrument handles are pre-resolved at rescan, each
//! series ring is preallocated atomics, and histogram quantiles are
//! derived through a fixed scratch array. This binary installs
//! [`CountingAllocator`] as the global allocator and measures the claim
//! directly — if a future change sneaks a `format!`, `Vec::push` or
//! boxing into `Sampler::tick_at`/`SeriesHandle::push`, this test
//! fails.

use omnireduce_telemetry::{CountingAllocator, Sampler, SeriesKind, Telemetry, TimeSeriesStore};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_sampling_allocates_nothing() {
    // Setup MAY allocate: registry, instruments and sampler are built
    // once, outside the sampling path.
    let telemetry = Telemetry::with_pipeline(0, 0, 256);
    let counters: Vec<_> = (0..8)
        .map(|i| telemetry.counter(&format!("t.worker.{i}.packets_sent")))
        .collect();
    let gauges: Vec<_> = (0..4)
        .map(|i| telemetry.gauge(&format!("t.agg.{i}.inflight")))
        .collect();
    let hists: Vec<_> = (0..4)
        .map(|i| telemetry.histogram(&format!("t.worker.{i}.delay_ns")))
        .collect();
    let mut sampler = Sampler::new(&telemetry);

    // Warm up: the first tick after construction must already be clean,
    // but run a few to let any lazy thread-locals initialize.
    for tick in 0..4u64 {
        sampler.tick_at(tick * 1_000_000);
    }

    let ((), allocs) = CountingAllocator::count(|| {
        for tick in 0..512u64 {
            for (i, c) in counters.iter().enumerate() {
                c.add(1 + (tick + i as u64) % 7);
            }
            for (i, g) in gauges.iter().enumerate() {
                g.set(tick * 3 + i as u64);
            }
            for (i, h) in hists.iter().enumerate() {
                h.record(100 + tick * 13 + i as u64 * 1000);
                h.record(tick % 3);
            }
            sampler.tick_at((4 + tick) * 1_000_000);
        }
    });
    assert_eq!(allocs, 0, "sampler tick must not allocate in steady state");

    // The loop wrapped every 256-sample ring (512 ticks): eviction is
    // an index wrap, not a reallocation, and the data survives.
    let snap = telemetry.series().snapshot();
    let s = snap.get("t.worker.0.packets_sent").expect("series exists");
    assert_eq!(s.samples.len(), 256, "ring must stay bounded");
    assert!(s.dropped > 0, "the loop must have wrapped the ring");
}

#[test]
fn raw_series_push_allocates_nothing() {
    let store = TimeSeriesStore::bounded(64);
    let series = store.series("x", SeriesKind::Gauge);
    let disabled = TimeSeriesStore::disabled().series("y", SeriesKind::Gauge);
    let ((), allocs) = CountingAllocator::count(|| {
        for i in 0..1024u64 {
            series.push(i, i * 2);
            disabled.push(i, i * 2);
        }
    });
    assert_eq!(allocs, 0, "series push (live and disabled) must be free");
}

#[test]
fn sampler_rescan_is_the_only_allocating_tick() {
    let telemetry = Telemetry::with_pipeline(0, 0, 64);
    telemetry.counter("a.pkts").add(1);
    let mut sampler = Sampler::new(&telemetry);
    sampler.tick_at(1);

    // Registering a new instrument makes exactly the next tick rescan
    // (and therefore allocate); the tick after that is clean again.
    telemetry.histogram("b.delay_ns").record(42);
    let ((), rescan_allocs) = CountingAllocator::count(|| sampler.tick_at(2));
    assert!(rescan_allocs > 0, "rescan tick is expected to allocate");
    let ((), steady_allocs) = CountingAllocator::count(|| sampler.tick_at(3));
    assert_eq!(steady_allocs, 0, "post-rescan ticks must be clean");
}
