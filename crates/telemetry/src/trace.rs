//! Bounded span/event recorder with Chrome trace-event export.
//!
//! A [`TraceRecorder`] keeps the most recent N spans and instant events
//! in a ring buffer. Each event belongs to a *track* (an actor, NIC, or
//! protocol engine) registered up front via [`TraceRecorder::track`];
//! tracks become named rows in Perfetto / `chrome://tracing`.
//!
//! Timestamps are nanoseconds from whichever [`crate::Clock`] the
//! instrumented component uses — wall-clock in real runs, simulated time
//! in `simnet` runs. The exporter converts to the microsecond floats the
//! Chrome trace-event format expects.
//!
//! Recording against a disabled recorder is a single atomic load, so
//! instrumentation can stay in hot paths unconditionally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::JsonValue;

/// Identifies one track (row) in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// Which time base a track's timestamps come from.
///
/// Wall-clock nanoseconds (engines over real transports) and simulated
/// nanoseconds (the `simnet` event loop) are incommensurable: a sim
/// span at t = 3 µs must not be drawn next to an engine span stamped
/// 3 µs after process start. The exporter keeps the domains apart —
/// one Chrome-trace *process* per domain — so a registry shared by
/// engines and a simulator stays readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockDomain {
    /// Nanoseconds from a monotonic [`crate::WallClock`].
    #[default]
    Wall,
    /// Simulated nanoseconds from a [`crate::ManualClock`] / event loop.
    Sim,
}

impl ClockDomain {
    fn pid(self) -> u64 {
        match self {
            ClockDomain::Wall => 0,
            ClockDomain::Sim => 1,
        }
    }

    fn process_name(self) -> &'static str {
        match self {
            ClockDomain::Wall => "wall-clock",
            ClockDomain::Sim => "sim-time",
        }
    }
}

#[derive(Debug, Clone)]
struct Track {
    name: String,
    domain: ClockDomain,
}

#[derive(Debug, Clone)]
enum Event {
    /// A complete span: `[start_ns, end_ns)` on a track.
    Span {
        track: TrackId,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    },
    /// A point event.
    Instant {
        track: TrackId,
        name: &'static str,
        ts_ns: u64,
    },
}

#[derive(Default)]
struct TraceInner {
    tracks: Vec<Track>,
    ring: Vec<Event>,
    /// Next write position in `ring` once it reaches capacity.
    head: usize,
    dropped: u64,
}

/// Ring-buffer recorder of spans and instant events.
pub struct TraceRecorder {
    enabled: AtomicBool,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        TraceRecorder {
            enabled: AtomicBool::new(false),
            capacity: 0,
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// A recorder keeping the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        TraceRecorder {
            enabled: AtomicBool::new(capacity > 0),
            capacity,
            inner: Mutex::new(TraceInner::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or finds) a named track in the wall-clock domain and
    /// returns its id.
    ///
    /// Safe to call on a disabled recorder; returns a valid id so
    /// callers can cache it unconditionally. Re-requesting a name
    /// returns the *same* track — use [`TraceRecorder::unique_track`]
    /// when each caller must own its own row.
    pub fn track(&self, name: &str) -> TrackId {
        let mut inner = self.lock();
        if let Some(pos) = inner
            .tracks
            .iter()
            .position(|t| t.name == name && t.domain == ClockDomain::Wall)
        {
            return TrackId(pos as u32);
        }
        inner.tracks.push(Track {
            name: name.to_string(),
            domain: ClockDomain::Wall,
        });
        TrackId((inner.tracks.len() - 1) as u32)
    }

    /// Registers a track that is **never shared**: if `name` is taken,
    /// the new track is suffixed `#2`, `#3`, … instead of reusing the
    /// existing id.
    ///
    /// This is the constructor for per-engine rows. `ShardedAllReduce`
    /// spawns N aggregators × M workers on their own threads, and a
    /// process can deploy several groups against one registry (the
    /// bench differential does); name-deduplicated ids would interleave
    /// unrelated engines' spans on a single row of the merged Chrome
    /// trace.
    pub fn unique_track(&self, name: &str, domain: ClockDomain) -> TrackId {
        let mut inner = self.lock();
        let taken = |tracks: &[Track], candidate: &str| tracks.iter().any(|t| t.name == candidate);
        let unique = if taken(&inner.tracks, name) {
            let mut n = 2usize;
            loop {
                let candidate = format!("{name}#{n}");
                if !taken(&inner.tracks, &candidate) {
                    break candidate;
                }
                n += 1;
            }
        } else {
            name.to_string()
        };
        inner.tracks.push(Track {
            name: unique,
            domain,
        });
        TrackId((inner.tracks.len() - 1) as u32)
    }

    /// Records a complete span `[start_ns, end_ns)`.
    #[inline]
    pub fn span(&self, track: TrackId, name: &'static str, start_ns: u64, end_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event::Span {
            track,
            name,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn instant(&self, track: TrackId, name: &'static str, ts_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event::Instant { track, name, ts_ns });
    }

    fn push(&self, ev: Event) {
        let mut inner = self.lock();
        if inner.ring.len() < self.capacity {
            inner.ring.push(ev);
        } else if self.capacity > 0 {
            let head = inner.head;
            inner.ring[head] = ev;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Exports the buffer as a Chrome trace-event JSON document.
    ///
    /// One Chrome-trace process per [`ClockDomain`] (`pid` 0 =
    /// wall-clock, `pid` 1 = sim-time) with one thread per track; each
    /// process gets a `process_name` and each track a `thread_name`
    /// metadata event so Perfetto shows readable rows. Keeping the
    /// domains in separate processes stops simulated nanoseconds from
    /// being drawn on the wall-clock timeline. Spans become `"ph":"X"`
    /// complete events, instants `"ph":"i"` thread-scoped events;
    /// timestamps are microseconds.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.lock();
        let mut events: Vec<JsonValue> = Vec::with_capacity(inner.ring.len() + inner.tracks.len());
        let mut domains: Vec<ClockDomain> = inner.tracks.iter().map(|t| t.domain).collect();
        domains.sort_by_key(|d| d.pid());
        domains.dedup();
        for domain in domains {
            let mut args = JsonValue::obj();
            args.push("name", JsonValue::Str(domain.process_name().into()));
            let mut meta = JsonValue::obj();
            meta.push("name", JsonValue::Str("process_name".into()));
            meta.push("ph", JsonValue::Str("M".into()));
            meta.push("pid", JsonValue::Uint(domain.pid()));
            meta.push("tid", JsonValue::Uint(0));
            meta.push("args", args);
            events.push(meta);
        }
        for (tid, track) in inner.tracks.iter().enumerate() {
            let mut args = JsonValue::obj();
            args.push("name", JsonValue::Str(track.name.clone()));
            let mut meta = JsonValue::obj();
            meta.push("name", JsonValue::Str("thread_name".into()));
            meta.push("ph", JsonValue::Str("M".into()));
            meta.push("pid", JsonValue::Uint(track.domain.pid()));
            meta.push("tid", JsonValue::Uint(tid as u64));
            meta.push("args", args);
            events.push(meta);
        }
        let pid_of = |track: &TrackId| {
            inner
                .tracks
                .get(track.0 as usize)
                .map(|t| t.domain.pid())
                .unwrap_or(0)
        };
        // Emit in chronological order (ring order is oldest-first from
        // `head`).
        let n = inner.ring.len();
        for i in 0..n {
            let ev = &inner.ring[(inner.head + i) % n.max(1)];
            events.push(match ev {
                Event::Span {
                    track,
                    name,
                    start_ns,
                    end_ns,
                } => {
                    let mut e = JsonValue::obj();
                    e.push("name", JsonValue::Str((*name).into()));
                    e.push("ph", JsonValue::Str("X".into()));
                    e.push("pid", JsonValue::Uint(pid_of(track)));
                    e.push("tid", JsonValue::Uint(track.0 as u64));
                    e.push("ts", JsonValue::Float(*start_ns as f64 / 1_000.0));
                    e.push(
                        "dur",
                        JsonValue::Float((*end_ns - *start_ns) as f64 / 1_000.0),
                    );
                    e
                }
                Event::Instant { track, name, ts_ns } => {
                    let mut e = JsonValue::obj();
                    e.push("name", JsonValue::Str((*name).into()));
                    e.push("ph", JsonValue::Str("i".into()));
                    e.push("s", JsonValue::Str("t".into()));
                    e.push("pid", JsonValue::Uint(pid_of(track)));
                    e.push("tid", JsonValue::Uint(track.0 as u64));
                    e.push("ts", JsonValue::Float(*ts_ns as f64 / 1_000.0));
                    e
                }
            });
        }
        let mut doc = JsonValue::obj();
        doc.push("traceEvents", JsonValue::Arr(events));
        doc.push("displayTimeUnit", JsonValue::Str("ms".into()));
        doc.to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn disabled_recorder_records_nothing() {
        let tr = TraceRecorder::disabled();
        let t = tr.track("a");
        tr.span(t, "x", 0, 10);
        tr.instant(t, "y", 5);
        assert!(tr.is_empty());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let tr = TraceRecorder::bounded(2);
        let t = tr.track("a");
        tr.instant(t, "e1", 1);
        tr.instant(t, "e2", 2);
        tr.instant(t, "e3", 3);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        let doc = JsonValue::parse(&tr.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 1 metadata + 2 ring events; e1 was evicted.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"e2") && names.contains(&"e3"));
        assert!(!names.contains(&"e1"));
    }

    #[test]
    fn track_ids_are_stable_and_deduplicated() {
        let tr = TraceRecorder::bounded(8);
        let a = tr.track("worker0");
        let b = tr.track("worker1");
        assert_ne!(a, b);
        assert_eq!(tr.track("worker0"), a);
    }

    #[test]
    fn chrome_export_is_valid_and_well_formed() {
        let tr = TraceRecorder::bounded(16);
        let w = tr.track("worker0");
        let n = tr.track("nic0");
        tr.span(w, "round", 1_000, 5_000);
        tr.instant(n, "loss", 2_500);
        let text = tr.to_chrome_json();
        let doc = JsonValue::parse(&text).expect("valid json");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 1 process_name + 2 thread_name metas + 2 events.
        assert_eq!(events.len(), 1 + 2 + 2);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(1.0));
        assert_eq!(span.get("dur").and_then(|t| t.as_f64()), Some(4.0));
        assert_eq!(span.get("tid").and_then(|t| t.as_u64()), Some(w.0 as u64));
        assert_eq!(span.get("pid").and_then(|t| t.as_u64()), Some(0));
    }

    #[test]
    fn unique_tracks_never_collide() {
        let tr = TraceRecorder::bounded(8);
        let a = tr.unique_track("worker0", ClockDomain::Wall);
        let b = tr.unique_track("worker0", ClockDomain::Wall);
        let c = tr.unique_track("worker0", ClockDomain::Wall);
        assert_ne!(a, b);
        assert_ne!(b, c);
        // A later name-deduped lookup must not steal a unique row either:
        // "worker0" resolves to the first track (same name), but ids a/b/c
        // stay distinct rows in the export.
        tr.instant(a, "ea", 1);
        tr.instant(b, "eb", 2);
        let doc = JsonValue::parse(&tr.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
            })
            .collect();
        assert_eq!(thread_names, vec!["worker0", "worker0#2", "worker0#3"]);
    }

    #[test]
    fn sim_and_wall_tracks_export_as_separate_processes() {
        let tr = TraceRecorder::bounded(8);
        let w = tr.unique_track("worker0", ClockDomain::Wall);
        let s = tr.unique_track("nic0.tx", ClockDomain::Sim);
        tr.span(w, "round", 0, 10);
        tr.span(s, "tx", 0, 10);
        let doc = JsonValue::parse(&tr.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let process_names: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .filter_map(|e| {
                let pid = e.get("pid").and_then(|p| p.as_u64())?;
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())?;
                Some((pid, name))
            })
            .collect();
        assert_eq!(process_names, vec![(0, "wall-clock"), (1, "sim-time")]);
        let pid_of_span = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .and_then(|e| e.get("pid"))
                .and_then(|p| p.as_u64())
                .unwrap()
        };
        assert_eq!(pid_of_span("round"), 0);
        assert_eq!(pid_of_span("tx"), 1);
    }
}
