//! Bounded span/event recorder with Chrome trace-event export.
//!
//! A [`TraceRecorder`] keeps the most recent N spans and instant events
//! in a ring buffer. Each event belongs to a *track* (an actor, NIC, or
//! protocol engine) registered up front via [`TraceRecorder::track`];
//! tracks become named rows in Perfetto / `chrome://tracing`.
//!
//! Timestamps are nanoseconds from whichever [`crate::Clock`] the
//! instrumented component uses — wall-clock in real runs, simulated time
//! in `simnet` runs. The exporter converts to the microsecond floats the
//! Chrome trace-event format expects.
//!
//! Recording against a disabled recorder is a single atomic load, so
//! instrumentation can stay in hot paths unconditionally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::JsonValue;

/// Identifies one track (row) in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

#[derive(Debug, Clone)]
enum Event {
    /// A complete span: `[start_ns, end_ns)` on a track.
    Span {
        track: TrackId,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    },
    /// A point event.
    Instant {
        track: TrackId,
        name: &'static str,
        ts_ns: u64,
    },
}

#[derive(Default)]
struct TraceInner {
    tracks: Vec<String>,
    ring: Vec<Event>,
    /// Next write position in `ring` once it reaches capacity.
    head: usize,
    dropped: u64,
}

/// Ring-buffer recorder of spans and instant events.
pub struct TraceRecorder {
    enabled: AtomicBool,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        TraceRecorder {
            enabled: AtomicBool::new(false),
            capacity: 0,
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// A recorder keeping the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        TraceRecorder {
            enabled: AtomicBool::new(capacity > 0),
            capacity,
            inner: Mutex::new(TraceInner::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or finds) a named track and returns its id.
    ///
    /// Safe to call on a disabled recorder; returns a valid id so
    /// callers can cache it unconditionally.
    pub fn track(&self, name: &str) -> TrackId {
        let mut inner = self.lock();
        if let Some(pos) = inner.tracks.iter().position(|t| t == name) {
            return TrackId(pos as u32);
        }
        inner.tracks.push(name.to_string());
        TrackId((inner.tracks.len() - 1) as u32)
    }

    /// Records a complete span `[start_ns, end_ns)`.
    #[inline]
    pub fn span(&self, track: TrackId, name: &'static str, start_ns: u64, end_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event::Span {
            track,
            name,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn instant(&self, track: TrackId, name: &'static str, ts_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event::Instant { track, name, ts_ns });
    }

    fn push(&self, ev: Event) {
        let mut inner = self.lock();
        if inner.ring.len() < self.capacity {
            inner.ring.push(ev);
        } else if self.capacity > 0 {
            let head = inner.head;
            inner.ring[head] = ev;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Exports the buffer as a Chrome trace-event JSON document.
    ///
    /// One process (`pid` 0) with one thread per track; each track gets
    /// a `thread_name` metadata event so Perfetto shows readable rows.
    /// Spans become `"ph":"X"` complete events, instants `"ph":"i"`
    /// thread-scoped events; timestamps are microseconds.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.lock();
        let mut events: Vec<JsonValue> = Vec::with_capacity(inner.ring.len() + inner.tracks.len());
        for (tid, name) in inner.tracks.iter().enumerate() {
            let mut args = JsonValue::obj();
            args.push("name", JsonValue::Str(name.clone()));
            let mut meta = JsonValue::obj();
            meta.push("name", JsonValue::Str("thread_name".into()));
            meta.push("ph", JsonValue::Str("M".into()));
            meta.push("pid", JsonValue::Uint(0));
            meta.push("tid", JsonValue::Uint(tid as u64));
            meta.push("args", args);
            events.push(meta);
        }
        // Emit in chronological order (ring order is oldest-first from
        // `head`).
        let n = inner.ring.len();
        for i in 0..n {
            let ev = &inner.ring[(inner.head + i) % n.max(1)];
            events.push(match ev {
                Event::Span {
                    track,
                    name,
                    start_ns,
                    end_ns,
                } => {
                    let mut e = JsonValue::obj();
                    e.push("name", JsonValue::Str((*name).into()));
                    e.push("ph", JsonValue::Str("X".into()));
                    e.push("pid", JsonValue::Uint(0));
                    e.push("tid", JsonValue::Uint(track.0 as u64));
                    e.push("ts", JsonValue::Float(*start_ns as f64 / 1_000.0));
                    e.push(
                        "dur",
                        JsonValue::Float((*end_ns - *start_ns) as f64 / 1_000.0),
                    );
                    e
                }
                Event::Instant { track, name, ts_ns } => {
                    let mut e = JsonValue::obj();
                    e.push("name", JsonValue::Str((*name).into()));
                    e.push("ph", JsonValue::Str("i".into()));
                    e.push("s", JsonValue::Str("t".into()));
                    e.push("pid", JsonValue::Uint(0));
                    e.push("tid", JsonValue::Uint(track.0 as u64));
                    e.push("ts", JsonValue::Float(*ts_ns as f64 / 1_000.0));
                    e
                }
            });
        }
        let mut doc = JsonValue::obj();
        doc.push("traceEvents", JsonValue::Arr(events));
        doc.push("displayTimeUnit", JsonValue::Str("ms".into()));
        doc.to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn disabled_recorder_records_nothing() {
        let tr = TraceRecorder::disabled();
        let t = tr.track("a");
        tr.span(t, "x", 0, 10);
        tr.instant(t, "y", 5);
        assert!(tr.is_empty());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let tr = TraceRecorder::bounded(2);
        let t = tr.track("a");
        tr.instant(t, "e1", 1);
        tr.instant(t, "e2", 2);
        tr.instant(t, "e3", 3);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        let doc = JsonValue::parse(&tr.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 1 metadata + 2 ring events; e1 was evicted.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"e2") && names.contains(&"e3"));
        assert!(!names.contains(&"e1"));
    }

    #[test]
    fn track_ids_are_stable_and_deduplicated() {
        let tr = TraceRecorder::bounded(8);
        let a = tr.track("worker0");
        let b = tr.track("worker1");
        assert_ne!(a, b);
        assert_eq!(tr.track("worker0"), a);
    }

    #[test]
    fn chrome_export_is_valid_and_well_formed() {
        let tr = TraceRecorder::bounded(16);
        let w = tr.track("worker0");
        let n = tr.track("nic0");
        tr.span(w, "round", 1_000, 5_000);
        tr.instant(n, "loss", 2_500);
        let text = tr.to_chrome_json();
        let doc = JsonValue::parse(&text).expect("valid json");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 2 + 2); // 2 thread_name metas + 2 events
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(1.0));
        assert_eq!(span.get("dur").and_then(|t| t.as_f64()), Some(4.0));
        assert_eq!(span.get("tid").and_then(|t| t.as_u64()), Some(w.0 as u64));
    }
}
